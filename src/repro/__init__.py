"""repro: reproduction of "Reducing Load Latency with Cache Level Prediction".

The package is organised as:

* :mod:`repro.core` — the paper's contribution: the LocMap + Popular-Levels-
  Detector level predictor and the TAGE / D2D / Ideal comparison points.
* :mod:`repro.memory` — the memory-hierarchy substrate: caches, MSHRs, TLBs,
  the coherence directory, DRAM and the level-predicted lookup path.
* :mod:`repro.prefetch` — the baseline prefetch scheme and the Figure-3 sweep.
* :mod:`repro.cpu` — the out-of-order core timing model.
* :mod:`repro.energy` — per-access energy accounting.
* :mod:`repro.trace` — the columnar, numpy-backed trace substrate
  (:class:`~repro.trace.TraceBuffer`) every layer above generates into,
  replays from, and persists as ``.npz`` trace-cache files.
* :mod:`repro.workloads` — synthetic traces for every evaluated application.
* :mod:`repro.sim` — system assembly, single/multi-core drivers, the
  batched/parallel :mod:`simulation engine <repro.sim.engine>` (trace cache +
  ``REPRO_JOBS`` worker fan-out) the drivers run on, and the
  content-addressed :mod:`results store <repro.sim.store>` it reads through.
* :mod:`repro.analysis` — Figure-1 classification and report formatting.
* :mod:`repro.faults` — the deterministic fault-injection plane
  (``REPRO_FAULTS`` / ``--faults``) exercising every recovery path above.
* :mod:`repro.experiments` / :mod:`repro.cli` — the declarative figure/table
  registry and the ``python -m repro`` CLI that runs it through the store.

Quick start::

    from repro.sim import SystemConfig, run_predictor_comparison
    from repro.workloads import build_workload

    results = run_predictor_comparison(
        build_workload("gapbs.pr"), num_accesses=50_000,
        predictors=("baseline", "lp"))
    print(results["lp"].speedup_over(results["baseline"]))
"""

from .faults import FaultPlane, FaultRule, FaultSpecError, fault_point

from .core import (
    CacheLevelPredictor,
    DirectToDataPredictor,
    LevelPredictor,
    LevelPredictorConfig,
    Prediction,
    PredictionOutcome,
    SequentialPredictor,
    TAGELevelPredictor,
)
from .memory import (
    CoreMemoryHierarchy,
    HierarchyConfig,
    Level,
    MemoryAccess,
    SharedMemorySystem,
)
from .sim import (
    MultiCoreSystem,
    SimulatedSystem,
    SimulationEngine,
    SimulationJob,
    SimulationResult,
    SystemConfig,
    TraceCache,
    build_system,
    run_predictor_comparison,
)
from .trace import TraceBuffer
from .workloads import HIGHLIGHTED_APPLICATIONS, build_workload

__version__ = "1.0.0"

__all__ = [
    "CacheLevelPredictor",
    "CoreMemoryHierarchy",
    "DirectToDataPredictor",
    "FaultPlane",
    "FaultRule",
    "FaultSpecError",
    "HIGHLIGHTED_APPLICATIONS",
    "HierarchyConfig",
    "Level",
    "LevelPredictor",
    "LevelPredictorConfig",
    "MemoryAccess",
    "MultiCoreSystem",
    "Prediction",
    "PredictionOutcome",
    "SequentialPredictor",
    "SharedMemorySystem",
    "SimulatedSystem",
    "SimulationEngine",
    "SimulationJob",
    "SimulationResult",
    "SystemConfig",
    "TraceBuffer",
    "TraceCache",
    "TAGELevelPredictor",
    "build_system",
    "build_workload",
    "fault_point",
    "run_predictor_comparison",
    "__version__",
]
