"""Analysis helpers: Figure-1 classification and report formatting."""

from .classification import (
    ApplicationClassification,
    classify_application,
    classify_applications,
)
from .reports import format_breakdown, format_table, geomean_row

__all__ = [
    "ApplicationClassification",
    "classify_application",
    "classify_applications",
    "format_breakdown",
    "format_table",
    "geomean_row",
]
