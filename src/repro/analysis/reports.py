"""Plain-text table and series formatting for the benchmark harness.

The benchmark harness regenerates the paper's tables and figures as text:
each figure becomes a table of rows (one per application or configuration)
with the same series the paper plots.  These helpers keep the formatting in
one place so every benchmark prints consistently.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table with aligned columns."""
    rendered_rows: List[List[str]] = [[_format_cell(cell) for cell in row]
                                      for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(h) for h in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_breakdown(breakdown: Mapping[str, float],
                     order: Sequence[str] = ()) -> str:
    """Render an accuracy/energy breakdown as ``key=value`` pairs."""
    keys = list(order) if order else sorted(breakdown)
    return ", ".join(f"{key}={breakdown.get(key, 0.0):.3f}" for key in keys)


def geomean_row(name: str, values: Sequence[float]) -> List[object]:
    """A summary row with the geometric mean of ``values``."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return [name, 0.0]
    product = 1.0
    for value in filtered:
        product *= value
    return [name, product ** (1.0 / len(filtered))]
