"""Figure-1 style application classification.

Runs each application's trace through the baseline hierarchy, computes its
L1/L2 and L2/L3 miss-filtering ratios, and classifies it into the paper's
green box (high expected benefit from level prediction), red box (modest
benefit) or outside (sequential lookup already works).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..sim.config import SystemConfig
from ..sim.stats import MissFilteringRatios, miss_filtering_ratios
from ..sim.system import SimulatedSystem
from ..workloads.suite import HIGHLIGHTED_APPLICATIONS, build_workload


@dataclass
class ApplicationClassification:
    """One application's Figure-1 coordinates and classification."""

    application: str
    ratios: MissFilteringRatios
    classification: str
    expected: str

    @property
    def matches_expectation(self) -> bool:
        """True when the measured class matches the paper's classification.

        A measured ``low`` against an expected ``modest`` (or vice versa) is
        also accepted: both are outside the green box, and the exact red-box
        boundary in Figure 1 is qualitative.
        """
        if self.classification == self.expected:
            return True
        non_green = {"modest", "low"}
        return self.classification in non_green and self.expected in non_green


def classify_application(name: str, num_accesses: int = 40_000,
                         seed: int = 0,
                         config: Optional[SystemConfig] = None,
                         warmup_accesses: Optional[int] = None
                         ) -> ApplicationClassification:
    """Classify one application by running it on the baseline system.

    A warm-up period (half the measured length by default) primes the caches
    so the classification reflects steady-state filtering rather than cold
    misses, mirroring the paper's use of hardware counters over long runs.
    """
    config = (config or SystemConfig.paper_single_core()).with_predictor(
        "baseline")
    system = SimulatedSystem(config)
    workload = build_workload(name)
    if warmup_accesses is None:
        warmup_accesses = num_accesses // 2
    system.run_workload(workload, num_accesses, seed=seed,
                        warmup_accesses=warmup_accesses)
    ratios = miss_filtering_ratios(system.hierarchy)
    from ..workloads.suite import get_application
    expected = get_application(name).expected_benefit
    return ApplicationClassification(
        application=name, ratios=ratios,
        classification=ratios.classify(), expected=expected)


def classify_applications(names: Optional[Iterable[str]] = None,
                          num_accesses: int = 40_000,
                          seed: int = 0) -> List[ApplicationClassification]:
    """Classify a set of applications (defaults to the highlighted 21)."""
    names = list(names) if names is not None else list(HIGHLIGHTED_APPLICATIONS)
    return [classify_application(name, num_accesses=num_accesses, seed=seed)
            for name in names]
