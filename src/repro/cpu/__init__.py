"""Out-of-order core timing model (window-limited overlap)."""

from .ooo_core import CoreConfig, ExecutionResult, OutOfOrderCore, geometric_mean

__all__ = ["CoreConfig", "ExecutionResult", "OutOfOrderCore", "geometric_mean"]
