"""Out-of-order core timing model.

The paper simulates a 4-wide out-of-order core with a 192-entry ROB and
32-entry load/store queues (Table I) on gem5.  Reproducing a cycle-level OoO
pipeline in Python would be prohibitively slow, so this module implements a
*window-limited overlap* model that captures exactly the properties that
determine how much level prediction helps:

* non-memory instructions retire at the fetch/commit width;
* independent loads overlap, up to the number of loads that fit in the load
  queue and the ROB at once (memory-level parallelism);
* loads whose address depends on the previous load's data (pointer chasing)
  serialise — their latency is exposed, which is why graph workloads benefit
  most from level prediction;
* in-order retirement: when the window is full, a new load cannot issue until
  the oldest in-flight load completes.

The model consumes the access trace together with the per-access latencies the
hierarchy produced and returns total cycles, instructions and IPC.  Speedups
are computed by timing the same trace against two hierarchies (baseline vs.
level-predicted), exactly how the paper reports Figure 11.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, Sequence, Union

from ..memory.block import AccessResult, MemoryAccess
from ..trace import TraceBuffer


@dataclass
class CoreConfig:
    """Core microarchitecture parameters (Table I defaults).

    Attributes:
        fetch_width: Instructions fetched/committed per cycle.
        rob_entries: Reorder-buffer capacity.
        load_queue_entries: Load-queue capacity.
        store_queue_entries: Store-queue capacity.
        frequency_ghz: Core clock (only used for time-based reporting).
        min_instruction_cycles: Lower bound on cycles per instruction group,
            modelling dispatch/execute latency of ALU chains.
    """

    fetch_width: int = 4
    rob_entries: int = 192
    load_queue_entries: int = 32
    store_queue_entries: int = 32
    frequency_ghz: float = 4.0
    min_instruction_cycles: float = 0.25

    @staticmethod
    def paper_baseline() -> "CoreConfig":
        return CoreConfig()

    @staticmethod
    def aggressive(rob_entries: int = 224,
                   load_queue_entries: int = 96) -> "CoreConfig":
        """The more aggressive cores of the sensitivity study (Figure 15)."""
        return CoreConfig(rob_entries=rob_entries,
                          load_queue_entries=load_queue_entries,
                          store_queue_entries=load_queue_entries)


@dataclass
class ExecutionResult:
    """Outcome of timing one trace on the core model."""

    cycles: float
    instructions: int
    memory_accesses: int
    stall_cycles: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def seconds(self) -> float:
        return 0.0 if self.cycles == 0 else self.cycles

    def speedup_over(self, baseline: "ExecutionResult") -> float:
        """IPC of this run relative to ``baseline`` (1.0 = no change)."""
        if baseline.ipc == 0.0:
            return 1.0
        return self.ipc / baseline.ipc


class OutOfOrderCore:
    """Window-limited overlap timing model of an out-of-order core."""

    def __init__(self, config: CoreConfig | None = None) -> None:
        self.config = config or CoreConfig()

    # ------------------------------------------------------------------
    # Memory-level parallelism limit
    # ------------------------------------------------------------------
    def mlp_limit(self, average_instructions_per_access: float) -> int:
        """Maximum loads in flight given the ROB and load-queue capacities."""
        cfg = self.config
        instructions_per_access = max(average_instructions_per_access, 1.0)
        rob_limited = int(cfg.rob_entries / instructions_per_access)
        return max(1, min(cfg.load_queue_entries, rob_limited))

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def execute(self, accesses: Union[Sequence[MemoryAccess], TraceBuffer],
                results: Sequence[AccessResult]) -> ExecutionResult:
        """Time a trace given the hierarchy's per-access latencies.

        ``accesses`` may be a legacy record sequence or a columnar
        :class:`~repro.trace.TraceBuffer`; the timing loop only consumes the
        two per-access fields the core model needs (non-memory instruction
        count and the pointer-dependence flag), which buffers deliver as
        plain columns without materialising record objects.
        """
        if len(accesses) != len(results):
            raise ValueError("accesses and results must have the same length")
        if not len(accesses):
            return ExecutionResult(cycles=0.0, instructions=0,
                                   memory_accesses=0, stall_cycles=0.0)

        if isinstance(accesses, TraceBuffer):
            non_memory = accesses.non_memory.tolist()
            dependent = accesses.dependent.tolist()
        else:
            non_memory = [a.non_memory_instructions for a in accesses]
            dependent = [a.depends_on_previous for a in accesses]

        cfg = self.config
        total_non_memory = sum(non_memory)
        instructions = total_non_memory + len(accesses)
        average_per_access = instructions / len(accesses)
        window = self.mlp_limit(average_per_access)

        outstanding: Deque[float] = deque()
        current_cycle = 0.0
        last_completion = 0.0
        ideal_cycles = 0.0

        # Hot loop: bind everything to locals (this runs once per access).
        fetch_width = cfg.fetch_width
        min_cycles = cfg.min_instruction_cycles
        popleft = outstanding.popleft
        push = outstanding.append

        for non_mem, depends, result in zip(non_memory, dependent, results):
            # Front-end: the non-memory instructions ahead of this access plus
            # the memory instruction itself, fetched at the commit width.
            front_end = (non_mem + 1) / fetch_width
            if front_end < min_cycles:
                front_end = min_cycles
            issue_cycle = current_cycle + front_end
            ideal_cycles += front_end

            # Dependence: pointer-chasing loads wait for the producing load.
            if depends and last_completion > issue_cycle:
                issue_cycle = last_completion

            # Window limit: retire the oldest in-flight loads that finished;
            # if the window is still full, stall until the oldest completes.
            while outstanding and outstanding[0] <= issue_cycle:
                popleft()
            if len(outstanding) >= window:
                oldest = popleft()
                if oldest > issue_cycle:
                    issue_cycle = oldest

            completion = issue_cycle + result.latency
            push(completion)
            last_completion = completion
            current_cycle = issue_cycle

        cycles = max(current_cycle, max(outstanding) if outstanding else 0.0,
                     last_completion)
        stall_cycles = max(0.0, cycles - ideal_cycles)
        return ExecutionResult(cycles=cycles, instructions=instructions,
                               memory_accesses=len(accesses),
                               stall_cycles=stall_cycles)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean used for the paper's suite-level speedup summaries."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
