"""``python -m repro`` — run, inspect and clean experiment grids.

Subcommands
===========

``run <experiment>... [all]``
    Execute one or more figure/table grids from the registry in
    :mod:`repro.experiments`.  ``all`` (or no names) expands to every
    figure experiment except the opt-in ``sweep`` grid — several times
    the paper's largest — which must be named explicitly.  Jobs already present in the results store
    are served from disk — re-running a figure performs **zero**
    simulations, and an interrupted grid resumes from the jobs it already
    persisted.  ``--force`` recomputes (and refreshes) every job; ``--jobs``
    fans simulation out over worker processes (same as ``REPRO_JOBS``).
    Metrics are written to ``<store>/stats/<experiment>.json``; ``--check``
    compares them against a committed stats file (``GOLDEN_stats.json`` by
    default) and fails on any difference.

    Trace generation reads through the on-disk trace cache: buffers spill
    to ``<store>/traces/*.npz`` (override with ``--trace-dir`` or the
    ``REPRO_TRACE_DIR`` environment variable; ``--trace-dir ''`` disables),
    so a warm run loads packed columns instead of regenerating streams.

``trace <workload>``
    Inspect a registered workload's generated trace: footprint, unique
    blocks/pages, read/write mix and the packed buffer size.  ``--save``
    writes the buffer to an ``.npz`` file.

``status``
    For every experiment: how many of its jobs the store already holds.

``figures``
    List the available experiments.

``store info|fsck|compact|migrate``
    Maintain the sharded results store: ``info`` summarises shard/entry
    counts, ``fsck`` salvages torn/corrupt/foreign lines in place (usable
    even when the store is too damaged to load), ``compact`` drops
    superseded duplicate entries, and ``migrate`` upgrades a legacy
    single-file ``store.jsonl`` into the sharded layout (also happens
    automatically on open).

``serve [--port N | --socket PATH] [--jobs N] [--fleet]``
    Run the persistent simulation daemon (see :mod:`repro.service`): a
    long-lived process owning the store, the trace cache and a worker
    pool, answering figure requests over a JSON socket protocol.  Warm
    requests are served with zero simulation; concurrent identical
    requests coalesce onto one running simulation per job key.
    ``--fleet`` coordinates with other daemons sharing the same store
    through per-job-key claim records, so a cold key is simulated
    exactly once fleet-wide.

``fleet --members N``
    Launch N fleet daemons over one shared store (each on its own
    ephemeral port), print the combined comma-separated address list
    (and write it to ``--ready-file``), forward SIGTERM/SIGINT to the
    members, and stop the whole fleet if any member dies unexpectedly.

``run/status/figures --remote ADDR``
    Point the experiment commands at a running daemon instead of
    simulating locally.  ``ADDR`` is ``PORT``, ``HOST:PORT`` or a unix
    socket path (as printed by ``serve``) — or a comma-separated list
    of those, which routes through the fleet-aware
    :class:`repro.service.FleetClient` (job-key-hash routing plus
    failover on connection / timeout / overloaded errors).

``clean``
    Delete the store shards and the stats directory under the store root.

The store root defaults to ``results/`` (git-ignored) and can be moved with
``--store`` or the ``REPRO_STORE`` environment variable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from contextlib import contextmanager

from .experiments import EXPERIMENTS, Scale, canonical_json
from .faults import REPRO_FAULTS_ENV, FaultSpecError, install as install_faults
from .service import FleetClient, ServiceClient, ServiceError, main_serve
from .sim.engine import SimulationEngine
from .sim.kernels import DEFAULT_KERNEL, kernel_names
from .sim.options import POOL_KINDS, SHARDING_MODES, EngineOptions
from .sim.store import (
    REPRO_STORE_ENV,
    REPRO_TRACE_DIR_ENV,
    ResultStore,
    fsck_store,
    try_job_key,
)

#: Default store directory (relative to the working directory).
DEFAULT_STORE = "results"

#: Default reference file for ``run golden --check``.
GOLDEN_STATS_FILENAME = "GOLDEN_stats.json"

#: TCP port ``serve`` binds when neither ``--port`` nor ``--socket`` is
#: given (localhost only; ``--port 0`` picks a free ephemeral port).
DEFAULT_SERVICE_PORT = 7341


# ======================================================================
# run
# ======================================================================
class RunReport:
    """Outcome of one ``repro run`` experiment (also the test-facing API).

    ``stats_path`` is ``None`` when the stats file could not be written
    (a daemon on unwritable media still answers with the stats payload).
    """

    def __init__(self, name: str, total_jobs: int, stored: int,
                 simulated: int, seconds: float, stats: Dict[str, Any],
                 stats_path: Optional[Path],
                 kernel: Optional[str] = None) -> None:
        self.name = name
        self.total_jobs = total_jobs
        self.stored = stored
        self.simulated = simulated
        self.seconds = seconds
        self.stats = stats
        self.stats_path = stats_path
        #: Trace-execution kernel the engine used (``None`` for remote
        #: runs — the daemon's own kernel applies there).
        self.kernel = kernel


def run_experiment(name: str, store: ResultStore, scale: Scale,
                   jobs: Optional[int] = None,
                   force: bool = False,
                   kernel: Optional[str] = None,
                   shards: Optional[int] = None,
                   sharding: Optional[str] = None,
                   hierarchy: Optional[str] = None) -> RunReport:
    """Run one experiment through the store and persist its metrics.

    ``shards``/``sharding`` select within-job trace sharding (see
    :mod:`repro.sim.options`): exact mode stays bit-identical to the
    unsharded run; approx mode bypasses the results store entirely.
    ``hierarchy`` names a declarative hierarchy spec file (JSON, see
    :mod:`repro.memory.spec`) — or is a :class:`HierarchySpec` passed
    programmatically via :func:`repro.api.run_figure` — applied to every
    job of the experiment; the system name becomes the file's stem (or
    ``"custom"``), so the rewritten jobs get their own store keys and
    never collide with the paper systems.
    """
    from .memory.spec import HierarchySpec, load_hierarchy
    from .sim.engine import apply_hierarchy

    experiment = EXPERIMENTS[name]
    spec = spec_name = None
    if isinstance(hierarchy, HierarchySpec):
        spec, spec_name, hierarchy = hierarchy, "custom", None
    elif hierarchy is not None:
        hierarchy = str(hierarchy)
    options = EngineOptions.from_env(kernel=kernel, jobs=jobs,
                                     shards=shards, sharding=sharding,
                                     hierarchy=hierarchy)
    engine = SimulationEngine(store=store, options=options)
    job_list = experiment.jobs(scale)
    if spec is None and options.hierarchy:
        spec = load_hierarchy(options.hierarchy)
        spec_name = Path(options.hierarchy).stem
    if spec is not None:
        job_list = apply_hierarchy(job_list, spec, spec_name)
    hits_before, misses_before = store.hits, store.misses
    start = time.perf_counter()
    results = engine.run(job_list, force=force)
    seconds = time.perf_counter() - start
    stored = store.hits - hits_before
    simulated = store.misses - misses_before
    stats = experiment.summarize(results, scale)
    stats_path = store.root / "stats" / f"{name}.json"
    stats_path.parent.mkdir(parents=True, exist_ok=True)
    stats_path.write_text(canonical_json(stats), encoding="utf-8")
    # Keep the next open O(changed shards) instead of O(all lines).
    store.flush_index()
    return RunReport(name, len(job_list), stored, simulated, seconds,
                     stats, stats_path, kernel=engine.kernel)


def _check_stats(report: RunReport, reference_path: Path) -> int:
    """Diff an experiment's metrics against a committed reference file."""
    if not reference_path.is_file():
        print(f"repro: check failed: reference file {reference_path} "
              "does not exist", file=sys.stderr)
        return 1
    reference = json.loads(reference_path.read_text(encoding="utf-8"))
    if reference == report.stats:
        print(f"  check: {report.name} matches {reference_path}")
        return 0
    print(f"repro: check failed: {report.name} stats differ from "
          f"{reference_path}", file=sys.stderr)
    _print_diff(reference, report.stats)
    return 1


def _print_diff(reference: Any, computed: Any, path: str = "",
                limit: Optional[List[int]] = None) -> None:
    """Print the first few leaf-level differences between two stats trees."""
    if limit is None:
        limit = [10]
    if limit[0] <= 0:
        return
    if isinstance(reference, dict) and isinstance(computed, dict):
        for key in sorted(set(reference) | set(computed)):
            _print_diff(reference.get(key), computed.get(key),
                        f"{path}/{key}", limit)
        return
    if reference != computed:
        limit[0] -= 1
        print(f"  {path}: reference={reference!r} computed={computed!r}",
              file=sys.stderr)


@contextmanager
def _trace_dir_env(args: argparse.Namespace):
    """Export the effective trace-cache directory for the run's duration.

    The directory must travel through the environment (not an engine
    argument) so ``REPRO_JOBS`` worker processes — whose process-local
    trace caches resolve ``REPRO_TRACE_DIR`` lazily — spill to and load
    from the same cache as the parent.  Restored afterwards so in-process
    callers (tests) see no lasting environment mutation.
    """
    previous = os.environ.get(REPRO_TRACE_DIR_ENV)
    trace_dir = args.trace_dir
    if trace_dir is None:
        # An ambient REPRO_TRACE_DIR wins over the <store>/traces default.
        trace_dir = previous if previous is not None \
            else str(Path(args.store) / "traces")
    os.environ[REPRO_TRACE_DIR_ENV] = trace_dir
    try:
        yield
    finally:
        if previous is None:
            del os.environ[REPRO_TRACE_DIR_ENV]
        else:
            os.environ[REPRO_TRACE_DIR_ENV] = previous


@contextmanager
def _faults_env(args: argparse.Namespace):
    """Arm ``--faults`` for the run's duration (and worker processes).

    The schedule is installed in-process *and* exported through
    ``REPRO_FAULTS`` so engine worker processes inherit it; both are
    undone afterwards so in-process callers (tests) see no lasting
    fault plane.
    """
    spec = getattr(args, "faults", None)
    if not spec:
        yield
        return
    from . import faults as faults_module
    previous = os.environ.get(REPRO_FAULTS_ENV)
    install_faults(spec)
    os.environ[REPRO_FAULTS_ENV] = spec
    try:
        yield
    finally:
        faults_module.uninstall()
        if previous is None:
            os.environ.pop(REPRO_FAULTS_ENV, None)
        else:
            os.environ[REPRO_FAULTS_ENV] = previous


def _scale_wire(args: argparse.Namespace) -> Dict[str, int]:
    """The scale flags as the service protocol's ``scale`` object."""
    return {"accesses": args.accesses, "warmup": args.warmup,
            "mix_accesses": args.mix_accesses}


def _report_outputs(report: RunReport, args: argparse.Namespace) -> int:
    """The ``--check`` / ``--stats-out`` tail shared by the local and
    remote run paths."""
    exit_code = 0
    if args.check is not None:
        reference = Path(args.check) if args.check else \
            Path(GOLDEN_STATS_FILENAME)
        exit_code |= _check_stats(report, reference)
    if args.stats_out:
        out = Path(args.stats_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(canonical_json(report.stats), encoding="utf-8")
        print(f"  stats written to {out}")
    return exit_code


def _remote_client(address: str):
    """A client for ``--remote ADDR``.

    A comma-separated address list gets the fleet-aware client (job-key
    routing + failover); a single address keeps the plain one.
    """
    if "," in address:
        return FleetClient(address)
    return ServiceClient(address)


def _remote_run(args: argparse.Namespace, names: List[str]) -> int:
    """Run experiments against a daemon (``run --remote ADDR``)."""
    client = _remote_client(args.remote)
    exit_code = 0
    for name in names:
        payload = client.submit(experiment=name, scale=_scale_wire(args),
                                force=args.force, wait=True)
        if payload.get("state") != "done":
            print(f"repro: remote run of {name} failed: "
                  f"{payload.get('error', 'unknown error')}",
                  file=sys.stderr)
            for failure in payload.get("failed_jobs", []):
                print(f"  job {failure.get('index')} "
                      f"[{failure.get('code')}]: {failure.get('error')}",
                      file=sys.stderr)
            return 1
        # stats_path may be null: a degraded daemon (unwritable store
        # media) still answers with the stats payload itself.
        stats_path = payload.get("stats_path")
        report = RunReport(name, payload["total_jobs"], payload["stored"],
                           payload["simulated"], payload["seconds"],
                           payload["stats"],
                           Path(stats_path) if stats_path else None)
        print(f"{name}: {report.total_jobs} jobs — {report.stored} from "
              f"store, {report.simulated} simulated, "
              f"{payload['coalesced']} coalesced "
              f"({report.seconds:.2f}s) "
              f"@ {payload.get('member', client.address)}")
        exit_code |= _report_outputs(report, args)
    return exit_code


def cmd_run(args: argparse.Namespace) -> int:
    names = _resolve_targets(args.experiments)
    if names is None:
        return 2
    if len(names) > 1:
        if args.stats_out:
            print("repro: --stats-out targets a single file; run one "
                  "experiment at a time with it (per-experiment stats are "
                  "always written under <store>/stats/)", file=sys.stderr)
            return 2
        if args.check is not None:
            print("repro: --check diffs against a single reference file; "
                  "run the one experiment it belongs to (e.g. 'run golden "
                  "--check')", file=sys.stderr)
            return 2
    if args.remote:
        if getattr(args, "hierarchy", None):
            print("repro: --hierarchy does not travel over the wire; "
                  "start the daemon with 'serve --hierarchy FILE' instead",
                  file=sys.stderr)
            return 2
        try:
            with _faults_env(args):
                return _remote_run(args, names)
        except (OSError, ServiceError) as exc:
            print(f"repro: cannot run against daemon at {args.remote}: "
                  f"{exc}", file=sys.stderr)
            return 1
    store = ResultStore(args.store)
    scale = Scale(accesses=args.accesses, warmup=args.warmup,
                  mix_accesses=args.mix_accesses)
    exit_code = 0
    with _faults_env(args), _trace_dir_env(args):
        for name in names:
            report = run_experiment(name, store, scale, jobs=args.jobs,
                                    force=args.force, kernel=args.kernel,
                                    shards=args.shards,
                                    sharding=args.sharding,
                                    hierarchy=args.hierarchy)
            print(f"{name}: {report.total_jobs} jobs — {report.stored} from "
                  f"store, {report.simulated} simulated "
                  f"({report.seconds:.2f}s, {report.kernel} kernel) "
                  f"-> {report.stats_path}")
            exit_code |= _report_outputs(report, args)
    return exit_code


#: Experiments excluded from the implicit "all" expansion: the sweep and
#: hierarchy-sweep grids are several times the paper's largest and must
#: be asked for by name.
OPT_IN_EXPERIMENTS = ("sweep", "hierarchy-sweep")


def _resolve_targets(requested: Sequence[str]) -> Optional[List[str]]:
    if not requested or "all" in requested:
        names = [name for name in EXPERIMENTS
                 if name not in OPT_IN_EXPERIMENTS]
        names.extend(name for name in OPT_IN_EXPERIMENTS
                     if name in requested)
        return names
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"repro: unknown experiment(s) {', '.join(unknown)}; "
              f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return None
    return list(requested)


# ======================================================================
# trace
# ======================================================================
def cmd_trace(args: argparse.Namespace) -> int:
    """Inspect one registered workload's generated trace buffer."""
    from .workloads import APPLICATIONS, build_workload

    name = args.workload
    if name not in APPLICATIONS:
        print(f"repro: unknown workload {name!r}; known: "
              f"{', '.join(sorted(APPLICATIONS))}", file=sys.stderr)
        return 2
    workload = build_workload(name)
    start = time.perf_counter()
    buffer = workload.generate_buffer(args.accesses, seed=args.seed)
    seconds = time.perf_counter() - start
    summary = buffer.summary()
    spec = APPLICATIONS[name]
    print(f"{name}  ({spec.suite}, expected benefit: "
          f"{spec.expected_benefit})")
    print(f"  accesses          : {summary['accesses']:>12,}  "
          f"(generated in {seconds:.2f}s)")
    print(f"  loads / stores    : {summary['loads']:>12,}  / "
          f"{summary['stores']:,}  "
          f"(store fraction {summary['store_fraction']:.3f})")
    print(f"  dependent loads   : {summary['dependent_fraction']:>12.3f}  "
          "(fraction serialised by pointer chasing)")
    print(f"  unique blocks     : {summary['unique_blocks']:>12,}")
    print(f"  unique pages      : {summary['unique_pages']:>12,}")
    print(f"  footprint         : {summary['footprint_bytes']:>12,} bytes")
    print(f"  buffer size       : {summary['buffer_bytes']:>12,} bytes  "
          f"({summary['buffer_bytes'] / summary['accesses']:.1f} B/access)")
    if args.save:
        path = buffer.save(args.save)
        print(f"  buffer written to : {path}")
    return 0


# ======================================================================
# status / figures / clean
# ======================================================================
def _coverage_marker(cached: int, total: int) -> str:
    return "complete" if cached == total else ("partial" if cached
                                               else "empty")


def cmd_status(args: argparse.Namespace) -> int:
    if args.remote:
        try:
            client = _remote_client(args.remote)
            payload = client.status(scale=_scale_wire(args))
        except (OSError, ServiceError) as exc:
            print(f"repro: cannot query daemon at {args.remote}: {exc}",
                  file=sys.stderr)
            return 1
        coverage = payload["experiments"]
        print(f"daemon @ {payload.get('member', client.address)}: "
              f"store {payload['store']} "
              f"({payload['entries']} stored results)")
        width = max(len(name) for name in coverage)
        for name, row in coverage.items():
            marker = _coverage_marker(row["stored"], row["total"])
            print(f"  {name:<{width}}  {row['stored']:>4}/"
                  f"{row['total']:<4} jobs stored  [{marker}]")
        return 0
    store = ResultStore(args.store)
    scale = Scale(accesses=args.accesses, warmup=args.warmup,
                  mix_accesses=args.mix_accesses)
    print(f"store: {store.shards_dir} ({len(store)} stored results)")
    width = max(len(name) for name in EXPERIMENTS)
    for name, experiment in EXPERIMENTS.items():
        job_list = experiment.jobs(scale)
        cached = sum(1 for job in job_list if try_job_key(job) in store)
        marker = _coverage_marker(cached, len(job_list))
        print(f"  {name:<{width}}  {cached:>4}/{len(job_list):<4} jobs "
              f"stored  [{marker}]")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    if args.remote:
        try:
            client = _remote_client(args.remote)
            titles = client.figures()["experiments"]
        except (OSError, ServiceError) as exc:
            print(f"repro: cannot query daemon at {args.remote}: {exc}",
                  file=sys.stderr)
            return 1
    else:
        titles = {name: experiment.title
                  for name, experiment in EXPERIMENTS.items()}
    width = max(len(name) for name in titles)
    for name, title in titles.items():
        print(f"  {name:<{width}}  {title}")
    return 0


# ======================================================================
# serve
# ======================================================================
def cmd_serve(args: argparse.Namespace) -> int:
    """Run the persistent simulation daemon (see :mod:`repro.service`)."""
    if args.port is not None and args.socket is not None:
        print("repro: serve takes --port or --socket, not both",
              file=sys.stderr)
        return 2
    port, socket_path = args.port, args.socket
    if port is None and socket_path is None:
        port = DEFAULT_SERVICE_PORT
    with _trace_dir_env(args):
        try:
            return main_serve(args.store, port=port,
                              socket_path=socket_path, jobs=args.jobs,
                              ready_file=args.ready_file,
                              job_retries=args.job_retries,
                              job_timeout=args.job_timeout,
                              max_queue=args.max_queue,
                              faults=args.faults,
                              kernel=args.kernel,
                              shards=args.shards,
                              sharding=args.sharding,
                              pool=args.pool,
                              hierarchy=args.hierarchy,
                              fleet=True if args.fleet else None)
        except FaultSpecError as exc:
            print(f"repro: bad --faults schedule: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"repro: bad --hierarchy spec: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"repro: cannot start the daemon: {exc}",
                  file=sys.stderr)
            return 1


# ======================================================================
# fleet
# ======================================================================
def _stop_fleet_members(children: List[Any], grace: float = 5.0) -> None:
    """Terminate fleet members, escalating to SIGKILL after ``grace``."""
    import subprocess

    for child in children:
        if child.poll() is None:
            child.terminate()
    deadline = time.monotonic() + grace
    for child in children:
        try:
            child.wait(timeout=max(0.1, deadline - time.monotonic()))
        except subprocess.TimeoutExpired:
            child.kill()
            child.wait()


def cmd_fleet(args: argparse.Namespace) -> int:
    """Launch N fleet daemons over one shared store and babysit them.

    Each member is a ``serve --fleet`` subprocess on its own ephemeral
    port (or ``--base-port + index``).  Once every member has written
    its ready file the combined comma-separated address list is printed
    (and written to ``--ready-file``) — paste it straight into
    ``--remote`` / ``stats --fleet``.  SIGTERM/SIGINT are forwarded to
    the members; an unexpected member death brings the fleet down.
    """
    import signal
    import subprocess
    import tempfile

    members = args.members
    if members < 1:
        print("repro: fleet needs at least one member", file=sys.stderr)
        return 2
    ready_dir = Path(tempfile.mkdtemp(prefix="repro-fleet-"))
    base_cmd = [sys.executable, "-m", "repro", "serve", "--fleet",
                "--store", args.store]
    for flag, value in (("--jobs", args.jobs), ("--kernel", args.kernel),
                        ("--pool", args.pool),
                        ("--job-retries", args.job_retries),
                        ("--job-timeout", args.job_timeout),
                        ("--max-queue", args.max_queue),
                        ("--trace-dir", args.trace_dir),
                        ("--hierarchy", args.hierarchy)):
        if value is not None:
            base_cmd += [flag, str(value)]
    children = []
    ready_files = []
    try:
        for index in range(members):
            ready = ready_dir / f"member-{index}.addr"
            port = args.base_port + index if args.base_port else 0
            children.append(subprocess.Popen(
                base_cmd + ["--port", str(port),
                            "--ready-file", str(ready)]))
            ready_files.append(ready)
    except OSError as exc:
        print(f"repro: cannot spawn fleet member: {exc}", file=sys.stderr)
        _stop_fleet_members(children)
        return 1

    addresses = []
    deadline = time.monotonic() + args.startup_timeout
    for child, ready in zip(children, ready_files):
        while not ready.is_file():
            if child.poll() is not None:
                print(f"repro: fleet member exited with code "
                      f"{child.returncode} during startup",
                      file=sys.stderr)
                _stop_fleet_members(children)
                return 1
            if time.monotonic() >= deadline:
                print(f"repro: fleet startup timed out after "
                      f"{args.startup_timeout:.0f}s", file=sys.stderr)
                _stop_fleet_members(children)
                return 1
            time.sleep(0.05)
        addresses.append(ready.read_text(encoding="utf-8").strip())

    fleet_address = ",".join(addresses)
    print(f"repro.fleet: {members} members sharing store {args.store}: "
          f"{fleet_address}", flush=True)
    if args.ready_file:
        target = Path(args.ready_file)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(fleet_address + "\n", encoding="utf-8")
        os.replace(tmp, target)

    stopping = {"signalled": False}

    def _forward(signum: int, frame: Any) -> None:
        del frame
        stopping["signalled"] = True
        for child in children:
            if child.poll() is None:
                try:
                    child.send_signal(signal.SIGTERM)
                except OSError:  # pragma: no cover - exited in between
                    pass

    previous = {sig: signal.signal(sig, _forward)
                for sig in (signal.SIGTERM, signal.SIGINT)}
    exit_code = 0
    try:
        while any(child.poll() is None for child in children):
            if not stopping["signalled"]:
                dead = [child.returncode for child in children
                        if child.poll() is not None
                        and child.returncode != 0]
                if dead:
                    print(f"repro: fleet member died (exit {dead[0]}); "
                          f"stopping the fleet", file=sys.stderr)
                    exit_code = 1
                    _forward(signal.SIGTERM, None)
            time.sleep(0.2)
    except KeyboardInterrupt:  # pragma: no cover - belt and braces
        _forward(signal.SIGTERM, None)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        _stop_fleet_members(children)
    if not exit_code and any(child.returncode
                             not in (0, -signal.SIGTERM, -signal.SIGINT)
                             for child in children):
        exit_code = 1
    return exit_code


# ======================================================================
# stats
# ======================================================================
def _print_fleet_stats(client: FleetClient, payload: dict) -> int:
    """Render the aggregate stats payload of ``stats --fleet``."""
    info = payload["fleet"]
    counters = payload["counters"]
    print(f"fleet @ {client.address}: {info['reachable']}/{info['size']} "
          f"members reachable, {payload['store']['entries']:,} stored "
          f"results")
    for member in payload["members"]:
        if "error" in member:
            print(f"  member {member['address']}: UNREACHABLE "
                  f"({member['error']})")
            continue
        member_counters = member["counters"]
        line = (f"  member {member['address']}: "
                f"{member_counters['jobs']:,} jobs — "
                f"{member_counters['store_hits']:,} store / "
                f"{member_counters['simulations']:,} simulated / "
                f"{member_counters['coalesced']:,} coalesced")
        if member.get("degraded"):
            line += ", DEGRADED"
        print(line)
    print(f"  requests          : {counters.get('requests', 0):>10,} "
          f"({counters.get('submissions', 0):,} grids, "
          f"{counters.get('jobs', 0):,} jobs)")
    print(f"  job sources       : "
          f"{counters.get('store_hits', 0):>10,} store / "
          f"{counters.get('simulations', 0):,} simulated / "
          f"{counters.get('coalesced', 0):,} coalesced")
    print(f"  fleet claims      : "
          f"{counters.get('claims_won', 0):>10,} won, "
          f"{counters.get('claims_lost', 0):,} lost, "
          f"{counters.get('claim_waits', 0):,} served after a wait, "
          f"{counters.get('claims_broken', 0):,} stale claims broken")
    print(f"  recovery          : {counters.get('retries', 0):>10,} "
          f"retries, {counters.get('job_failures', 0):,} failures, "
          f"{counters.get('quarantined', 0):,} quarantined, "
          f"{counters.get('shed', 0):,} shed")
    return 0 if info["reachable"] == info["size"] else 1


def cmd_stats(args: argparse.Namespace) -> int:
    """Query a daemon's counters (recovery, dedup, store, faults)."""
    fleet = args.fleet or "," in args.remote
    try:
        client = FleetClient(args.remote) if fleet \
            else ServiceClient(args.remote)
        payload = client.stats()
    except (OSError, ServiceError) as exc:
        print(f"repro: cannot query daemon at {args.remote}: {exc}",
              file=sys.stderr)
        return 1
    payload.pop("ok", None)
    if args.json:
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0
    if fleet:
        return _print_fleet_stats(client, payload)
    counters = payload["counters"]
    pool = payload.get("pool") or {}
    print(f"daemon @ {client.address}: {payload['workers']} "
          f"{pool.get('type', 'thread')} workers, "
          f"up {payload['uptime_seconds']:.0f}s"
          + (", DEGRADED" if payload.get("degraded") else ""))
    if pool:
        children = pool.get("children") or []
        detail = f"{len(children)} children" if children else "in-process"
        if pool.get("fallback_reason"):
            detail += f"; fell back: {pool['fallback_reason']}"
        print(f"  pool              : {pool.get('type', '?'):>10} "
              f"({detail})")
    if "sharding" in payload:
        print(f"  sharding          : {payload['sharding']:>10} "
              f"({payload.get('shards', 1)} shards/job, "
              f"{counters.get('shards_executed', 0):,} shards run, "
              f"{counters.get('shard_merges', 0):,} merges, "
              f"{counters.get('pool_failovers', 0):,} pool failovers)")
    print(f"  requests          : {counters['requests']:>10,}  "
          f"({counters['submissions']:,} grids, "
          f"{counters['jobs']:,} jobs)")
    print(f"  job sources       : {counters['store_hits']:>10,} store / "
          f"{counters['simulations']:,} simulated / "
          f"{counters['coalesced']:,} coalesced")
    if payload.get("fleet"):
        print(f"  fleet claims      : "
              f"{counters.get('claims_won', 0):>10,} won, "
              f"{counters.get('claims_lost', 0):,} lost, "
              f"{counters.get('claim_waits', 0):,} served after a wait, "
              f"{counters.get('claims_broken', 0):,} stale claims broken")
    print(f"  recovery          : {counters['retries']:>10,} retries, "
          f"{counters['job_failures']:,} failures, "
          f"{counters['quarantined']:,} quarantined, "
          f"{counters['shed']:,} shed")
    print(f"  store writes      : {counters['put_retries']:>10,} put "
          f"retries, {counters['put_failures']:,} put failures")
    store = payload["store"]
    print(f"  store             : {store['entries']:>10,} entries "
          f"({store['hits']:,} hits / {store['misses']:,} misses / "
          f"{store['puts']:,} puts)")
    for rule, counts in payload.get("faults", {}).items():
        print(f"  fault {rule:<20}: fired {counts['fired']:,} of "
              f"{counts['evaluated']:,} evaluations")
    return 0


def cmd_clean(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    removed = len(store)
    store.clear()
    stats_dir = store.root / "stats"
    if stats_dir.is_dir():
        for path in sorted(stats_dir.glob("*.json")):
            path.unlink()
        try:
            stats_dir.rmdir()
        except OSError:
            pass
    print(f"removed {removed} stored results under {store.root}")
    return 0


# ======================================================================
# store maintenance
# ======================================================================
def cmd_store(args: argparse.Namespace) -> int:
    """Inspect/repair the sharded store: info, fsck, compact, migrate."""
    root = Path(args.store)
    if args.action == "fsck":
        # fsck works at the file-system level so it can salvage stores too
        # corrupt for ResultStore to open at all.
        report = fsck_store(root)
        dropped = report["torn"] + report["corrupt"] + report["foreign"]
        print(f"fsck {root}: {report['kept']} entries kept in place, "
              f"{report['migrated']} migrated from the legacy store, "
              f"{report['moved']} relocated to their correct shard, "
              f"{dropped} unsalvageable lines dropped "
              f"({report['torn']} torn, {report['corrupt']} corrupt, "
              f"{report['foreign']} foreign); "
              f"{report['rewritten_shards']} shards rewritten")
        changed = dropped or report["moved"] or report["rewritten_shards"]
        return 1 if changed else 0
    store = ResultStore(root)
    if args.action == "migrate":
        if store.migrated_entries:
            print(f"migrated {store.migrated_entries} legacy entries into "
                  f"{store.shards_dir}")
            return 0
        if store.legacy_path.is_file():
            # Opening the store would have migrated it; the file is still
            # there, so the store is unwritable (read-only media?).
            print(f"could not migrate {store.legacy_path} (store "
                  f"unwritable?); its entries are served read-only in "
                  f"place", file=sys.stderr)
            return 1
        print(f"nothing to migrate: no legacy "
              f"{ResultStore.STORE_FILENAME} under {store.root}")
        return 0
    if args.action == "compact":
        report = store.compact()
        print(f"compacted {store.root}: {report['entries']} entries kept, "
              f"{report['removed_lines']} superseded lines removed, "
              f"{report['rewritten_shards']} shards rewritten")
        return 0
    shard_files = sorted(store.shards_dir.glob("*.jsonl")) \
        if store.shards_dir.is_dir() else []
    total_bytes = sum(path.stat().st_size for path in shard_files)
    # Entries served from an unmigrated legacy file are not shard lines,
    # so clamp: superseded lines only ever exist inside shards.
    superseded = max(store.total_lines() - len(store), 0)
    print(f"store: {store.root}")
    print(f"  shards            : {len(shard_files):>12,}  "
          f"('<xx>.jsonl' by leading key bytes)")
    print(f"  entries           : {len(store):>12,}  "
          f"({superseded:,} superseded lines; "
          f"'store compact' removes them)")
    print(f"  bytes             : {total_bytes:>12,}")
    print(f"  index             : "
          f"{'fresh' if store.index_path.is_file() else 'missing':>12}  "
          f"({store.index_path})")
    claims = store.active_claims()
    if claims:
        print(f"  active claims     : {len(claims):>12,}  (fleet members "
              f"mid-simulation, or stale after a crash)")
    if store.legacy_path.is_file():
        print(f"  legacy store      : {store.legacy_path} (unmigrated; "
              f"served read-only)")
    return 0


# ======================================================================
# Entry point
# ======================================================================
def _add_store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", default=os.environ.get(REPRO_STORE_ENV) or DEFAULT_STORE,
        help="results-store directory (default: $REPRO_STORE or "
             f"'{DEFAULT_STORE}')")


def _add_store_and_scale(parser: argparse.ArgumentParser) -> None:
    _add_store_arg(parser)
    parser.add_argument("--accesses", type=int, default=Scale.accesses,
                        help="measured accesses per single-core job")
    parser.add_argument("--warmup", type=int, default=Scale.warmup,
                        help="warm-up accesses per single-core job")
    parser.add_argument("--mix-accesses", type=int,
                        default=Scale.mix_accesses,
                        help="accesses per core of each multi-core job")


def _add_remote_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--remote", default=None, metavar="ADDR",
        help="run against a daemon at ADDR (PORT, HOST:PORT, or a unix "
             "socket path — see 'serve') instead of simulating locally")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the paper's figure/table grids through the "
                    "content-addressed results store.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run experiment grids (store-cached, resumable)")
    run_parser.add_argument("experiments", nargs="*",
                            help="experiment names (see 'figures'), or 'all'")
    run_parser.add_argument("--jobs", type=int, default=None,
                            help="worker processes (default: $REPRO_JOBS)")
    run_parser.add_argument(
        "--kernel", choices=kernel_names(), default=None,
        help="trace-execution kernel (default: $REPRO_KERNEL or "
             f"'{DEFAULT_KERNEL}'; results are bit-identical either way)")
    run_parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="trace shards per job (default: $REPRO_SHARDS or 1; "
             "0 = one shard per host core)")
    run_parser.add_argument(
        "--sharding", choices=SHARDING_MODES, default=None,
        help="shard mode (default: $REPRO_SHARDING or 'exact'). exact is "
             "bit-identical to unsharded; approx runs shards concurrently "
             "with a bounded stats delta and bypasses the results store")
    run_parser.add_argument("--force", action="store_true",
                            help="recompute jobs even when already stored")
    run_parser.add_argument("--check", nargs="?", const="", default=None,
                            metavar="FILE",
                            help="diff computed stats against FILE "
                                 f"(default {GOLDEN_STATS_FILENAME}) and "
                                 "fail on mismatch")
    run_parser.add_argument("--stats-out", default=None, metavar="FILE",
                            help="also write the stats JSON to FILE")
    run_parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="on-disk trace cache directory (default: $REPRO_TRACE_DIR or "
             "<store>/traces; '' disables trace spilling)")
    run_parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="deterministic fault schedule, e.g. "
             "'store.append:eio@p=0.05,seed=7' (same grammar as "
             "$REPRO_FAULTS; see repro.faults)")
    run_parser.add_argument(
        "--hierarchy", default=None, metavar="FILE",
        help="declarative hierarchy spec (JSON, see repro.memory.spec) "
             "applied to every job (default: $REPRO_HIERARCHY)")
    _add_store_and_scale(run_parser)
    _add_remote_arg(run_parser)
    run_parser.set_defaults(func=cmd_run)

    serve_parser = subparsers.add_parser(
        "serve", help="run the persistent simulation daemon")
    serve_parser.add_argument(
        "--port", type=int, default=None, metavar="N",
        help="listen on localhost TCP port N (0 picks a free port; "
             f"default {DEFAULT_SERVICE_PORT} when --socket is not given)")
    serve_parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="listen on a unix socket at PATH instead of TCP")
    serve_parser.add_argument(
        "--jobs", type=int, default=None,
        help="workers in the simulation pool (default: $REPRO_JOBS)")
    serve_parser.add_argument(
        "--kernel", choices=kernel_names(), default=None,
        help="trace-execution kernel for this daemon's jobs (default: "
             f"$REPRO_KERNEL or '{DEFAULT_KERNEL}'; results are "
             "bit-identical either way)")
    serve_parser.add_argument(
        "--pool", choices=POOL_KINDS, default=None,
        help="worker-pool kind (default: $REPRO_POOL or 'process'; "
             "'process' saturates a many-core host, 'thread' keeps jobs "
             "in-process)")
    serve_parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="trace shards per job in approx mode (default: $REPRO_SHARDS "
             "or 1; 0 = one shard per host core)")
    serve_parser.add_argument(
        "--sharding", choices=SHARDING_MODES, default=None,
        help="shard mode (default: $REPRO_SHARDING or 'exact'); approx "
             "results are never persisted to the store")
    serve_parser.add_argument(
        "--ready-file", default=None, metavar="FILE",
        help="write the bound address to FILE once listening (how scripts "
             "using --port 0 learn where the daemon landed)")
    serve_parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="on-disk trace cache directory (default: $REPRO_TRACE_DIR or "
             "<store>/traces; '' disables trace spilling)")
    serve_parser.add_argument(
        "--job-retries", type=int, default=None, metavar="N",
        help="attempts per job before quarantine (default: "
             "$REPRO_JOB_RETRIES or 3)")
    serve_parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt job deadline (default: $REPRO_JOB_TIMEOUT; "
             "0 disables)")
    serve_parser.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="shed submits beyond N active jobs (default: "
             "$REPRO_MAX_QUEUE; 0 disables)")
    serve_parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="arm deterministic fault injection, e.g. "
             "'worker.job:crash@p=0.2,seed=3;service.response:drop@times=2' "
             "(same grammar as $REPRO_FAULTS; see repro.faults)")
    serve_parser.add_argument(
        "--hierarchy", default=None, metavar="FILE",
        help="declarative hierarchy spec (JSON, see repro.memory.spec) "
             "applied to every job this daemon runs (default: "
             "$REPRO_HIERARCHY)")
    serve_parser.add_argument(
        "--fleet", action="store_true",
        help="coordinate with other daemons sharing this store through "
             "per-job-key claims, so a cold key is simulated exactly "
             "once fleet-wide (default: $REPRO_FLEET)")
    _add_store_arg(serve_parser)
    serve_parser.set_defaults(func=cmd_serve)

    fleet_parser = subparsers.add_parser(
        "fleet", help="launch N fleet daemons over one shared store")
    fleet_parser.add_argument(
        "--members", type=int, default=2, metavar="N",
        help="number of daemons to launch (default: 2)")
    fleet_parser.add_argument(
        "--base-port", type=int, default=0, metavar="N",
        help="first member listens on N, the next on N+1, ... "
             "(default: each member picks a free ephemeral port)")
    fleet_parser.add_argument(
        "--ready-file", default=None, metavar="FILE",
        help="write the combined comma-separated address list to FILE "
             "once every member is listening")
    fleet_parser.add_argument(
        "--startup-timeout", type=float, default=30.0, metavar="SECONDS",
        help="give up if the members are not all listening within "
             "SECONDS (default: 30)")
    fleet_parser.add_argument(
        "--jobs", type=int, default=None,
        help="workers in each member's simulation pool "
             "(default: $REPRO_JOBS)")
    fleet_parser.add_argument(
        "--kernel", choices=kernel_names(), default=None,
        help="trace-execution kernel for the members' jobs (default: "
             f"$REPRO_KERNEL or '{DEFAULT_KERNEL}')")
    fleet_parser.add_argument(
        "--pool", choices=POOL_KINDS, default=None,
        help="worker-pool kind for each member (default: $REPRO_POOL "
             "or 'process')")
    fleet_parser.add_argument(
        "--job-retries", type=int, default=None, metavar="N",
        help="attempts per job before quarantine (default: "
             "$REPRO_JOB_RETRIES or 3)")
    fleet_parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt job deadline (default: $REPRO_JOB_TIMEOUT; "
             "0 disables)")
    fleet_parser.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="each member sheds submits beyond N active jobs (default: "
             "$REPRO_MAX_QUEUE; 0 disables)")
    fleet_parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="on-disk trace cache directory shared by the members "
             "(default: $REPRO_TRACE_DIR or <store>/traces)")
    fleet_parser.add_argument(
        "--hierarchy", default=None, metavar="FILE",
        help="declarative hierarchy spec applied by every member "
             "(default: $REPRO_HIERARCHY)")
    _add_store_arg(fleet_parser)
    fleet_parser.set_defaults(func=cmd_fleet)

    stats_parser = subparsers.add_parser(
        "stats", help="query a daemon's counters (recovery, dedup, store)")
    stats_parser.add_argument(
        "--remote", required=True, metavar="ADDR",
        help="daemon address (PORT, HOST:PORT, or a unix socket path), "
             "or a comma-separated list of fleet member addresses")
    stats_parser.add_argument(
        "--fleet", action="store_true",
        help="aggregate counters across fleet members (implied when "
             "--remote is a comma-separated list)")
    stats_parser.add_argument(
        "--json", action="store_true",
        help="print the raw stats payload as JSON (script-friendly)")
    stats_parser.set_defaults(func=cmd_stats)

    trace_parser = subparsers.add_parser(
        "trace", help="inspect a registered workload's trace buffer")
    trace_parser.add_argument("workload",
                              help="registered application name "
                                   "(e.g. 'gapbs.pr', 'stream')")
    trace_parser.add_argument("--accesses", type=int, default=100_000,
                              help="number of accesses to generate")
    trace_parser.add_argument("--seed", type=int, default=0,
                              help="trace RNG seed")
    trace_parser.add_argument("--save", default=None, metavar="FILE",
                              help="also write the buffer to FILE (.npz)")
    trace_parser.set_defaults(func=cmd_trace)

    status_parser = subparsers.add_parser(
        "status", help="show per-experiment store coverage")
    _add_store_and_scale(status_parser)
    _add_remote_arg(status_parser)
    status_parser.set_defaults(func=cmd_status)

    figures_parser = subparsers.add_parser(
        "figures", help="list the available experiments")
    _add_remote_arg(figures_parser)
    figures_parser.set_defaults(func=cmd_figures)

    store_parser = subparsers.add_parser(
        "store", help="inspect and maintain the sharded results store")
    store_parser.add_argument(
        "action", choices=("info", "fsck", "compact", "migrate"),
        help="info: shard/entry summary; fsck: salvage corrupt lines in "
             "place; compact: drop superseded entries; migrate: fold a "
             "legacy store.jsonl into the sharded layout")
    _add_store_arg(store_parser)
    store_parser.set_defaults(func=cmd_store)

    clean_parser = subparsers.add_parser(
        "clean", help="delete the store file and stats directory")
    _add_store_and_scale(clean_parser)
    clean_parser.set_defaults(func=cmd_clean)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
