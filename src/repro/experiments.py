"""Declarative registry of the paper's figure/table experiment grids.

Each :class:`Experiment` describes one reproducible unit of the evaluation —
which simulation jobs it needs (as engine :class:`~repro.sim.engine.Job`
objects) and how to reduce their results to the metrics the corresponding
figure plots.  The registry is what ``python -m repro`` executes: because
every job is content-addressed (see :mod:`repro.sim.store`), experiments
that share grid cells (Figures 7-12 all reuse the single-core 21 x 6 grid)
share stored results, re-running a figure costs nothing, and an interrupted
grid resumes from the jobs already persisted.

The ``golden`` experiment is special: it runs a fixed tiny grid whose sizes
never follow the CLI scale flags, and its metrics are committed to
``GOLDEN_stats.json`` at the repository root.  CI re-runs it (serially and
with ``REPRO_JOBS=2``) and diffs the stats bit-for-bit — any
nondeterminism, cross-process divergence or unintended behavioural change
in the simulator shows up as a diff.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from .cpu.ooo_core import geometric_mean
from .sim.config import SystemConfig
from .sim.engine import Job, MixJob, SimulationJob
from .sim.multicore import MultiCoreResult
from .sim.system import SimulationResult
from .workloads import HIGHLIGHTED_APPLICATIONS, MIXES

#: The systems compared in Figures 10-12 (baseline first: normalisation).
COMPARED_SYSTEMS: Tuple[str, ...] = ("baseline", "tage-2kb", "tage-8kb",
                                     "d2d", "lp", "ideal")

#: Figure 15 configuration order (most to least conservative).
SENSITIVITY_ORDER: Tuple[str, ...] = ("default", "fast-seq-llc",
                                      "parallel-llc", "parallel-llc-lsq96",
                                      "aggressive-core")

#: Figure 15's representative application subset.
SENSITIVITY_APPS: Tuple[str, ...] = ("gapbs.pr", "gapbs.bfs", "gups",
                                     "619.lbm", "605.mcf", "hpcg", "nas.cg",
                                     "602.gcc")

#: Figure 5 metadata-cache sweep sizes (bytes).
METADATA_SIZES: Tuple[int, ...] = (1024, 2048, 4096, 8192)

#: Figure 5's representative application per suite.
SUITE_REPRESENTATIVES: Mapping[str, Tuple[str, ...]] = {
    "spec17": ("605.mcf", "623.xalan"),
    "nas": ("nas.cg", "nas.ft"),
    "gapbs": ("gapbs.pr", "gapbs.bfs"),
    "other": ("gups", "hpcg"),
}


@dataclass(frozen=True)
class Scale:
    """Simulation volume of one CLI invocation.

    Matches the benchmark suite's knobs: ``accesses``/``warmup`` per
    single-core job, ``mix_accesses`` per core of a multi-core job.
    """

    accesses: int = 4000
    warmup: int = 1200
    mix_accesses: int = 2500


#: The fixed scale of the ``golden`` experiment (never follows CLI flags).
GOLDEN_SCALE = Scale(accesses=400, warmup=120, mix_accesses=240)

#: The golden grid's applications (one per memory-behaviour family).
GOLDEN_APPS: Tuple[str, ...] = ("gapbs.pr", "605.mcf", "stream", "gups")

#: The golden grid's mixes (one multi-program, one multi-threaded).
GOLDEN_MIXES: Tuple[str, ...] = ("mix1", "MT1")

#: Predictors of the golden/multi-core comparisons.
MIX_PREDICTORS: Tuple[str, ...] = ("baseline", "lp", "ideal")

#: Seeds of the ``sweep`` design-space grid (several times the paper grid).
SWEEP_SEEDS: Tuple[int, ...] = (0, 1, 2)

#: The ``hierarchy-sweep`` lattice: chain depths x LLC capacities x LLC
#: data latencies x predictors, run over :data:`HSWEEP_APPS`.
HSWEEP_DEPTHS: Tuple[int, ...] = (2, 3, 4)
HSWEEP_LLC_SIZES: Tuple[int, ...] = (1 * 1024 * 1024, 2 * 1024 * 1024,
                                     4 * 1024 * 1024)
HSWEEP_LLC_LATENCIES: Tuple[int, ...] = (28, 35)
HSWEEP_PREDICTORS: Tuple[str, ...] = ("baseline", "lp")
HSWEEP_APPS: Tuple[str, ...] = ("gapbs.pr", "605.mcf")


def hierarchy_lattice_spec(depth: int, llc_size_bytes: int,
                           llc_data_latency: int):
    """One point of the ``hierarchy-sweep`` lattice as a HierarchySpec.

    Depth 3 is the paper chain with a derived LLC; depth 2 drops the
    private L2; depth 4 inserts a 512 KB private L3 between the paper L2
    and the LLC.  Everything not named here (TLB, DRAM, interconnect,
    energy model) is the paper configuration, so lattice points differ
    from the paper system only in the dimensions being swept.
    """
    from dataclasses import replace as dc_replace

    from .memory.spec import HierarchySpec

    paper = HierarchySpec.paper_single_core()
    l1, l2 = paper.levels[0], paper.levels[1]
    llc = dc_replace(paper.levels[-1], size_bytes=llc_size_bytes,
                     data_latency=llc_data_latency)
    if depth == 2:
        levels = (l1, dc_replace(llc, name="L2"))
    elif depth == 3:
        levels = (l1, l2, llc)
    elif depth == 4:
        mid = dc_replace(l2, name="L3", size_bytes=512 * 1024,
                         tag_latency=16)
        levels = (l1, l2, mid, dc_replace(llc, name="L4"))
    else:
        raise ValueError(f"hierarchy-sweep depth must be 2, 3 or 4, "
                         f"got {depth}")
    return dc_replace(paper, levels=levels)


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, exact float reprs, no whitespace
    ambiguity.  Two runs producing equal data produce equal bytes — the
    encoding every stats file (CLI and daemon alike) is written in."""
    return json.dumps(value, sort_keys=True, indent=2) + "\n"


# ======================================================================
# Experiment kinds
# ======================================================================
class Experiment(ABC):
    """One figure/table grid: a job list plus a metric reduction."""

    name: str
    title: str

    @abstractmethod
    def jobs(self, scale: Scale) -> List[Job]:
        """The engine jobs this experiment needs, in deterministic order."""

    @abstractmethod
    def summarize(self, results: Sequence[Any], scale: Scale
                  ) -> Dict[str, Any]:
        """Reduce results (in :meth:`jobs` order) to the figure's metrics."""


class SingleGridExperiment(Experiment):
    """A (application x predictor) single-core grid."""

    def __init__(self, name: str, title: str,
                 applications: Sequence[str],
                 predictors: Sequence[str]) -> None:
        self.name = name
        self.title = title
        self.applications = tuple(applications)
        self.predictors = tuple(predictors)

    def jobs(self, scale: Scale) -> List[Job]:
        return [SimulationJob(workload=app, predictor=predictor,
                              num_accesses=scale.accesses,
                              warmup_accesses=scale.warmup, seed=0)
                for app in self.applications
                for predictor in self.predictors]

    def grid(self, results: Sequence[SimulationResult]
             ) -> Dict[str, Dict[str, SimulationResult]]:
        """Reshape the flat result list to {application: {predictor: r}}."""
        grid: Dict[str, Dict[str, SimulationResult]] = {}
        index = 0
        for app in self.applications:
            grid[app] = {}
            for predictor in self.predictors:
                grid[app][predictor] = results[index]
                index += 1
        return grid

    def summarize(self, results: Sequence[Any], scale: Scale
                  ) -> Dict[str, Any]:
        return self.metrics(self.grid(results))

    def metrics(self, grid: Dict[str, Dict[str, SimulationResult]]
                ) -> Dict[str, Any]:
        raise NotImplementedError


class _MetricsSingleGrid(SingleGridExperiment):
    """A single-core grid whose metrics come from a plain function."""

    def __init__(self, name, title, applications, predictors, metrics):
        super().__init__(name, title, applications, predictors)
        self._metrics = metrics

    def metrics(self, grid):
        return self._metrics(grid)


class MixGridExperiment(Experiment):
    """A (mix x predictor) multi-core grid."""

    def __init__(self, name: str, title: str, mixes: Sequence[str],
                 predictors: Sequence[str], metrics) -> None:
        self.name = name
        self.title = title
        self.mixes = tuple(mixes)
        self.predictors = tuple(predictors)
        self._metrics = metrics

    def jobs(self, scale: Scale) -> List[Job]:
        return [MixJob(mix=mix, predictor=predictor,
                       accesses_per_core=scale.mix_accesses, seed=0,
                       config=SystemConfig.paper_multi_core())
                for mix in self.mixes
                for predictor in self.predictors]

    def grid(self, results: Sequence[MultiCoreResult]
             ) -> Dict[str, Dict[str, MultiCoreResult]]:
        grid: Dict[str, Dict[str, MultiCoreResult]] = {}
        index = 0
        for mix in self.mixes:
            grid[mix] = {}
            for predictor in self.predictors:
                grid[mix][predictor] = results[index]
                index += 1
        return grid

    def summarize(self, results, scale):
        return self._metrics(self.grid(results))


class SensitivityExperiment(Experiment):
    """Figure 15: (configuration variant x application x {baseline, lp})."""

    name = "fig15"
    title = "Figure 15: LP speedup under more aggressive systems"

    def jobs(self, scale: Scale) -> List[Job]:
        variants = SystemConfig.sensitivity_variants()
        return [SimulationJob(workload=app, predictor=predictor,
                              num_accesses=scale.accesses,
                              warmup_accesses=scale.warmup, seed=0,
                              config=variants[variant])
                for variant in SENSITIVITY_ORDER
                for app in SENSITIVITY_APPS
                for predictor in ("baseline", "lp")]

    def summarize(self, results, scale):
        speedups: Dict[str, float] = {}
        index = 0
        for variant in SENSITIVITY_ORDER:
            per_app = []
            for _ in SENSITIVITY_APPS:
                baseline, lp = results[index], results[index + 1]
                index += 2
                per_app.append(lp.speedup_over(baseline))
            speedups[variant] = geometric_mean(per_app)
        return {"lp_geomean_speedup": speedups}


class MetadataSweepExperiment(Experiment):
    """Figure 5: cache-hierarchy energy vs. LocMap metadata-cache size."""

    name = "fig05"
    title = "Figure 5: energy vs metadata cache size (normalized to 1KB)"

    def jobs(self, scale: Scale) -> List[Job]:
        # Application-major, size-minor: one trace-cache entry serves a
        # whole aligned chunk of len(METADATA_SIZES) jobs (see
        # SimulationEngine.run's chunk_align).
        base = SystemConfig.paper_single_core("lp")
        return [SimulationJob(workload=app, predictor="lp",
                              num_accesses=scale.accesses,
                              warmup_accesses=scale.warmup, seed=0,
                              config=replace(base,
                                             name=f"metadata-{size}B",
                                             metadata_cache_bytes=size))
                for suite, apps in SUITE_REPRESENTATIVES.items()
                for app in apps
                for size in METADATA_SIZES]

    def summarize(self, results, scale):
        normalized: Dict[str, Dict[str, float]] = {}
        index = 0
        for suite, apps in SUITE_REPRESENTATIVES.items():
            totals = {size: 0.0 for size in METADATA_SIZES}
            for _ in apps:
                for size in METADATA_SIZES:
                    totals[size] += results[index].cache_hierarchy_energy_nj
                    index += 1
            energies = {size: totals[size] / len(apps)
                        for size in METADATA_SIZES}
            base = energies[METADATA_SIZES[0]]
            normalized[suite] = {str(size): energies[size] / base
                                 for size in METADATA_SIZES}
        geo = {str(size): geometric_mean(
            [normalized[suite][str(size)] for suite in SUITE_REPRESENTATIVES])
            for size in METADATA_SIZES}
        return {"normalized_energy": normalized, "geomean": geo}


# ======================================================================
# Metric reductions for the shared single-core / mix grids
# ======================================================================
def _fig07_metrics(grid) -> Dict[str, Any]:
    breakdown = {app: results["lp"].predictor_stats.breakdown()
                 for app, results in grid.items()}
    harmful = [row["harmful"] for row in breakdown.values()]
    return {"breakdown": breakdown,
            "mean_harmful": sum(harmful) / len(harmful)}


def _fig08_metrics(grid) -> Dict[str, Any]:
    return {app: {
        "metadata_miss_ratio": results["lp"].metadata_miss_ratio,
        "pld_misprediction_ratio": results["lp"].pld_misprediction_ratio,
    } for app, results in grid.items()}


def _fig09_metrics(grid) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for app, results in grid.items():
        stats = results["lp"].predictor_stats
        total = sum(stats.level_histogram.values()) or 1
        out[app] = {
            "multi_way_fraction": (stats.multi_way_predictions
                                   / max(stats.predictions, 1)),
            "levels": {"+".join(level.name for level in levels):
                       count / total
                       for levels, count in sorted(
                           stats.level_histogram.items())},
        }
    return out


def _per_system_metrics(grid, metric) -> Dict[str, Any]:
    """Per-application values of ``metric(result, baseline)`` per system."""
    per_app = {
        app: {name: metric(results[name], results["baseline"])
              for name in results if name != "baseline"}
        for app, results in grid.items()
    }
    systems = next(iter(per_app.values())).keys() if per_app else ()
    geomean = {name: geometric_mean([per_app[app][name] for app in per_app])
               for name in systems}
    return {"per_application": per_app, "geomean": geomean}


def _fig10_metrics(grid) -> Dict[str, Any]:
    return _per_system_metrics(
        grid, lambda r, base: r.normalized_energy_over(base))


def _fig11_metrics(grid) -> Dict[str, Any]:
    return _per_system_metrics(grid, lambda r, base: r.speedup_over(base))


def _fig12_metrics(grid) -> Dict[str, Any]:
    return {app: {name: result.average_memory_access_latency
                  for name, result in results.items()}
            for app, results in grid.items()}


def _fig13_metrics(grid) -> Dict[str, Any]:
    return {mix: dict(results["lp"].accuracy_breakdown)
            for mix, results in grid.items()}


def _fig14_metrics(grid) -> Dict[str, Any]:
    per_mix = {mix: {
        "lp_speedup": results["lp"].speedup_over(results["baseline"]),
        "ideal_speedup": results["ideal"].speedup_over(results["baseline"]),
    } for mix, results in grid.items()}
    return {
        "per_mix": per_mix,
        "geomean": {
            "lp_speedup": geometric_mean(
                [row["lp_speedup"] for row in per_mix.values()]),
            "ideal_speedup": geometric_mean(
                [row["ideal_speedup"] for row in per_mix.values()]),
        },
    }


# ======================================================================
# Sweep experiment (store scale-out)
# ======================================================================
class SweepExperiment(Experiment):
    """A design-space sweep several times the paper's largest grid.

    Every highlighted application x all six compared systems x
    :data:`SWEEP_SEEDS`, plus every Table II mix x the multi-core
    predictors x the same seeds — ~3.5x the 126-job Figure 10-12 grid.
    This is the grid the sharded results store exists for: hundreds of
    cells spread across shard files, written concurrently by however many
    ``repro run`` invocations share the store.  The summary reports
    per-seed geomean speedups and their cross-seed spread, so the sweep
    doubles as a seed-sensitivity check on the paper's headline result.
    """

    name = "sweep"
    title = "Design-space sweep: full grids x seeds (store scale-out)"

    def __init__(self, applications: Sequence[str],
                 mixes: Sequence[str]) -> None:
        self.applications = tuple(applications)
        self.mixes = tuple(mixes)

    def jobs(self, scale: Scale) -> List[Job]:
        single = [SimulationJob(workload=app, predictor=predictor,
                                num_accesses=scale.accesses,
                                warmup_accesses=scale.warmup, seed=seed)
                  for app in self.applications
                  for seed in SWEEP_SEEDS
                  for predictor in COMPARED_SYSTEMS]
        mixes = [MixJob(mix=mix, predictor=predictor,
                        accesses_per_core=scale.mix_accesses, seed=seed,
                        config=SystemConfig.paper_multi_core())
                 for mix in self.mixes
                 for seed in SWEEP_SEEDS
                 for predictor in MIX_PREDICTORS]
        return single + mixes

    def summarize(self, results: Sequence[Any], scale: Scale
                  ) -> Dict[str, Any]:
        index = 0
        systems = [name for name in COMPARED_SYSTEMS if name != "baseline"]
        per_seed: Dict[str, Dict[str, List[float]]] = {
            str(seed): {name: [] for name in systems}
            for seed in SWEEP_SEEDS}
        for _app in self.applications:
            for seed in SWEEP_SEEDS:
                per_system = {}
                for predictor in COMPARED_SYSTEMS:
                    per_system[predictor] = results[index]
                    index += 1
                baseline = per_system["baseline"]
                for name in systems:
                    per_seed[str(seed)][name].append(
                        per_system[name].speedup_over(baseline))
        single = {seed: {name: geometric_mean(values)
                         for name, values in row.items()}
                  for seed, row in per_seed.items()}
        mix_speedups: Dict[str, List[float]] = {
            str(seed): [] for seed in SWEEP_SEEDS}
        for _mix in self.mixes:
            for seed in SWEEP_SEEDS:
                per_system = {}
                for predictor in MIX_PREDICTORS:
                    per_system[predictor] = results[index]
                    index += 1
                mix_speedups[str(seed)].append(
                    per_system["lp"].speedup_over(per_system["baseline"]))
        lp = [single[str(seed)]["lp"] for seed in SWEEP_SEEDS]
        return {
            "jobs": len(results),
            "seeds": list(SWEEP_SEEDS),
            "single_core_geomean_speedup": single,
            "mix_lp_geomean_speedup": {
                seed: geometric_mean(values)
                for seed, values in mix_speedups.items()},
            "lp_seed_spread": {"min": min(lp), "max": max(lp),
                               "mean": sum(lp) / len(lp)},
        }


class HierarchySweepExperiment(Experiment):
    """A generated lattice over the declarative hierarchy config space.

    Chain depth x LLC capacity x LLC data latency x predictor, over two
    memory-intensive applications — 72 jobs, none of which is expressible
    through the fixed paper configurations.  Every job's system carries a
    :class:`~repro.memory.spec.HierarchySpec` built by
    :func:`hierarchy_lattice_spec`, so the grid exercises the full
    declarative path: spec -> N-level chain -> scalar/batch kernels ->
    content-addressed store.  Job keys are pure functions of the spec, so
    the store dedups lattice points across re-runs and daemons serve the
    sweep incrementally — a re-run against a warm store recomputes
    nothing.
    """

    name = "hierarchy-sweep"
    title = "Hierarchy config-space sweep: depth x LLC size x latency"

    def points(self) -> List[Tuple[int, int, int]]:
        """The lattice points in deterministic job order."""
        return [(depth, size, latency)
                for depth in HSWEEP_DEPTHS
                for size in HSWEEP_LLC_SIZES
                for latency in HSWEEP_LLC_LATENCIES]

    @staticmethod
    def point_name(depth: int, size: int, latency: int) -> str:
        return f"hsweep-d{depth}-llc{size // 1024}k-lat{latency}"

    def jobs(self, scale: Scale) -> List[Job]:
        jobs: List[Job] = []
        for app in HSWEEP_APPS:
            for depth, size, latency in self.points():
                spec = hierarchy_lattice_spec(depth, size, latency)
                config = SystemConfig(
                    name=self.point_name(depth, size, latency),
                    hierarchy=spec)
                for predictor in HSWEEP_PREDICTORS:
                    jobs.append(SimulationJob(
                        workload=app, predictor=predictor,
                        num_accesses=scale.accesses,
                        warmup_accesses=scale.warmup, seed=0,
                        config=config))
        return jobs

    def summarize(self, results: Sequence[Any], scale: Scale
                  ) -> Dict[str, Any]:
        per_point: Dict[str, Dict[str, Dict[str, float]]] = {}
        index = 0
        grid: Dict[str, Dict[str, Dict[str, Any]]] = {}
        for app in HSWEEP_APPS:
            for depth, size, latency in self.points():
                point = self.point_name(depth, size, latency)
                for predictor in HSWEEP_PREDICTORS:
                    grid.setdefault(point, {}).setdefault(app, {})[
                        predictor] = results[index]
                    index += 1
        for point, apps in grid.items():
            ipc = {predictor: geometric_mean(
                       [apps[app][predictor].ipc for app in HSWEEP_APPS])
                   for predictor in HSWEEP_PREDICTORS}
            amat = {predictor: sum(
                        apps[app][predictor].average_memory_access_latency
                        for app in HSWEEP_APPS) / len(HSWEEP_APPS)
                    for predictor in HSWEEP_PREDICTORS}
            speedup = geometric_mean(
                [apps[app]["lp"].speedup_over(apps[app]["baseline"])
                 for app in HSWEEP_APPS])
            per_point[point] = {"geomean_ipc": ipc, "mean_amat": amat,
                                "lp_geomean_speedup": speedup}
        return {
            "jobs": len(results),
            "applications": list(HSWEEP_APPS),
            "depths": list(HSWEEP_DEPTHS),
            "llc_sizes": list(HSWEEP_LLC_SIZES),
            "llc_data_latencies": list(HSWEEP_LLC_LATENCIES),
            "predictors": list(HSWEEP_PREDICTORS),
            "points": per_point,
        }


# ======================================================================
# Golden experiment
# ======================================================================
class GoldenExperiment(Experiment):
    """The fixed tiny grid CI regression-checks bit-for-bit.

    Sizes come from :data:`GOLDEN_SCALE` regardless of the scale the CLI
    was invoked with, so the metrics in ``GOLDEN_stats.json`` are a stable
    fingerprint of the simulator's behaviour.
    """

    name = "golden"
    title = "Golden regression grid (fixed tiny sizes)"

    def jobs(self, scale: Scale) -> List[Job]:
        del scale  # Fixed sizes: the golden fingerprint must never drift.
        single = [SimulationJob(workload=app, predictor=predictor,
                                num_accesses=GOLDEN_SCALE.accesses,
                                warmup_accesses=GOLDEN_SCALE.warmup, seed=0)
                  for app in GOLDEN_APPS
                  for predictor in COMPARED_SYSTEMS]
        mixes = [MixJob(mix=mix, predictor=predictor,
                        accesses_per_core=GOLDEN_SCALE.mix_accesses, seed=0,
                        config=SystemConfig.paper_multi_core())
                 for mix in GOLDEN_MIXES
                 for predictor in MIX_PREDICTORS]
        return single + mixes

    def summarize(self, results, scale):
        index = 0
        single: Dict[str, Any] = {}
        for app in GOLDEN_APPS:
            per_system: Dict[str, SimulationResult] = {}
            for predictor in COMPARED_SYSTEMS:
                per_system[predictor] = results[index]
                index += 1
            baseline = per_system["baseline"]
            stats = per_system["lp"].predictor_stats
            hierarchy = per_system["lp"].hierarchy_stats
            single[app] = {
                "l1_hit_rate": (hierarchy.l1_hits
                                / max(hierarchy.demand_accesses, 1)),
                "lp_accuracy": stats.accuracy,
                "lp_breakdown": stats.breakdown(),
                "average_latency": {
                    name: result.average_memory_access_latency
                    for name, result in per_system.items()},
                "speedup": {name: result.speedup_over(baseline)
                            for name, result in per_system.items()
                            if name != "baseline"},
                "normalized_energy": {
                    name: result.normalized_energy_over(baseline)
                    for name, result in per_system.items()
                    if name != "baseline"},
            }
        mixes: Dict[str, Any] = {}
        for mix in GOLDEN_MIXES:
            per_system = {}
            for predictor in MIX_PREDICTORS:
                per_system[predictor] = results[index]
                index += 1
            mixes[mix] = {
                "lp_speedup": per_system["lp"].speedup_over(
                    per_system["baseline"]),
                "ideal_speedup": per_system["ideal"].speedup_over(
                    per_system["baseline"]),
                "lp_breakdown": dict(per_system["lp"].accuracy_breakdown),
            }
        return {
            "schema": "repro-golden/1",
            "scale": {"accesses": GOLDEN_SCALE.accesses,
                      "warmup": GOLDEN_SCALE.warmup,
                      "mix_accesses": GOLDEN_SCALE.mix_accesses},
            "applications": list(GOLDEN_APPS),
            "systems": list(COMPARED_SYSTEMS),
            "single_core": single,
            "geomean_speedup": {
                name: geometric_mean([single[app]["speedup"][name]
                                      for app in GOLDEN_APPS])
                for name in COMPARED_SYSTEMS if name != "baseline"},
            "mixes": mixes,
        }


# ======================================================================
# Registry
# ======================================================================
def _build_registry() -> Dict[str, Experiment]:
    apps = tuple(HIGHLIGHTED_APPLICATIONS)
    mixes = tuple(MIXES)
    experiments: List[Experiment] = [
        _MetricsSingleGrid(
            "fig07", "Figure 7: level prediction outcome breakdown",
            apps, ("lp",), _fig07_metrics),
        _MetricsSingleGrid(
            "fig08", "Figure 8: metadata misses and PLD mispredictions",
            apps, ("lp",), _fig08_metrics),
        _MetricsSingleGrid(
            "fig09", "Figure 9: levels suggested by the predictor",
            apps, ("lp",), _fig09_metrics),
        _MetricsSingleGrid(
            "fig10", "Figure 10: normalized cache-hierarchy energy",
            apps, COMPARED_SYSTEMS, _fig10_metrics),
        _MetricsSingleGrid(
            "fig11", "Figure 11: speedup over the baseline system",
            apps, COMPARED_SYSTEMS, _fig11_metrics),
        _MetricsSingleGrid(
            "fig12", "Figure 12: average memory access latency",
            apps, COMPARED_SYSTEMS, _fig12_metrics),
        MetadataSweepExperiment(),
        MixGridExperiment(
            "fig13", "Figure 13: multi-core prediction accuracy",
            mixes, MIX_PREDICTORS, _fig13_metrics),
        MixGridExperiment(
            "fig14", "Figure 14: multi-core speedup",
            mixes, MIX_PREDICTORS, _fig14_metrics),
        SensitivityExperiment(),
        GoldenExperiment(),
        SweepExperiment(apps, mixes),
        HierarchySweepExperiment(),
    ]
    return {experiment.name: experiment for experiment in experiments}


#: Every experiment ``python -m repro`` can run, keyed by CLI name.
EXPERIMENTS: Dict[str, Experiment] = _build_registry()
