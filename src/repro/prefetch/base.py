"""Prefetcher interface and shared statistics.

The paper's baseline uses aggressive prefetching at every level — tagged
next-line prefetchers at L1 (degree 1) and L2 (degree 2) and DCPT (degree 2)
at the LLC — and Figure 3 evaluates eleven published prefetchers for coverage
and accuracy.  All of them implement the :class:`Prefetcher` interface defined
here: the owning cache level feeds demand accesses (with hit/miss information)
into :meth:`observe`, and the prefetcher returns the block addresses it wants
brought into that level.

Coverage and accuracy bookkeeping follows the paper's definitions:

* *accuracy* — fraction of prefetched lines that were referenced by a demand
  access before being evicted (the cache reports uses/evictions back via
  :meth:`record_useful` / :meth:`record_useless`);
* *coverage* — fraction of baseline demand misses eliminated; this needs a
  no-prefetch baseline run and is computed by the benchmark harness from the
  cache statistics, not by the prefetcher itself.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List

from ..memory.block import DEFAULT_BLOCK_SIZE


@dataclass(slots=True)
class PrefetchAccess:
    """One demand access as seen by a prefetcher."""

    address: int
    pc: int
    hit: bool
    is_load: bool = True


@dataclass
class PrefetcherStats:
    """Issue/usefulness counters for one prefetcher instance."""

    issued: int = 0
    useful: int = 0
    useless: int = 0
    late: int = 0

    @property
    def accuracy(self) -> float:
        resolved = self.useful + self.useless
        return self.useful / resolved if resolved else 0.0

    def reset(self) -> None:
        self.issued = 0
        self.useful = 0
        self.useless = 0
        self.late = 0


class Prefetcher(ABC):
    """Base class for all hardware prefetchers in the simulator."""

    def __init__(self, degree: int = 1,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if degree < 1:
            raise ValueError("prefetch degree must be at least 1")
        self.degree = degree
        self.block_size = block_size
        self.stats = PrefetcherStats()
        self.enabled = True

    # ------------------------------------------------------------------
    # Main interface
    # ------------------------------------------------------------------
    def observe(self, access: PrefetchAccess) -> List[int]:
        """Feed one demand access; return block addresses to prefetch."""
        if not self.enabled:
            self._train_only(access)
            return []
        candidates = self._generate(access)
        if not candidates:
            # Hot path: most demand accesses trigger nothing — avoid the
            # dedup set/list allocations entirely.
            return []
        if len(candidates) == 1:
            # Single candidate (degree-1 prefetchers): skip the dedup set.
            address = candidates[0]
            block = address - (address % self.block_size)
            if block < 0:
                return []
            self.stats.issued += 1
            return [block]
        unique: List[int] = []
        seen = set()
        for address in candidates:
            block = address - (address % self.block_size)
            if block >= 0 and block not in seen:
                seen.add(block)
                unique.append(block)
        self.stats.issued += len(unique)
        return unique

    @abstractmethod
    def _generate(self, access: PrefetchAccess) -> List[int]:
        """Produce candidate prefetch addresses for this access."""

    def _train_only(self, access: PrefetchAccess) -> None:
        """Keep training state warm while throttled (default: full generate)."""
        self._generate(access)

    # ------------------------------------------------------------------
    # Feedback from the owning cache
    # ------------------------------------------------------------------
    def record_useful(self, count: int = 1) -> None:
        self.stats.useful += count

    def record_useless(self, count: int = 1) -> None:
        self.stats.useless += count

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return type(self).__name__

    def reset_statistics(self) -> None:
        self.stats.reset()


_NO_CANDIDATES: tuple = ()


class NullPrefetcher(Prefetcher):
    """A prefetcher that never prefetches (no-prefetch baseline runs)."""

    def _generate(self, access: PrefetchAccess) -> List[int]:
        return _NO_CANDIDATES
