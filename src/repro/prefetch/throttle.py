"""Prefetch throttling mechanisms.

Section IV.A of the paper describes two throttling mechanisms used by the
baseline because always-on aggressive prefetchers hurt some applications
(e.g. 605.mcf):

1. **MSHR reservation** — 25 % of MSHR entries are reserved for demand
   accesses.  This is implemented inside :class:`repro.memory.mshr.MSHRFile`
   (``demand_reserve_fraction``); nothing is needed here beyond configuring it.
2. **Accuracy-gated epochs** — in each epoch of N accesses the prefetcher runs
   for the first N/10 accesses ("sampling window"), its accuracy is measured,
   and it is disabled for the remaining 9N/10 accesses if accuracy fell below
   a threshold (40 % in the paper).

:class:`ThrottledPrefetcher` wraps any prefetcher with mechanism 2.
"""

from __future__ import annotations

from typing import List

from .base import PrefetchAccess, Prefetcher


class ThrottledPrefetcher(Prefetcher):
    """Accuracy-gated epoch throttling wrapper around another prefetcher.

    Args:
        inner: The prefetcher being throttled.
        epoch_accesses: Length of one epoch in observed demand accesses.  The
            paper uses 10 million; simulations over short synthetic traces use
            a proportionally smaller epoch.
        sample_fraction: Fraction of the epoch during which the prefetcher is
            always enabled and its accuracy sampled.
        accuracy_threshold: Minimum sampled accuracy to keep the prefetcher
            enabled for the rest of the epoch.
    """

    def __init__(self, inner: Prefetcher, epoch_accesses: int = 100_000,
                 sample_fraction: float = 0.1,
                 accuracy_threshold: float = 0.4) -> None:
        super().__init__(degree=inner.degree, block_size=inner.block_size)
        if epoch_accesses <= 0:
            raise ValueError("epoch_accesses must be positive")
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        self.inner = inner
        self.epoch_accesses = epoch_accesses
        self.sample_accesses = max(1, int(epoch_accesses * sample_fraction))
        self.accuracy_threshold = accuracy_threshold
        self._epoch_position = 0
        self._sample_useful = 0
        self._sample_useless = 0
        self._gated = False
        self.epochs_gated = 0
        self.epochs_completed = 0

    # ------------------------------------------------------------------
    # Prefetcher interface
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"Throttled({self.inner.name})"

    def _generate(self, access: PrefetchAccess) -> List[int]:
        self._advance_epoch()
        in_sample = self._epoch_position <= self.sample_accesses
        if in_sample or not self._gated:
            return self.inner._generate(access)
        # Gated: keep the inner predictor trained but drop its requests.
        self.inner._generate(access)
        return []

    def _advance_epoch(self) -> None:
        self._epoch_position += 1
        if self._epoch_position == self.sample_accesses + 1:
            # Sampling window just ended: decide whether to gate.
            accuracy = self._sample_accuracy()
            self._gated = accuracy < self.accuracy_threshold
            if self._gated:
                self.epochs_gated += 1
        if self._epoch_position >= self.epoch_accesses:
            self._epoch_position = 0
            self._sample_useful = 0
            self._sample_useless = 0
            self._gated = False
            self.epochs_completed += 1

    def _sample_accuracy(self) -> float:
        resolved = self._sample_useful + self._sample_useless
        if resolved == 0:
            # No feedback yet: give the prefetcher the benefit of the doubt.
            return 1.0
        return self._sample_useful / resolved

    # ------------------------------------------------------------------
    # Feedback (forwarded to the inner prefetcher and sampled)
    # ------------------------------------------------------------------
    def record_useful(self, count: int = 1) -> None:
        super().record_useful(count)
        self.inner.record_useful(count)
        if self._epoch_position <= self.sample_accesses:
            self._sample_useful += count

    def record_useless(self, count: int = 1) -> None:
        super().record_useless(count)
        self.inner.record_useless(count)
        if self._epoch_position <= self.sample_accesses:
            self._sample_useless += count

    @property
    def currently_gated(self) -> bool:
        return self._gated and self._epoch_position > self.sample_accesses

    def reset_statistics(self) -> None:
        super().reset_statistics()
        self.inner.reset_statistics()
        self.epochs_gated = 0
        self.epochs_completed = 0
