"""Tagged next-line and stride prefetchers.

The paper's baseline uses tagged next-line prefetchers at L1 (degree 1) and
L2 (degree 2): on a demand miss — or on the first demand hit to a line that
was itself prefetched (the "tag") — the next ``degree`` sequential lines are
fetched.  The classic stride prefetcher (per-PC reference prediction table) is
included as well; it is a common component of the comparison points in
Figure 3 and a useful substrate for tests.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List

from .base import PrefetchAccess, Prefetcher, _NO_CANDIDATES


class TaggedNextLinePrefetcher(Prefetcher):
    """Tagged sequential (next-line) prefetcher.

    A prefetch is triggered on a demand miss, and also on a demand hit to a
    block that this prefetcher brought in (the tagged part): that hit is
    evidence the sequential stream is being consumed, so prefetching continues
    ahead of it.
    """

    def __init__(self, degree: int = 1, block_size: int = 64,
                 tag_capacity: int = 1024) -> None:
        super().__init__(degree=degree, block_size=block_size)
        # Blocks we prefetched and have not yet seen a demand access to.
        self._tagged: OrderedDict[int, bool] = OrderedDict()
        self._tag_capacity = tag_capacity

    def _remember(self, block: int) -> None:
        if block in self._tagged:
            self._tagged.move_to_end(block)
            return
        if len(self._tagged) >= self._tag_capacity:
            self._tagged.popitem(last=False)
        self._tagged[block] = True

    def _generate(self, access: PrefetchAccess) -> List[int]:
        block = access.address - (access.address % self.block_size)
        triggered = not access.hit
        if access.hit and block in self._tagged:
            # First demand use of a prefetched line keeps the stream going.
            del self._tagged[block]
            triggered = True
        if not triggered:
            return _NO_CANDIDATES
        candidates = []
        tagged = self._tagged
        capacity = self._tag_capacity
        block_size = self.block_size
        for i in range(1, self.degree + 1):
            target = block + i * block_size
            candidates.append(target)
            # Inline _remember(): this runs for every issued prefetch.
            if target in tagged:
                tagged.move_to_end(target)
            else:
                if len(tagged) >= capacity:
                    tagged.popitem(last=False)
                tagged[target] = True
        return candidates


@dataclass
class _StrideEntry:
    last_address: int
    stride: int
    confidence: int


class StridePrefetcher(Prefetcher):
    """Per-PC stride prefetcher (reference prediction table).

    Each static load PC gets a table entry holding its last address and last
    observed stride with a 2-bit confidence counter; once the same stride is
    seen twice, ``degree`` strided blocks ahead are prefetched.
    """

    MAX_CONFIDENCE = 3
    ISSUE_CONFIDENCE = 2

    def __init__(self, degree: int = 2, block_size: int = 64,
                 table_entries: int = 256) -> None:
        super().__init__(degree=degree, block_size=block_size)
        self._table: OrderedDict[int, _StrideEntry] = OrderedDict()
        self._table_entries = table_entries

    def _entry_for(self, pc: int) -> _StrideEntry:
        entry = self._table.get(pc)
        if entry is not None:
            self._table.move_to_end(pc)
            return entry
        if len(self._table) >= self._table_entries:
            self._table.popitem(last=False)
        entry = _StrideEntry(last_address=0, stride=0, confidence=0)
        self._table[pc] = entry
        return entry

    def _generate(self, access: PrefetchAccess) -> List[int]:
        entry = self._entry_for(access.pc)
        candidates: List[int] = []
        if entry.last_address:
            stride = access.address - entry.last_address
            if stride != 0 and stride == entry.stride:
                entry.confidence = min(entry.confidence + 1, self.MAX_CONFIDENCE)
            else:
                entry.confidence = max(entry.confidence - 1, 0)
                entry.stride = stride
            if entry.confidence >= self.ISSUE_CONFIDENCE and entry.stride:
                for i in range(1, self.degree + 1):
                    candidates.append(access.address + i * entry.stride)
        entry.last_address = access.address
        return candidates
