"""Hardware prefetchers used by the baseline system and by Figure 3.

The paper's baseline prefetch scheme (Section IV.A) is built from
:class:`TaggedNextLinePrefetcher` at L1/L2 and :class:`DCPTPrefetcher` at the
LLC, wrapped in :class:`ThrottledPrefetcher` for accuracy-gated epochs.  The
remaining prefetchers reproduce the comparison sweep of Figure 3.
"""

from .ampm import AMPMPrefetcher, SlimAMPMPrefetcher
from .base import NullPrefetcher, PrefetchAccess, Prefetcher, PrefetcherStats
from .dcpt import DCPTPrefetcher
from .nextline import StridePrefetcher, TaggedNextLinePrefetcher
from .offset import BestOffsetPrefetcher, SandboxPrefetcher
from .spp import SPPPrefetcher, SPPv2Prefetcher
from .temporal import (
    IndirectMemoryPrefetcher,
    ISBPrefetcher,
    TemporalStreamPrefetcher,
)
from .throttle import ThrottledPrefetcher

#: The LLC prefetchers evaluated in Figure 3, by the labels the paper uses.
FIGURE3_PREFETCHERS = {
    "AMPM": AMPMPrefetcher,
    "BOP": BestOffsetPrefetcher,
    "DCPT": DCPTPrefetcher,
    "Indirect": IndirectMemoryPrefetcher,
    "ISB": ISBPrefetcher,
    "SPP": SPPPrefetcher,
    "SBO": SandboxPrefetcher,
    "SPPV2": SPPv2Prefetcher,
    "SlimAMPM": SlimAMPMPrefetcher,
    "STeMS": TemporalStreamPrefetcher,
    "Stride": StridePrefetcher,
}


def make_prefetcher(name: str, **kwargs) -> Prefetcher:
    """Instantiate one of the Figure-3 prefetchers by its paper label."""
    try:
        cls = FIGURE3_PREFETCHERS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown prefetcher {name!r}; choose from "
            f"{sorted(FIGURE3_PREFETCHERS)}") from exc
    return cls(**kwargs)


__all__ = [
    "AMPMPrefetcher",
    "BestOffsetPrefetcher",
    "DCPTPrefetcher",
    "FIGURE3_PREFETCHERS",
    "IndirectMemoryPrefetcher",
    "ISBPrefetcher",
    "NullPrefetcher",
    "PrefetchAccess",
    "Prefetcher",
    "PrefetcherStats",
    "SandboxPrefetcher",
    "SlimAMPMPrefetcher",
    "SPPPrefetcher",
    "SPPv2Prefetcher",
    "StridePrefetcher",
    "TaggedNextLinePrefetcher",
    "TemporalStreamPrefetcher",
    "ThrottledPrefetcher",
    "make_prefetcher",
]
