"""Offset prefetchers: Best-Offset (BOP) and Sandbox (SBO).

Both prefetchers learn a single good *offset* (in blocks) to add to every
demand-missing address, rather than per-PC patterns:

* **Best-Offset** (Michaud, HPCA 2016) scores a fixed list of candidate
  offsets in rounds: an offset scores a point whenever the current miss
  address minus that offset was recently requested (tracked in a small recent
  requests table).  When a round ends, the best-scoring offset (if above a
  threshold) becomes the active prefetch offset.
* **Sandbox** (Brown and Pugsley, DPC2 2014) evaluates candidate offsets in a
  "sandbox": pseudo-prefetches are added to a Bloom-filter-like set and score
  when later demand accesses hit them; offsets whose score passes a threshold
  are promoted to issue real prefetches.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Set

from .base import PrefetchAccess, Prefetcher

#: Candidate offsets from the Best-Offset paper (a subset; block units).
DEFAULT_OFFSETS = [1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 30, 32]


class BestOffsetPrefetcher(Prefetcher):
    """Best-offset prefetching with round-based offset scoring."""

    def __init__(self, degree: int = 1, block_size: int = 64,
                 round_length: int = 256, score_threshold: int = 20,
                 recent_requests: int = 128) -> None:
        super().__init__(degree=degree, block_size=block_size)
        self.round_length = round_length
        self.score_threshold = score_threshold
        self._offsets = list(DEFAULT_OFFSETS)
        self._scores: Dict[int, int] = {offset: 0 for offset in self._offsets}
        self._recent: "OrderedDict[int, bool]" = OrderedDict()
        self._recent_capacity = recent_requests
        self._round_position = 0
        self._active_offset = 1
        self.rounds_completed = 0

    def _remember(self, block: int) -> None:
        if block in self._recent:
            self._recent.move_to_end(block)
            return
        if len(self._recent) >= self._recent_capacity:
            self._recent.popitem(last=False)
        self._recent[block] = True

    def _score_offsets(self, block: int) -> None:
        for offset in self._offsets:
            if (block - offset) in self._recent:
                self._scores[offset] += 1

    def _end_round_if_needed(self) -> None:
        self._round_position += 1
        if self._round_position < self.round_length:
            return
        best_offset = max(self._offsets, key=lambda o: self._scores[o])
        if self._scores[best_offset] >= self.score_threshold:
            self._active_offset = best_offset
        self._scores = {offset: 0 for offset in self._offsets}
        self._round_position = 0
        self.rounds_completed += 1

    def _generate(self, access: PrefetchAccess) -> List[int]:
        block = access.address // self.block_size
        self._score_offsets(block)
        self._remember(block)
        self._end_round_if_needed()
        if access.hit:
            return []
        candidates = []
        for i in range(1, self.degree + 1):
            candidates.append(
                (block + i * self._active_offset) * self.block_size)
        return candidates

    @property
    def active_offset(self) -> int:
        return self._active_offset


class SandboxPrefetcher(Prefetcher):
    """Sandbox prefetching: offsets are auditioned before issuing for real."""

    def __init__(self, degree: int = 1, block_size: int = 64,
                 evaluation_period: int = 256, promote_threshold: int = 16,
                 sandbox_capacity: int = 512) -> None:
        super().__init__(degree=degree, block_size=block_size)
        self.evaluation_period = evaluation_period
        self.promote_threshold = promote_threshold
        self.sandbox_capacity = sandbox_capacity
        self._candidates = [1, -1, 2, -2, 4, 8]
        self._current_index = 0
        self._sandbox: Set[int] = set()
        self._sandbox_order: Deque[int] = deque()
        self._score = 0
        self._position = 0
        self._promoted: List[int] = []

    def _sandbox_add(self, block: int) -> None:
        if block in self._sandbox:
            return
        if len(self._sandbox_order) >= self.sandbox_capacity:
            oldest = self._sandbox_order.popleft()
            self._sandbox.discard(oldest)
        self._sandbox.add(block)
        self._sandbox_order.append(block)

    def _rotate_candidate(self) -> None:
        offset = self._candidates[self._current_index]
        if self._score >= self.promote_threshold:
            if offset not in self._promoted:
                self._promoted.append(offset)
                self._promoted = self._promoted[-2:]  # keep the best two
        elif offset in self._promoted and self._score < self.promote_threshold // 2:
            self._promoted.remove(offset)
        self._current_index = (self._current_index + 1) % len(self._candidates)
        self._score = 0
        self._position = 0
        self._sandbox.clear()
        self._sandbox_order.clear()

    def _generate(self, access: PrefetchAccess) -> List[int]:
        block = access.address // self.block_size
        # Score: did an earlier sandbox prefetch predict this access?
        if block in self._sandbox:
            self._score += 1
        # Audition the current candidate offset in the sandbox.
        offset = self._candidates[self._current_index]
        self._sandbox_add(block + offset)
        self._position += 1
        if self._position >= self.evaluation_period:
            self._rotate_candidate()

        if access.hit or not self._promoted:
            return []
        candidates = []
        for promoted in self._promoted:
            for i in range(1, self.degree + 1):
                candidates.append((block + i * promoted) * self.block_size)
        return candidates

    @property
    def promoted_offsets(self) -> List[int]:
        return list(self._promoted)
