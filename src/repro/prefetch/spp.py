"""Signature Path Prefetcher (SPP) and its enhanced variant.

SPP (Kim et al.; "Lookahead prefetching with signature path", DPC2 2015)
compresses the recent sequence of intra-page deltas into a *signature*, looks
the signature up in a pattern table that maps signatures to likely next deltas
with confidence, and walks the signature path speculatively: each predicted
delta produces a new signature, letting the prefetcher run several deltas
ahead as long as the compound confidence stays above a threshold.

``SPPv2Prefetcher`` models the enhanced version evaluated in Figure 3 (higher
lookahead and a global-history bootstrap for new pages).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .base import PrefetchAccess, Prefetcher


def _update_signature(signature: int, delta: int) -> int:
    """Fold a new delta into the 12-bit path signature."""
    return ((signature << 3) ^ (delta & 0x3F)) & 0xFFF


@dataclass
class _PageEntry:
    last_offset: int
    signature: int = 0


class SPPPrefetcher(Prefetcher):
    """Signature path prefetching with confidence-scaled lookahead."""

    def __init__(self, degree: int = 2, block_size: int = 64,
                 page_size: int = 4096, pattern_entries: int = 512,
                 page_entries: int = 64, lookahead: int = 4,
                 confidence_threshold: float = 0.25) -> None:
        super().__init__(degree=degree, block_size=block_size)
        self.page_size = page_size
        self.blocks_per_page = page_size // block_size
        self.lookahead = lookahead
        self.confidence_threshold = confidence_threshold
        self._pages: "OrderedDict[int, _PageEntry]" = OrderedDict()
        self._page_entries = page_entries
        # signature -> {delta: count}
        self._patterns: "OrderedDict[int, Dict[int, int]]" = OrderedDict()
        self._pattern_entries = pattern_entries

    # ------------------------------------------------------------------
    # Table helpers
    # ------------------------------------------------------------------
    def _page(self, page: int) -> Optional[_PageEntry]:
        entry = self._pages.get(page)
        if entry is not None:
            self._pages.move_to_end(page)
        return entry

    def _new_page(self, page: int, offset: int) -> _PageEntry:
        if len(self._pages) >= self._page_entries:
            self._pages.popitem(last=False)
        entry = _PageEntry(last_offset=offset)
        self._pages[page] = entry
        return entry

    def _pattern(self, signature: int) -> Dict[int, int]:
        counts = self._patterns.get(signature)
        if counts is not None:
            self._patterns.move_to_end(signature)
            return counts
        if len(self._patterns) >= self._pattern_entries:
            self._patterns.popitem(last=False)
        counts = {}
        self._patterns[signature] = counts
        return counts

    def _best_delta(self, signature: int) -> Tuple[Optional[int], float]:
        counts = self._patterns.get(signature)
        if not counts:
            return None, 0.0
        total = sum(counts.values())
        delta, count = max(counts.items(), key=lambda item: item[1])
        return delta, count / total

    # ------------------------------------------------------------------
    # Main hook
    # ------------------------------------------------------------------
    def _generate(self, access: PrefetchAccess) -> List[int]:
        page = access.address // self.page_size
        offset = (access.address % self.page_size) // self.block_size
        entry = self._page(page)
        if entry is None:
            self._new_page(page, offset)
            return self._bootstrap(page, offset)

        delta = offset - entry.last_offset
        if delta != 0:
            # Train the pattern table with the observed transition.
            counts = self._pattern(entry.signature)
            counts[delta] = counts.get(delta, 0) + 1
            entry.signature = _update_signature(entry.signature, delta)
        entry.last_offset = offset

        # Speculatively walk the signature path.
        candidates: List[int] = []
        signature = entry.signature
        confidence = 1.0
        current_offset = offset
        for _ in range(self.lookahead):
            next_delta, delta_confidence = self._best_delta(signature)
            if next_delta is None:
                break
            confidence *= delta_confidence
            if confidence < self.confidence_threshold:
                break
            current_offset += next_delta
            if not 0 <= current_offset < self.blocks_per_page:
                break
            candidates.append(page * self.page_size
                              + current_offset * self.block_size)
            if len(candidates) >= self.degree:
                break
            signature = _update_signature(signature, next_delta)
        return candidates

    def _bootstrap(self, page: int, offset: int) -> List[int]:
        """First touch of a page: no history, issue nothing (base SPP)."""
        return []


class SPPv2Prefetcher(SPPPrefetcher):
    """Enhanced SPP: deeper lookahead plus next-line bootstrap on new pages."""

    def __init__(self, degree: int = 4, block_size: int = 64, **kwargs) -> None:
        kwargs.setdefault("lookahead", 8)
        kwargs.setdefault("confidence_threshold", 0.20)
        super().__init__(degree=degree, block_size=block_size, **kwargs)

    def _bootstrap(self, page: int, offset: int) -> List[int]:
        if offset + 1 >= self.blocks_per_page:
            return []
        return [page * self.page_size + (offset + 1) * self.block_size]
