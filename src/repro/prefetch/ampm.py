"""Access Map Pattern Matching (AMPM) prefetcher and its slim variant.

AMPM (Ishii, Inaba and Hiraki, ICS 2009) divides memory into fixed-size zones
and keeps a 2-bit state per block in each hot zone (an *access map*).  On each
access, candidate strides ``k`` are tested against the map: if both ``addr-k``
and ``addr-2k`` were accessed, ``addr+k`` is predicted and prefetched.  The
scheme is PC-agnostic and excels at strided and densely-scanned regions.

``SlimAMPMPrefetcher`` is the bandwidth-efficient variant from the DPC2
submission referenced by the paper (Young and Krisshna [38]): it restricts the
candidate strides to a small set and requires stronger evidence, issuing fewer
but more accurate prefetches.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from .base import PrefetchAccess, Prefetcher


class AMPMPrefetcher(Prefetcher):
    """Access map pattern matching over 4 KiB zones."""

    def __init__(self, degree: int = 2, block_size: int = 64,
                 zone_size: int = 4096, max_zones: int = 64,
                 max_stride: int = 16) -> None:
        super().__init__(degree=degree, block_size=block_size)
        self.zone_size = zone_size
        self.blocks_per_zone = zone_size // block_size
        self.max_zones = max_zones
        self.max_stride = max_stride
        # zone id -> set of accessed block offsets within the zone.
        self._zones: "OrderedDict[int, set]" = OrderedDict()

    def _zone_map(self, zone: int) -> set:
        accessed = self._zones.get(zone)
        if accessed is not None:
            self._zones.move_to_end(zone)
            return accessed
        if len(self._zones) >= self.max_zones:
            self._zones.popitem(last=False)
        accessed = set()
        self._zones[zone] = accessed
        return accessed

    def _candidate_strides(self) -> List[int]:
        strides = list(range(1, self.max_stride + 1))
        strides += [-s for s in range(1, self.max_stride + 1)]
        return strides

    def _generate(self, access: PrefetchAccess) -> List[int]:
        block = access.address // self.block_size
        zone = access.address // self.zone_size
        offset = block % self.blocks_per_zone
        accessed = self._zone_map(zone)
        accessed.add(offset)

        candidates: List[int] = []
        for stride in self._candidate_strides():
            back1 = offset - stride
            back2 = offset - 2 * stride
            target = offset + stride
            if not 0 <= target < self.blocks_per_zone:
                continue
            if back1 in accessed and (
                    back2 in accessed or not 0 <= back2 < self.blocks_per_zone):
                address = (zone * self.zone_size
                           + target * self.block_size)
                candidates.append(address)
                if len(candidates) >= self.degree:
                    break
        return candidates


class SlimAMPMPrefetcher(AMPMPrefetcher):
    """Bandwidth-efficient AMPM: few strides, strict two-sample evidence."""

    def __init__(self, degree: int = 1, block_size: int = 64,
                 zone_size: int = 4096, max_zones: int = 32) -> None:
        super().__init__(degree=degree, block_size=block_size,
                         zone_size=zone_size, max_zones=max_zones,
                         max_stride=4)

    def _candidate_strides(self) -> List[int]:
        return [1, 2, 4, -1]

    def _generate(self, access: PrefetchAccess) -> List[int]:
        block = access.address // self.block_size
        zone = access.address // self.zone_size
        offset = block % self.blocks_per_zone
        accessed = self._zone_map(zone)
        accessed.add(offset)

        candidates: List[int] = []
        for stride in self._candidate_strides():
            back1 = offset - stride
            back2 = offset - 2 * stride
            target = offset + stride
            if not 0 <= target < self.blocks_per_zone:
                continue
            # Slim variant: both history samples must be present (no edge
            # forgiveness), which suppresses speculative edge prefetches.
            if back1 in accessed and back2 in accessed:
                candidates.append(zone * self.zone_size
                                  + target * self.block_size)
                if len(candidates) >= self.degree:
                    break
        return candidates
