"""Temporal and irregular prefetchers: ISB, IMP, STeMS and Domino-style.

These cover the remaining comparison points in Figure 3 of the paper:

* **ISB** (Jain and Lin, MICRO 2013) — the Irregular Stream Buffer linearises
  irregular but *recurring* access sequences by assigning consecutive
  "structural" addresses to physically scattered blocks that are accessed one
  after another, then prefetching along the structural space.
* **IMP** (Yu et al., MICRO 2015) — the Indirect Memory Prefetcher detects
  ``A[B[i]]`` patterns: a streaming index array plus an indirect access whose
  addresses are an affine function of the index values.  Our trace-driven
  variant detects the recurring (base, scale) relation between a sequential
  stream and the irregular stream it drives.
* **STeMS / Domino-style temporal streaming** — records the global miss
  sequence and, on a hit to a previously recorded miss address, replays the
  addresses that historically followed it.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Dict, List, Tuple

from .base import PrefetchAccess, Prefetcher


class ISBPrefetcher(Prefetcher):
    """Irregular Stream Buffer: structural-address linearisation per PC."""

    def __init__(self, degree: int = 2, block_size: int = 64,
                 max_streams: int = 64, stream_capacity: int = 4096) -> None:
        super().__init__(degree=degree, block_size=block_size)
        self.max_streams = max_streams
        self.stream_capacity = stream_capacity
        # Per-PC: physical block -> structural index, and the inverse list.
        self._phys_to_struct: "OrderedDict[int, Dict[int, int]]" = OrderedDict()
        self._struct_to_phys: Dict[int, List[int]] = {}

    def _stream_for(self, pc: int) -> Tuple[Dict[int, int], List[int]]:
        mapping = self._phys_to_struct.get(pc)
        if mapping is not None:
            self._phys_to_struct.move_to_end(pc)
            return mapping, self._struct_to_phys[pc]
        if len(self._phys_to_struct) >= self.max_streams:
            evicted_pc, _ = self._phys_to_struct.popitem(last=False)
            self._struct_to_phys.pop(evicted_pc, None)
        mapping = {}
        self._phys_to_struct[pc] = mapping
        self._struct_to_phys[pc] = []
        return mapping, self._struct_to_phys[pc]

    def _generate(self, access: PrefetchAccess) -> List[int]:
        block = access.address // self.block_size
        mapping, ordering = self._stream_for(access.pc)

        structural = mapping.get(block)
        if structural is None:
            # Append the block to this PC's structural space.
            if len(ordering) < self.stream_capacity:
                mapping[block] = len(ordering)
                ordering.append(block)
            return []

        # Known block: prefetch the next blocks in structural order.
        candidates = []
        for i in range(1, self.degree + 1):
            index = structural + i
            if index >= len(ordering):
                break
            candidates.append(ordering[index] * self.block_size)
        return candidates


class IndirectMemoryPrefetcher(Prefetcher):
    """IMP-style indirect prefetcher for A[B[i]] access patterns.

    The trace generators in this reproduction expose the index stream and the
    dependent stream as distinct PCs; the prefetcher learns, for a pair of
    PCs, a stable affine relation (scale) between consecutive dependent
    addresses once the index stream is detected as sequential, then projects
    ahead of the stream.  Truly data-dependent prefetch (reading B[i] to
    compute A[B[i]]) cannot be expressed in a trace-driven model, so this is
    the closest behavioural equivalent; its lower accuracy on scattered
    targets mirrors the published behaviour.
    """

    def __init__(self, degree: int = 2, block_size: int = 64,
                 table_entries: int = 128) -> None:
        super().__init__(degree=degree, block_size=block_size)
        self._streaming_pcs: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
        self._indirect: "OrderedDict[int, Deque[int]]" = OrderedDict()
        self._table_entries = table_entries

    def _note_streaming(self, pc: int, address: int) -> None:
        last, run = self._streaming_pcs.get(pc, (0, 0))
        stride = address - last
        if 0 < stride <= 4 * self.block_size and last:
            run = min(run + 1, 8)
        else:
            run = 0
        self._streaming_pcs[pc] = (address, run)
        self._streaming_pcs.move_to_end(pc)
        if len(self._streaming_pcs) > self._table_entries:
            self._streaming_pcs.popitem(last=False)

    def _generate(self, access: PrefetchAccess) -> List[int]:
        self._note_streaming(access.pc, access.address)
        history = self._indirect.get(access.pc)
        if history is None:
            if len(self._indirect) >= self._table_entries:
                self._indirect.popitem(last=False)
            history = deque(maxlen=8)
            self._indirect[access.pc] = history
        else:
            self._indirect.move_to_end(access.pc)
        history.append(access.address)

        # Only project for PCs whose addresses are *not* sequential (the
        # indirect stream) while some other PC is streaming (the index).
        streaming_active = any(run >= 4 for _, run in self._streaming_pcs.values())
        if not streaming_active or len(history) < 3:
            return []
        deltas = [history[i + 1] - history[i] for i in range(len(history) - 1)]
        recent = deltas[-2:]
        if abs(recent[-1]) <= self.block_size:
            return []
        # Project the average recent delta forward (captures gather sweeps
        # with a roughly stationary stride distribution).
        projected = sum(recent) // len(recent)
        if projected == 0:
            return []
        candidates = []
        for i in range(1, self.degree + 1):
            target = access.address + i * projected
            if target > 0:
                candidates.append(target)
        return candidates


class TemporalStreamPrefetcher(Prefetcher):
    """STeMS / Domino-style global temporal streaming.

    Records the global sequence of demand misses; when a miss matches a
    previously recorded address, the addresses that followed it historically
    are replayed.  Effective for pointer-chasing loops that repeat their
    traversal order, at the cost of large metadata — the published weakness
    the paper cites for temporal prefetchers.
    """

    def __init__(self, degree: int = 4, block_size: int = 64,
                 history_capacity: int = 16384) -> None:
        super().__init__(degree=degree, block_size=block_size)
        self._history: List[int] = []
        self._positions: Dict[int, int] = {}
        self._capacity = history_capacity

    def _generate(self, access: PrefetchAccess) -> List[int]:
        if access.hit:
            return []
        block = access.address // self.block_size

        candidates: List[int] = []
        position = self._positions.get(block)
        if position is not None:
            follow = self._history[position + 1: position + 1 + self.degree]
            candidates = [b * self.block_size for b in follow]

        # Record the miss in the global history.
        if len(self._history) >= self._capacity:
            # Drop the oldest half to avoid rebuilding the index too often.
            keep_from = self._capacity // 2
            self._history = self._history[keep_from:]
            self._positions = {b: i for i, b in enumerate(self._history)}
        self._positions[block] = len(self._history)
        self._history.append(block)
        return candidates
