"""Delta-Correlating Prediction Tables (DCPT) prefetcher.

DCPT (Grannaes, Jahre and Natvig, HiPEAC 2010) is the LLC prefetcher the paper
selects for its baseline ("DCPT exhibits the highest coverage and high
accuracy and worked well in combination with the L1 and L2 prefetchers",
Section IV.A).  Each static load PC owns a table entry storing the last
address, the last prefetched address and a circular buffer of recent address
*deltas*.  On each access the newest delta pair is matched against the delta
history; when the pair recurs, the deltas that followed it historically are
replayed from the current address to produce prefetch candidates — this is
"delta correlation with partial matching".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List

from .base import PrefetchAccess, Prefetcher


@dataclass
class _DCPTEntry:
    """Per-PC state: last address and a bounded delta history."""

    last_address: int = 0
    last_prefetch: int = 0
    deltas: List[int] = field(default_factory=list)


class DCPTPrefetcher(Prefetcher):
    """Delta-correlating prediction tables with partial matching."""

    def __init__(self, degree: int = 2, block_size: int = 64,
                 table_entries: int = 128, deltas_per_entry: int = 16) -> None:
        super().__init__(degree=degree, block_size=block_size)
        self._table: OrderedDict[int, _DCPTEntry] = OrderedDict()
        self._table_entries = table_entries
        self._deltas_per_entry = deltas_per_entry

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------
    def _entry_for(self, pc: int) -> _DCPTEntry:
        entry = self._table.get(pc)
        if entry is not None:
            self._table.move_to_end(pc)
            return entry
        if len(self._table) >= self._table_entries:
            self._table.popitem(last=False)
        entry = _DCPTEntry()
        self._table[pc] = entry
        return entry

    # ------------------------------------------------------------------
    # Delta correlation
    # ------------------------------------------------------------------
    def _correlate(self, entry: _DCPTEntry, current_block: int) -> List[int]:
        """Replay deltas that historically followed the latest delta pair."""
        deltas = entry.deltas
        if len(deltas) < 3:
            return []
        pair_first = deltas[-2]
        pair_second = deltas[-1]
        candidates: List[int] = []
        # Search the history (excluding the newest pair itself) for the same
        # consecutive delta pair; on a match replay the deltas that follow.
        for i in range(len(deltas) - 3, -1, -1):
            if i + 1 >= len(deltas) - 1:
                continue
            if deltas[i] == pair_first and deltas[i + 1] == pair_second:
                address = current_block
                for delta in deltas[i + 2:]:
                    address += delta * self.block_size
                    if address <= 0:
                        break
                    candidates.append(address)
                    if len(candidates) >= self.degree:
                        return candidates
                break
        return candidates

    def _generate(self, access: PrefetchAccess) -> List[int]:
        block = access.address - (access.address % self.block_size)
        entry = self._entry_for(access.pc)
        candidates: List[int] = []
        if entry.last_address:
            delta_blocks = (block - entry.last_address) // self.block_size
            if delta_blocks != 0:
                entry.deltas.append(delta_blocks)
                if len(entry.deltas) > self._deltas_per_entry:
                    entry.deltas.pop(0)
                candidates = self._correlate(entry, block)
                if not candidates and len(entry.deltas) >= 2 and (
                        entry.deltas[-1] == entry.deltas[-2]):
                    # Constant-stride fallback: replay the repeated delta.
                    for i in range(1, self.degree + 1):
                        candidates.append(
                            block + i * entry.deltas[-1] * self.block_size)
        entry.last_address = block
        if not candidates:
            return candidates

        # Suppress candidates already prefetched from this entry recently.
        filtered = [c for c in candidates if c != entry.last_prefetch and c > 0]
        if filtered:
            entry.last_prefetch = filtered[-1]
        return filtered
