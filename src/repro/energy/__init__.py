"""CACTI-like per-access energy model and per-category accounting."""

from .model import EnergyAccount, EnergyParameters, normalized_energy

__all__ = ["EnergyAccount", "EnergyParameters", "normalized_energy"]
