"""Cache-hierarchy energy model.

The paper uses CACTI to obtain per-access energies and accumulates total
cache-hierarchy energy (Section V.B).  CACTI itself is a large circuit-level
tool that is not available offline, so this module embeds a table of per-access
energies (in nanojoules) with the magnitudes and, critically, the *relative
ordering* CACTI produces for the paper's structures at 22 nm-class nodes:

    L1 (32 KB) < metadata cache (2 KB) < L2 (256 KB)
    < LLC tag < LLC tag+data (2-8 MB) << DRAM access

All of the paper's energy results are normalized to the baseline, so only
these relative magnitudes matter for reproducing Figures 5, 10 and 14.

Two consumers use this model:

* the hierarchy charges lookup/fill/DRAM energy per access, and
* the predictors charge their own structure-access energy (LocMap metadata
  cache, TAGE tables, D2D Hub and eTLB overhead) plus directory accesses for
  misprediction recovery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from ..memory.block import Level


@dataclass
class EnergyParameters:
    """Per-access and static energy constants, in nanojoules.

    The SRAM energies follow an approximately sqrt-capacity scaling law which
    :meth:`sram_access_energy` exposes for arbitrary structure sizes (used to
    size the metadata cache sweep in Figure 5 and the TAGE variants).
    """

    l1_access_nj: float = 0.010
    l2_access_nj: float = 0.035
    llc_tag_access_nj: float = 0.020
    llc_data_access_nj: float = 0.110
    dram_access_nj: float = 6.0
    directory_access_nj: float = 0.015
    mshr_access_nj: float = 0.002
    bus_transfer_nj: float = 0.008
    tlb_access_nj: float = 0.004
    # Reference point for sqrt-capacity SRAM scaling: a 2 KB structure.
    sram_reference_bytes: int = 2048
    sram_reference_nj: float = 0.006

    def sram_access_energy(self, capacity_bytes: int) -> float:
        """Per-access energy of a small SRAM of the given capacity.

        Scales with the square root of capacity relative to the 2 KB
        reference, which is the first-order behaviour CACTI reports for small
        tag/data arrays.
        """
        if capacity_bytes <= 0:
            return 0.0
        ratio = capacity_bytes / self.sram_reference_bytes
        return self.sram_reference_nj * math.sqrt(ratio)

    def cache_access_energy(self, level: Level, tag_only: bool = False) -> float:
        """Per-access energy of a hierarchy level lookup."""
        if level is Level.L1:
            return self.l1_access_nj
        if level is Level.L2:
            return self.l2_access_nj
        if level is Level.L3:
            if tag_only:
                return self.llc_tag_access_nj
            return self.llc_tag_access_nj + self.llc_data_access_nj
        return self.dram_access_nj


@dataclass(slots=True)
class EnergyAccount:
    """Accumulates energy by category so figures can show stacked breakdowns.

    Categories follow Figure 10: baseline cache energy ("L2+L3"), predictor
    structure energy, and misprediction-recovery energy.
    """

    params: EnergyParameters = field(default_factory=EnergyParameters)
    by_category: Dict[str, float] = field(default_factory=dict)

    def charge(self, category: str, nanojoules: float) -> None:
        if nanojoules < 0:
            raise ValueError("cannot charge negative energy")
        self.by_category[category] = self.by_category.get(category, 0.0) + nanojoules

    # ------------------------------------------------------------------
    # Convenience charging helpers used by the hierarchy
    # ------------------------------------------------------------------
    def charge_cache_lookup(self, level: Level, tag_only: bool = False) -> float:
        energy = self.params.cache_access_energy(level, tag_only=tag_only)
        category = "hierarchy" if level.is_cache else "dram"
        self.charge(category, energy)
        return energy

    def charge_directory(self) -> float:
        self.charge("hierarchy", self.params.directory_access_nj)
        return self.params.directory_access_nj

    def charge_predictor(self, nanojoules: float) -> float:
        self.charge("predictor", nanojoules)
        return nanojoules

    def charge_recovery(self, nanojoules: float) -> float:
        self.charge("recovery", nanojoules)
        return nanojoules

    def charge_bus(self) -> float:
        self.charge("hierarchy", self.params.bus_transfer_nj)
        return self.params.bus_transfer_nj

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        return sum(self.by_category.values())

    def total_excluding(self, *categories: str) -> float:
        return sum(value for key, value in self.by_category.items()
                   if key not in categories)

    def cache_hierarchy_energy(self) -> float:
        """Energy of the on-chip hierarchy plus predictor plus recovery.

        This is the quantity the paper normalizes in Figure 10 ("cache
        hierarchy energy"); DRAM energy is excluded there.
        """
        return self.total_excluding("dram")

    def breakdown(self) -> Dict[str, float]:
        return dict(self.by_category)

    def reset(self) -> None:
        self.by_category.clear()


def normalized_energy(account: EnergyAccount, baseline: EnergyAccount) -> float:
    """Cache-hierarchy energy of ``account`` relative to ``baseline``."""
    base = baseline.cache_hierarchy_energy()
    if base == 0.0:
        return 1.0
    return account.cache_hierarchy_energy() / base
