"""Persistent simulation service: a daemon serving figure requests.

The results store (PR 4) made concurrent writers safe; this module puts a
long-lived process in front of it.  A :class:`SimulationService` owns one
results store, one trace cache and one worker pool, and answers figure/grid
requests the way a production inference service answers queries: warm
requests are served straight from the store with **zero** simulation, cold
cells are simulated exactly once no matter how many clients ask for them
concurrently, and a killed daemon resumes an interrupted grid from the jobs
it already persisted.

In-flight deduplication
=======================

The headline semantics.  Every engine job is content-addressed by the
SHA-256 of its canonical spec (:func:`repro.sim.store.job_key`), and the
service keeps a *keyed future table* — ``job key -> Future`` — of the
simulations currently running.  When a request's grid is expanded, each job
is claimed under one lock:

* already stored -> served from the store (a store *hit*);
* already in flight -> the request attaches to the owner's future
  (*coalesced*: no second simulation is ever started for a key);
* otherwise -> the request becomes the key's owner, registers a future and
  submits the job to the worker pool (a *simulation*).

Owners persist their results **in job order** (compute may finish out of
order; puts do not), so the daemon's shard files are byte-identical to a
serial ``python -m repro run`` of the same grid — the property the CI
service job checks with ``diff -r``.

Protocol
========

Newline-delimited JSON over a stream socket — a localhost TCP port or a
unix socket, both served by a threading :mod:`socketserver`.  One request
line, one response line, connection closed::

    -> {"op": "submit", "experiment": "golden", "wait": true}
    <- {"ok": true, "id": "req-1-golden", "state": "done",
        "total_jobs": 30, "stored": 0, "simulated": 30, "coalesced": 0,
        "seconds": 1.9, "stats": {...}, "stats_path": "..."}

Operations: ``submit`` (figure name or an explicit job-spec grid),
``status`` (one request, or per-experiment store coverage), ``result``,
``stats`` (server counters), ``health``, ``figures`` and ``shutdown``.
Errors come back as ``{"ok": false, "error": "..."}``.

``python -m repro serve`` runs the daemon; ``--remote ADDR`` on ``run`` /
``status`` / ``figures`` points the existing experiment commands at one.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import sys
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .experiments import EXPERIMENTS, Scale, canonical_json
from .sim.engine import (
    REPRO_JOBS_ENV,
    Job,
    MixJob,
    SimulationJob,
    execute_job,
)
from .sim.store import (
    ResultStore,
    UncacheableJobError,
    job_spec,
    serialize_result,
    spec_key,
    try_job_key,
)

#: Wire-protocol schema tag; servers reject requests from a different one.
PROTOCOL_SCHEMA = "repro-service/1"

#: Longest accepted request line (a figure submit is well under this).
MAX_REQUEST_BYTES = 4 * 1024 * 1024

#: Finished requests retained for ``status``/``result`` polling; older
#: ones are evicted so a long-lived daemon's memory stays bounded.
MAX_FINISHED_REQUESTS = 512


class ServiceError(Exception):
    """A request the service understood but must refuse."""


# ======================================================================
# Addresses
# ======================================================================
def parse_address(address: str) -> Tuple[str, Union[Tuple[str, int], str]]:
    """Parse a service address into ``("tcp", (host, port))`` or
    ``("unix", path)``.

    Accepted forms: ``"7321"`` (localhost TCP port), ``"host:port"``,
    ``"unix:/path/to.sock"`` and any string containing a ``/`` (a unix
    socket path).
    """
    address = address.strip()
    if not address:
        raise ServiceError("empty service address")
    if address.startswith("unix:"):
        return "unix", address[len("unix:"):]
    if "/" in address:
        return "unix", address
    host, sep, port = address.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", address
    try:
        return "tcp", (host or "127.0.0.1", int(port))
    except ValueError:
        raise ServiceError(
            f"invalid service address {address!r} (expected PORT, "
            f"HOST:PORT, or a unix socket path)") from None


def format_address(family: str,
                   location: Union[Tuple[str, int], str]) -> str:
    """The canonical string form clients pass back to :func:`parse_address`."""
    if family == "unix":
        return f"unix:{location}"
    host, port = location
    return f"{host}:{port}"


# ======================================================================
# Wire job specs
# ======================================================================
def job_from_wire(spec: Dict[str, Any]) -> Job:
    """Build an engine job from an explicit wire spec.

    The wire shape mirrors the store's canonical spec kinds: ``single``
    jobs name a registered workload, ``mix`` jobs a Table II mix.  System
    configs do not travel over the wire — remote grids run the paper
    defaults, exactly like the registry experiments they complement.
    """
    if not isinstance(spec, dict):
        raise ServiceError(f"job spec must be an object, got {spec!r}")
    kind = spec.get("kind", "single")
    try:
        if kind == "single":
            return SimulationJob(
                workload=str(spec["workload"]),
                predictor=str(spec["predictor"]),
                num_accesses=int(spec["num_accesses"]),
                warmup_accesses=int(spec.get("warmup_accesses", 0)),
                seed=int(spec.get("seed", 0)))
        if kind == "mix":
            return MixJob(
                mix=str(spec["mix"]),
                predictor=str(spec["predictor"]),
                accesses_per_core=int(spec["accesses_per_core"]),
                seed=int(spec.get("seed", 0)))
    except KeyError as exc:
        raise ServiceError(
            f"job spec missing required field {exc.args[0]!r}") from None
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"malformed job spec: {exc}") from None
    raise ServiceError(f"unknown job kind {kind!r} (expected "
                       f"'single' or 'mix')")


def scale_from_wire(data: Optional[Dict[str, Any]]) -> Scale:
    """Decode the optional ``scale`` request field (defaults preserved)."""
    if data is None:
        return Scale()
    if not isinstance(data, dict):
        raise ServiceError(f"scale must be an object, got {data!r}")
    unknown = set(data) - {"accesses", "warmup", "mix_accesses"}
    if unknown:
        raise ServiceError(f"unknown scale field(s) "
                           f"{', '.join(sorted(unknown))}")
    try:
        return Scale(
            accesses=int(data.get("accesses", Scale.accesses)),
            warmup=int(data.get("warmup", Scale.warmup)),
            mix_accesses=int(data.get("mix_accesses", Scale.mix_accesses)))
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"malformed scale: {exc}") from None


# ======================================================================
# Request bookkeeping
# ======================================================================
class _RequestState:
    """Mutable progress record of one submitted grid."""

    def __init__(self, request_id: str, name: str, total: int,
                 explicit: bool) -> None:
        self.id = request_id
        self.name = name
        self.total = total
        self.explicit = explicit
        self.state = "running"
        self.completed = 0
        self.stored = 0
        self.simulated = 0
        self.coalesced = 0
        self.seconds = 0.0
        self.stats: Optional[Dict[str, Any]] = None
        self.stats_path: Optional[str] = None
        self.results: Optional[List[Dict[str, Any]]] = None
        self.error: Optional[str] = None
        self.done = threading.Event()

    def snapshot(self, include_payload: bool = False) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "id": self.id,
            "experiment": self.name if not self.explicit else None,
            "state": self.state,
            "total_jobs": self.total,
            "completed": self.completed,
            "stored": self.stored,
            "simulated": self.simulated,
            "coalesced": self.coalesced,
            "seconds": self.seconds,
        }
        if self.error is not None:
            data["error"] = self.error
        if include_payload and self.state == "done":
            data["stats"] = self.stats
            data["stats_path"] = self.stats_path
            if self.explicit:
                data["results"] = self.results
        return data


# ======================================================================
# The service core
# ======================================================================
class SimulationService:
    """One store + one worker pool + the keyed in-flight future table.

    This is the whole daemon minus the socket: requests come in through
    :meth:`dispatch` (or the typed methods below it), so the semantics —
    dedup, coalescing, job-order persistence, resume — are testable
    in-process without binding a port.

    Args:
        store: Results-store root directory (or an opened store).
        jobs: Worker-thread count; ``None`` reads ``REPRO_JOBS`` from the
            environment, defaulting to 1.
    """

    def __init__(self, store: Union[str, Path, ResultStore],
                 jobs: Optional[int] = None) -> None:
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        if jobs is None:
            env_value = os.environ.get(REPRO_JOBS_ENV, "").strip()
            jobs = int(env_value) if env_value else 1
        self.num_workers = max(1, jobs)
        self._pool = ThreadPoolExecutor(
            max_workers=self.num_workers,
            thread_name_prefix="repro-service-worker")
        #: One lock for the claim phase and every store operation: a job is
        #: classified (stored / in flight / owned) atomically with respect
        #: to other requests' claims and puts.
        self._lock = threading.Lock()
        #: job key -> Future resolving to the finished result object.
        self._inflight: Dict[str, "Future[Any]"] = {}
        self._requests: Dict[str, _RequestState] = {}
        self._request_threads: List[threading.Thread] = []
        self._next_request = 0
        self.started_at = time.time()
        self.counters = {
            "requests": 0,       # protocol requests dispatched
            "submissions": 0,    # grids submitted
            "jobs": 0,           # grid cells across all submissions
            "simulations": 0,    # jobs this daemon actually simulated
            "store_hits": 0,     # jobs answered straight from the store
            "coalesced": 0,      # jobs attached to an in-flight future
        }
        self._closed = False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, experiment: Optional[str] = None,
               jobs: Optional[Sequence[Dict[str, Any]]] = None,
               scale: Optional[Dict[str, Any]] = None,
               force: bool = False, wait: bool = False) -> Dict[str, Any]:
        """Submit a figure grid (by name) or an explicit job-spec grid.

        With ``wait`` the call returns the finished payload; otherwise it
        returns immediately with the request id to poll via ``status`` /
        ``result``.
        """
        if self._closed:
            raise ServiceError("service is shutting down")
        if (experiment is None) == (jobs is None):
            raise ServiceError(
                "submit needs exactly one of 'experiment' or 'jobs'")
        resolved_scale = scale_from_wire(scale)
        if experiment is not None:
            if experiment not in EXPERIMENTS:
                raise ServiceError(
                    f"unknown experiment {experiment!r}; known: "
                    f"{', '.join(EXPERIMENTS)}")
            job_list = EXPERIMENTS[experiment].jobs(resolved_scale)
            name, explicit = experiment, False
        else:
            if not jobs:
                raise ServiceError("empty job list")
            job_list = [job_from_wire(spec) for spec in jobs]
            name, explicit = "adhoc", True
        with self._lock:
            self._next_request += 1
            request_id = f"req-{self._next_request}-{name}"
            state = _RequestState(request_id, name, len(job_list), explicit)
            self._requests[request_id] = state
            self._evict_finished_requests()
            self.counters["submissions"] += 1
            self.counters["jobs"] += len(job_list)
        if wait:
            self._run_request(state, job_list, resolved_scale, force)
            return state.snapshot(include_payload=True)
        thread = threading.Thread(
            target=self._run_request,
            args=(state, job_list, resolved_scale, force),
            name=f"repro-service-{request_id}", daemon=True)
        # Prune threads that already finished: a long-lived daemon must
        # not pin one Thread object per request it ever served.
        self._request_threads = [old for old in self._request_threads
                                 if old.is_alive()]
        self._request_threads.append(thread)
        thread.start()
        return state.snapshot()

    def _evict_finished_requests(self) -> None:
        """Drop the oldest finished requests beyond the retention cap.

        Caller holds the lock.  Running requests are never evicted; a
        ``status``/``result`` poll for an evicted id gets the same
        "unknown request id" as a mistyped one.
        """
        finished = [request_id
                    for request_id, state in self._requests.items()
                    if state.done.is_set()]
        for request_id in finished[:max(0, len(finished)
                                        - MAX_FINISHED_REQUESTS)]:
            del self._requests[request_id]

    def _run_request(self, state: _RequestState, job_list: List[Job],
                     scale: Scale, force: bool) -> None:
        start = time.perf_counter()
        try:
            results = self._run_jobs(state, job_list, force)
            state.seconds = time.perf_counter() - start
            if state.explicit:
                state.results = [serialize_result(result)
                                 for result in results]
            else:
                experiment = EXPERIMENTS[state.name]
                state.stats = experiment.summarize(results, scale)
                stats_path = self.store.root / "stats" / f"{state.name}.json"
                stats_path.parent.mkdir(parents=True, exist_ok=True)
                # Temp + rename: concurrent same-experiment requests (or a
                # kill mid-write) must never leave a torn stats file.
                tmp = stats_path.with_name(
                    f".{stats_path.name}.{threading.get_ident()}.tmp")
                tmp.write_text(canonical_json(state.stats),
                               encoding="utf-8")
                os.replace(tmp, stats_path)
                state.stats_path = str(stats_path)
            with self._lock:
                self.store.flush_index()
            state.state = "done"
        except Exception as exc:  # noqa: BLE001 - reported to the client
            state.error = f"{type(exc).__name__}: {exc}"
            state.state = "failed"
        finally:
            state.done.set()

    def _run_jobs(self, state: _RequestState, job_list: List[Job],
                  force: bool) -> List[Any]:
        """Claim, compute and collect one grid, persisting in job order."""
        # Claim phase: classify every job atomically against other
        # requests.  plan[i] is ("store", key) | ("watch", future) |
        # ("own", key, exec_future) | ("direct", exec_future).
        specs: List[Optional[Dict[str, Any]]] = []
        keys: List[Optional[str]] = []
        for job in job_list:
            try:
                spec = job_spec(job)
            except UncacheableJobError:
                spec = None
            specs.append(spec)
            keys.append(None if spec is None else spec_key(spec))
        plan: List[Tuple[Any, ...]] = []
        owned: List[int] = []
        results: List[Any] = []
        # The claim loop sits inside the same try as the collect loop: a
        # failure after a Future is registered (pool shut down mid-claim,
        # MemoryError, ...) must resolve the registered futures, or every
        # request that coalesced onto them would wait forever.
        try:
            with self._lock:
                for index, key in enumerate(keys):
                    if key is None:
                        plan.append(("direct",
                                     self._pool.submit(execute_job,
                                                       job_list[index])))
                        continue
                    if not force and key in self.store:
                        plan.append(("store", key))
                        self.counters["store_hits"] += 1
                        state.stored += 1
                        continue
                    future = self._inflight.get(key)
                    if future is not None:
                        plan.append(("watch", future))
                        self.counters["coalesced"] += 1
                        state.coalesced += 1
                        continue
                    future = Future()
                    self._inflight[key] = future
                    owned.append(index)
                    plan.append(("own", key,
                                 self._pool.submit(execute_job,
                                                   job_list[index])))
                    self.counters["simulations"] += 1
                    state.simulated += 1
            # Collect phase, strictly in job order: owners persist their
            # results as they arrive, so the shard files the daemon writes
            # are byte-identical to a serial run of the same job list —
            # and an interrupted grid keeps every job persisted before
            # the kill.
            for index, step in enumerate(plan):
                if step[0] == "store":
                    with self._lock:
                        result = self.store.get(step[1])
                    if result is None:  # pragma: no cover - fsck'd away
                        raise ServiceError(
                            f"store entry for {step[1]} vanished")
                elif step[0] == "watch":
                    result = step[1].result()
                elif step[0] == "direct":
                    result = step[1].result()
                else:
                    _, key, exec_future = step
                    result = exec_future.result()
                    with self._lock:
                        self.store.put(key, specs[index], result)
                        inflight = self._inflight.pop(key, None)
                    if inflight is not None:
                        inflight.set_result(result)
                results.append(result)
                state.completed += 1
            return results
        except BaseException as exc:
            # Resolve every still-registered owned future so attached
            # requests fail loudly instead of waiting forever.
            with self._lock:
                for index in owned:
                    future = self._inflight.pop(keys[index], None)
                    if future is not None and not future.done():
                        future.set_exception(exc)
            raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self, request_id: Optional[str] = None,
               scale: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """One request's progress, or per-experiment store coverage."""
        if request_id is not None:
            return self._request_state(request_id).snapshot()
        resolved = scale_from_wire(scale)
        # Key hashing is pure CPU over static job lists — do it outside
        # the lock so a polling client never stalls in-flight claims and
        # puts; only the membership checks need the store's lock.
        grids = {name: [try_job_key(job)
                        for job in experiment.jobs(resolved)]
                 for name, experiment in EXPERIMENTS.items()}
        coverage: Dict[str, Dict[str, int]] = {}
        with self._lock:
            entries = len(self.store)
            for name, grid_keys in grids.items():
                stored = sum(1 for key in grid_keys if key in self.store)
                coverage[name] = {"stored": stored, "total": len(grid_keys)}
        return {"store": str(self.store.root), "entries": entries,
                "experiments": coverage}

    def result(self, request_id: str, wait: bool = False,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """A request's final payload (stats/results) once it is done."""
        state = self._request_state(request_id)
        if wait:
            state.done.wait(timeout)
        return state.snapshot(include_payload=True)

    def _request_state(self, request_id: str) -> _RequestState:
        state = self._requests.get(request_id)
        if state is None:
            raise ServiceError(f"unknown request id {request_id!r}")
        return state

    def stats(self) -> Dict[str, Any]:
        """Server counters: the store/dedup traffic since startup."""
        from .sim.engine import TRACE_CACHE
        with self._lock:
            counters = dict(self.counters)
            inflight = len(self._inflight)
            store = {"entries": len(self.store), "hits": self.store.hits,
                     "misses": self.store.misses, "puts": self.store.puts}
        return {
            "uptime_seconds": time.time() - self.started_at,
            "workers": self.num_workers,
            "inflight": inflight,
            "counters": counters,
            "store": store,
            "trace_cache": {"hits": TRACE_CACHE.hits,
                            "misses": TRACE_CACHE.misses,
                            "disk_hits": TRACE_CACHE.disk_hits,
                            "disk_spills": TRACE_CACHE.disk_spills},
        }

    def health(self) -> Dict[str, Any]:
        return {"status": "ok", "pid": os.getpid(),
                "schema": PROTOCOL_SCHEMA,
                "store": str(self.store.root),
                "workers": self.num_workers,
                "uptime_seconds": time.time() - self.started_at}

    def figures(self) -> Dict[str, Any]:
        return {"experiments": {name: experiment.title
                                for name, experiment in EXPERIMENTS.items()}}

    # ------------------------------------------------------------------
    # Dispatch and lifecycle
    # ------------------------------------------------------------------
    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one protocol request, returning the response object."""
        with self._lock:
            self.counters["requests"] += 1
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        try:
            if op == "submit":
                payload = self.submit(
                    experiment=request.get("experiment"),
                    jobs=request.get("jobs"),
                    scale=request.get("scale"),
                    force=bool(request.get("force", False)),
                    wait=bool(request.get("wait", False)))
            elif op == "status":
                payload = self.status(request.get("id"),
                                      scale=request.get("scale"))
            elif op == "result":
                request_id = request.get("id")
                if not isinstance(request_id, str):
                    raise ServiceError("result needs a request 'id'")
                payload = self.result(request_id,
                                      wait=bool(request.get("wait", False)),
                                      timeout=request.get("timeout"))
            elif op == "stats":
                payload = self.stats()
            elif op == "health":
                payload = self.health()
            elif op == "figures":
                payload = self.figures()
            elif op == "shutdown":
                payload = {"stopping": True}
            else:
                raise ServiceError(f"unknown op {op!r}")
        except ServiceError as exc:
            return {"ok": False, "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - daemon must not die
            return {"ok": False,
                    "error": f"{type(exc).__name__}: {exc}"}
        response = {"ok": True}
        response.update(payload)
        return response

    def close(self, wait: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting work and drain the pool.

        Jobs already executing run to completion (their puts land, so a
        restart resumes past them); queued jobs are cancelled.  Request
        threads are given ``timeout`` seconds to finish their bookkeeping.
        """
        self._closed = True
        self._pool.shutdown(wait=wait, cancel_futures=True)
        if wait:
            deadline = time.time() + timeout
            for thread in self._request_threads:
                thread.join(max(0.0, deadline - time.time()))


# ======================================================================
# The socket layer
# ======================================================================
class _ServiceHandler(socketserver.StreamRequestHandler):
    """One JSON request line in, one JSON response line out."""

    def handle(self) -> None:
        raw = self.rfile.readline(MAX_REQUEST_BYTES + 1)
        if not raw:
            return
        if len(raw) > MAX_REQUEST_BYTES:
            self._respond({"ok": False, "error": "request too large"})
            return
        try:
            request = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self._respond({"ok": False,
                           "error": "request is not valid JSON"})
            return
        service: SimulationService = self.server.service  # type: ignore
        response = service.dispatch(request)
        self._respond(response)
        if isinstance(request, dict) and request.get("op") == "shutdown":
            self.server.request_shutdown()  # type: ignore[attr-defined]

    def _respond(self, response: Dict[str, Any]) -> None:
        payload = json.dumps(response, sort_keys=True,
                             separators=(",", ":")) + "\n"
        try:
            self.wfile.write(payload.encode("utf-8"))
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to report to


class _ServerMixin:
    """Shutdown plumbing shared by the TCP and unix variants."""

    service: SimulationService
    daemon_threads = True

    def request_shutdown(self) -> None:
        # shutdown() blocks until serve_forever exits, so it must be
        # called off the handler thread (which serve_forever may join).
        threading.Thread(target=self.shutdown,  # type: ignore[attr-defined]
                         name="repro-service-shutdown",
                         daemon=True).start()


class ReproTCPServer(_ServerMixin, socketserver.ThreadingTCPServer):
    allow_reuse_address = True


class ReproUnixServer(_ServerMixin,
                      socketserver.ThreadingUnixStreamServer):
    pass


def create_server(service: SimulationService,
                  port: Optional[int] = None,
                  socket_path: Union[str, Path, None] = None
                  ) -> Tuple[socketserver.BaseServer, str]:
    """Bind a server for ``service``; returns ``(server, address)``.

    Exactly one of ``port`` (localhost TCP; 0 picks a free port) and
    ``socket_path`` (unix socket, replaced if a stale one exists) must be
    given.  The returned address string round-trips through
    :func:`parse_address`.
    """
    if (port is None) == (socket_path is None):
        raise ServiceError("specify exactly one of port / socket_path")
    if socket_path is not None:
        socket_path = str(socket_path)
        stale = Path(socket_path)
        if stale.is_socket():
            stale.unlink()
        server: socketserver.BaseServer = ReproUnixServer(
            socket_path, _ServiceHandler)
        address = format_address("unix", socket_path)
    else:
        server = ReproTCPServer(("127.0.0.1", port), _ServiceHandler)
        address = format_address("tcp", server.server_address[:2])
    server.service = service  # type: ignore[attr-defined]
    return server, address


# ======================================================================
# The client
# ======================================================================
class ServiceClient:
    """Talk to a running daemon: one JSON line per request.

    Every method raises :class:`ServiceError` when the daemon answers
    ``ok: false`` and :class:`ConnectionError`/:class:`OSError` when it is
    unreachable.
    """

    def __init__(self, address: str, timeout: Optional[float] = None
                 ) -> None:
        self.family, self.location = parse_address(address)
        self.address = format_address(self.family, self.location)
        self.timeout = timeout

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        payload = {"op": op, **{key: value for key, value in params.items()
                                if value is not None}}
        line = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._connect() as sock:
            sock.sendall(line.encode("utf-8"))
            with sock.makefile("rb") as stream:
                raw = stream.readline()
        if not raw:
            raise ConnectionError(
                f"service at {self.address} closed the connection "
                f"without answering")
        try:
            response = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            # The peer is not a repro daemon (an HTTP server, say).
            raise ServiceError(
                f"malformed (non-JSON) response from {self.address} — "
                f"is a repro daemon really listening there?") from None
        if not isinstance(response, dict) or "ok" not in response:
            raise ServiceError(f"malformed response from {self.address}")
        if not response["ok"]:
            raise ServiceError(response.get("error", "unknown error"))
        return response

    def _connect(self) -> socket.socket:
        if self.family == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.settimeout(self.timeout)
                sock.connect(self.location)
            except BaseException:
                sock.close()
                raise
            return sock
        return socket.create_connection(self.location,
                                        timeout=self.timeout)

    # Typed convenience wrappers -----------------------------------------
    def submit(self, experiment: Optional[str] = None,
               jobs: Optional[Sequence[Dict[str, Any]]] = None,
               scale: Optional[Dict[str, Any]] = None,
               force: bool = False, wait: bool = False) -> Dict[str, Any]:
        return self.request("submit", experiment=experiment, jobs=jobs,
                            scale=scale, force=force or None,
                            wait=wait or None)

    def status(self, request_id: Optional[str] = None,
               scale: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        return self.request("status", id=request_id, scale=scale)

    def result(self, request_id: str, wait: bool = False,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        return self.request("result", id=request_id, wait=wait or None,
                            timeout=timeout)

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def health(self) -> Dict[str, Any]:
        return self.request("health")

    def figures(self) -> Dict[str, Any]:
        return self.request("figures")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    def wait_healthy(self, timeout: float = 10.0,
                     interval: float = 0.05) -> Dict[str, Any]:
        """Poll ``health`` until the daemon answers (startup helper)."""
        deadline = time.time() + timeout
        while True:
            try:
                return self.health()
            except (OSError, ServiceError):
                if time.time() >= deadline:
                    raise
                time.sleep(interval)


def serve_forever(service: SimulationService,
                  server: socketserver.BaseServer,
                  poll_interval: float = 0.1) -> None:
    """Run the accept loop until :meth:`request_shutdown` (or a signal
    handler calling ``server.shutdown()``) stops it, then drain."""
    try:
        server.serve_forever(poll_interval=poll_interval)
    finally:
        server.server_close()
        service.close()
        if isinstance(server, ReproUnixServer):
            try:
                os.unlink(server.server_address)  # type: ignore[arg-type]
            except OSError:
                pass


def main_serve(store: Union[str, Path], port: Optional[int] = None,
               socket_path: Union[str, Path, None] = None,
               jobs: Optional[int] = None,
               ready_file: Union[str, Path, None] = None) -> int:
    """Entry point behind ``python -m repro serve``.

    Binds, announces the address on stdout (and in ``ready_file`` when
    given — the way scripts using an ephemeral ``--port 0`` learn where
    the daemon landed), installs SIGTERM/SIGINT handlers for graceful
    shutdown, and serves until stopped.
    """
    import signal

    service = SimulationService(store, jobs=jobs)
    server, address = create_server(service, port=port,
                                    socket_path=socket_path)
    print(f"repro.service: listening on {address} "
          f"(store {service.store.root}, {service.num_workers} worker"
          f"{'s' if service.num_workers != 1 else ''})", flush=True)
    if ready_file is not None:
        ready = Path(ready_file)
        ready.parent.mkdir(parents=True, exist_ok=True)
        tmp = ready.with_name(ready.name + ".tmp")
        tmp.write_text(address + "\n", encoding="utf-8")
        os.replace(tmp, ready)

    def _stop(signum: int, frame: Any) -> None:
        del frame
        print(f"repro.service: signal {signum}, shutting down", flush=True,
              file=sys.stderr)
        server.request_shutdown()  # type: ignore[attr-defined]

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _stop)
    try:
        serve_forever(service, server)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0
