"""Persistent simulation service: a daemon serving figure requests.

The results store (PR 4) made concurrent writers safe; this module puts a
long-lived process in front of it.  A :class:`SimulationService` owns one
results store, one trace cache and one worker pool, and answers figure/grid
requests the way a production inference service answers queries: warm
requests are served straight from the store with **zero** simulation, cold
cells are simulated exactly once no matter how many clients ask for them
concurrently, and a killed daemon resumes an interrupted grid from the jobs
it already persisted.

In-flight deduplication
=======================

The headline semantics.  Every engine job is content-addressed by the
SHA-256 of its canonical spec (:func:`repro.sim.store.job_key`), and the
service keeps a *keyed future table* — ``job key -> Future`` — of the
simulations currently running.  When a request's grid is expanded, each job
is claimed under one lock:

* already stored -> served from the store (a store *hit*);
* already in flight -> the request attaches to the owner's future
  (*coalesced*: no second simulation is ever started for a key);
* otherwise -> the request becomes the key's owner, registers a future and
  submits the job to the worker pool (a *simulation*).

Owners persist their results **in job order** (compute may finish out of
order; puts do not), so the daemon's shard files are byte-identical to a
serial ``python -m repro run`` of the same grid — the property the CI
service job checks with ``diff -r``.

Protocol
========

Newline-delimited JSON over a stream socket — a localhost TCP port or a
unix socket, both served by a threading :mod:`socketserver`.  One request
line, one response line, connection closed::

    -> {"op": "submit", "experiment": "golden", "wait": true}
    <- {"ok": true, "id": "req-1-golden", "state": "done",
        "total_jobs": 30, "stored": 0, "simulated": 30, "coalesced": 0,
        "seconds": 1.9, "stats": {...}, "stats_path": "..."}

Operations: ``submit`` (figure name or an explicit job-spec grid),
``status`` (one request, or per-experiment store coverage), ``result``,
``stats`` (server counters), ``health``, ``figures`` and ``shutdown``.
Errors come back as ``{"ok": false, "error": "...", "code": "...",
"retryable": ...}`` — ``code`` is the machine-readable taxonomy clients
branch on, ``retryable`` whether resubmitting the same request is safe
and useful (it always is semantically: jobs are content-addressed and
coalesced, so a duplicate submit costs nothing).

Failure model
=============

The daemon assumes every layer under it can fail and bounds the damage:

* **per-job isolation** — a job that crashes, exceeds its deadline
  (``REPRO_JOB_TIMEOUT``) or keeps failing is retried with a bounded
  budget (``REPRO_JOB_RETRIES``) and then quarantined by its content
  key; only that job fails, its grid completes the rest and reports a
  structured ``failed_jobs`` list, and later submits of a quarantined
  key fail fast (``force`` clears the quarantine);
* **admission control** — beyond ``REPRO_MAX_QUEUE`` active jobs new
  grids are shed with a retryable ``overloaded`` error instead of
  queueing unboundedly;
* **degraded read-only mode** — when the store media goes unwritable
  (every put retry exhausted), warm grids keep being served from the
  store while anything needing a write is refused with code
  ``degraded`` and ``health`` reports it; writes resume after the
  daemon is restarted over healthy media.

Fleet serving
=============

Several daemons may share one store directory and serve as a *fleet*
(``python -m repro serve --fleet``, or the ``python -m repro fleet``
launcher).  In fleet mode the in-process dedup extends across processes
via per-job-key claim records in the store (``<store>/claims/``,
created with ``O_CREAT | O_EXCL`` — see
:meth:`repro.sim.store.ResultStore.claim`): the daemon that wins a
cold key's claim simulates it; a loser polls the shared store
(:meth:`~repro.sim.store.ResultStore.refresh`) and serves the owner's
result the moment its locked append lands.  A claim whose owner died
(same-host pid probe, or a TTL for foreign hosts) is broken and taken
over, so a SIGKILLed member never wedges its losers.  Claims are a
work-dedup optimisation, never a correctness gate — the locked shard
appends stay safe without them, so a claim layer failure at worst
recomputes a deterministic job.

:class:`FleetClient` is the client side: it takes a comma-separated
address list, routes each submit by job-key hash so identical grids
from many clients land on the same member (maximising in-process
coalescing), and fails over to the next member on ``connection`` /
``timeout`` / ``overloaded`` errors — resubmission after a member dies
mid-grid is free, because the surviving members serve every already-
persisted cell from the store and take over the dead member's claims.

``python -m repro serve`` runs the daemon; ``--remote ADDR`` on ``run`` /
``status`` / ``figures`` points the existing experiment commands at one
(a comma-separated ``ADDR`` list makes them fleet-aware).
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import socket
import socketserver
import sys
import threading
import time
from concurrent.futures import (
    FIRST_EXCEPTION,
    Future,
    InvalidStateError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait as wait_futures,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .experiments import EXPERIMENTS, Scale, canonical_json
from .faults import fault_point
from .sim.engine import (
    Job,
    MixJob,
    SimulationJob,
    execute_job,
    execute_shard,
    merge_shard_results,
    plan_shard_tasks,
)
from .sim.options import EngineOptions
from .sim.store import (
    ResultStore,
    UncacheableJobError,
    job_spec,
    serialize_result,
    spec_key,
    try_job_key,
)

#: Wire-protocol schema tag; servers reject requests from a different one.
PROTOCOL_SCHEMA = "repro-service/1"

#: Longest accepted request line (a figure submit is well under this).
MAX_REQUEST_BYTES = 4 * 1024 * 1024

#: Finished requests retained for ``status``/``result`` polling; older
#: ones are evicted so a long-lived daemon's memory stays bounded.
MAX_FINISHED_REQUESTS = 512

#: Per-job retry budget (attempts, including the first) and env override.
DEFAULT_JOB_RETRIES = 3
REPRO_JOB_RETRIES_ENV = "REPRO_JOB_RETRIES"

#: Per-attempt job deadline in seconds (0/unset disables) and override.
REPRO_JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"

#: Admission-control bound on active jobs (0/unset disables) and override.
REPRO_MAX_QUEUE_ENV = "REPRO_MAX_QUEUE"

#: Fleet mode toggle ("1"/"true" enables) and env override.
REPRO_FLEET_ENV = "REPRO_FLEET"

#: Longest the server blocks one handler thread on ``result wait=true``
#: before answering with the current snapshot (clients poll in chunks).
MAX_RESULT_WAIT = 60.0

#: Machine-readable error codes (the values of ``ServiceError.code``).
ERROR_CODES = (
    "bad_request",        # malformed / unanswerable request
    "unknown_experiment", # experiment name not in the registry
    "unknown_request",    # request id unknown (or evicted)
    "overloaded",         # admission control shed the submit; retry later
    "degraded",           # store media unwritable; only warm reads served
    "timeout",            # client-side deadline expired
    "connection",         # client could not reach / keep the daemon
    "job_failed",         # a grid job exhausted its retry budget
    "quarantined",        # job key poisoned by earlier repeated failure
    "shutting_down",      # daemon is draining; resubmit elsewhere/later
    "internal",           # unexpected server-side failure
)


class ServiceError(Exception):
    """A request the service understood but must refuse.

    Args:
        message: Human-readable explanation.
        code: Machine-readable taxonomy entry (one of :data:`ERROR_CODES`);
            travels on the wire so clients can branch without parsing
            prose.
        retryable: Whether resubmitting the same request is safe *and*
            plausibly useful (submits are always semantically safe — jobs
            are content-addressed and coalesced — so this flags whether a
            retry can succeed, e.g. after load-shedding or a dropped
            connection, versus a deterministic refusal).
    """

    def __init__(self, message: str, code: str = "bad_request",
                 retryable: bool = False) -> None:
        super().__init__(message)
        self.code = code
        self.retryable = retryable


class ServiceConnectionError(ServiceError, ConnectionError):
    """The daemon stayed unreachable (or silent) past the retry budget.

    Also a :class:`ConnectionError`, so pre-taxonomy callers catching
    ``OSError`` for an unreachable daemon keep working unchanged.
    """


# ======================================================================
# Addresses
# ======================================================================
def parse_address(address: str) -> Tuple[str, Union[Tuple[str, int], str]]:
    """Parse a service address into ``("tcp", (host, port))`` or
    ``("unix", path)``.

    Accepted forms: ``"7321"`` (localhost TCP port), ``"host:port"``,
    ``"unix:/path/to.sock"`` and any string containing a ``/`` (a unix
    socket path).
    """
    address = address.strip()
    if not address:
        raise ServiceError("empty service address")
    if address.startswith("unix:"):
        return "unix", address[len("unix:"):]
    if "/" in address:
        return "unix", address
    host, sep, port = address.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", address
    try:
        return "tcp", (host or "127.0.0.1", int(port))
    except ValueError:
        raise ServiceError(
            f"invalid service address {address!r} (expected PORT, "
            f"HOST:PORT, or a unix socket path)") from None


def format_address(family: str,
                   location: Union[Tuple[str, int], str]) -> str:
    """The canonical string form clients pass back to :func:`parse_address`."""
    if family == "unix":
        return f"unix:{location}"
    host, port = location
    return f"{host}:{port}"


# ======================================================================
# Wire job specs
# ======================================================================
def job_from_wire(spec: Dict[str, Any]) -> Job:
    """Build an engine job from an explicit wire spec.

    The wire shape mirrors the store's canonical spec kinds: ``single``
    jobs name a registered workload, ``mix`` jobs a Table II mix.  System
    configs do not travel over the wire — remote grids run the paper
    defaults, exactly like the registry experiments they complement.
    """
    if not isinstance(spec, dict):
        raise ServiceError(f"job spec must be an object, got {spec!r}")
    kind = spec.get("kind", "single")
    try:
        if kind == "single":
            return SimulationJob(
                workload=str(spec["workload"]),
                predictor=str(spec["predictor"]),
                num_accesses=int(spec["num_accesses"]),
                warmup_accesses=int(spec.get("warmup_accesses", 0)),
                seed=int(spec.get("seed", 0)))
        if kind == "mix":
            return MixJob(
                mix=str(spec["mix"]),
                predictor=str(spec["predictor"]),
                accesses_per_core=int(spec["accesses_per_core"]),
                seed=int(spec.get("seed", 0)))
    except KeyError as exc:
        raise ServiceError(
            f"job spec missing required field {exc.args[0]!r}") from None
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"malformed job spec: {exc}") from None
    raise ServiceError(f"unknown job kind {kind!r} (expected "
                       f"'single' or 'mix')")


def scale_from_wire(data: Optional[Dict[str, Any]]) -> Scale:
    """Decode the optional ``scale`` request field (defaults preserved)."""
    if data is None:
        return Scale()
    if not isinstance(data, dict):
        raise ServiceError(f"scale must be an object, got {data!r}")
    unknown = set(data) - {"accesses", "warmup", "mix_accesses"}
    if unknown:
        raise ServiceError(f"unknown scale field(s) "
                           f"{', '.join(sorted(unknown))}")
    try:
        return Scale(
            accesses=int(data.get("accesses", Scale.accesses)),
            warmup=int(data.get("warmup", Scale.warmup)),
            mix_accesses=int(data.get("mix_accesses", Scale.mix_accesses)))
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"malformed scale: {exc}") from None


# ======================================================================
# Request bookkeeping
# ======================================================================
class _RequestState:
    """Mutable progress record of one submitted grid."""

    def __init__(self, request_id: str, name: str, total: int,
                 explicit: bool) -> None:
        self.id = request_id
        self.name = name
        self.total = total
        self.explicit = explicit
        self.state = "running"
        self.completed = 0
        self.stored = 0
        self.simulated = 0
        self.coalesced = 0
        self.seconds = 0.0
        self.stats: Optional[Dict[str, Any]] = None
        self.stats_path: Optional[str] = None
        self.results: Optional[List[Dict[str, Any]]] = None
        self.error: Optional[str] = None
        #: Structured per-job failures: ``[{"index", "key", "code",
        #: "error"}, ...]`` — one entry per grid cell that exhausted its
        #: retry budget (the rest of the grid still completed).
        self.failed_jobs: List[Dict[str, Any]] = []
        #: Monotonic completion stamp (set just before ``done``); the
        #: eviction policy drops the *longest-finished* requests first.
        self.finished_at: Optional[float] = None
        self.done = threading.Event()

    def snapshot(self, include_payload: bool = False) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "id": self.id,
            "experiment": self.name if not self.explicit else None,
            "state": self.state,
            "total_jobs": self.total,
            "completed": self.completed,
            "stored": self.stored,
            "simulated": self.simulated,
            "coalesced": self.coalesced,
            "seconds": self.seconds,
        }
        if self.error is not None:
            data["error"] = self.error
        if self.failed_jobs:
            data["failed_jobs"] = list(self.failed_jobs)
        if include_payload and self.state == "done":
            data["stats"] = self.stats
            data["stats_path"] = self.stats_path
            if self.explicit:
                data["results"] = self.results
        return data


# ======================================================================
# The service core
# ======================================================================
class SimulationService:
    """One store + one worker pool + the keyed in-flight future table.

    This is the whole daemon minus the socket: requests come in through
    :meth:`dispatch` (or the typed methods below it), so the semantics —
    dedup, coalescing, job-order persistence, resume — are testable
    in-process without binding a port.

    Args:
        store: Results-store root directory (or an opened store).
        jobs: Worker-thread count; ``None`` reads ``REPRO_JOBS`` from the
            environment, defaulting to 1.
        job_retries: Attempts per job (including the first) before it is
            quarantined; ``None`` reads ``REPRO_JOB_RETRIES``, default 3.
        job_timeout: Per-attempt job deadline in seconds; ``None`` reads
            ``REPRO_JOB_TIMEOUT``, 0/unset disables.  A timed-out attempt
            is abandoned (its thread may finish later — puts are
            idempotent by key, so a late result is harmless) and retried.
        max_queue: Admission-control bound on active jobs; ``None`` reads
            ``REPRO_MAX_QUEUE``, 0/unset disables.  Submits beyond the
            bound are shed with a retryable ``overloaded`` error.
        kernel: Trace-execution kernel for the jobs this daemon runs
            (see :mod:`repro.sim.kernels`); ``None`` reads
            ``REPRO_KERNEL``, defaulting to ``"batch"``.  Never affects
            results — kernels are bit-identical by construction — and is
            surfaced in the ``stats`` payload.
        shards: Within-job trace shard count; ``None`` reads
            ``REPRO_SHARDS``, defaulting to 1 (0 = one shard per host
            core).  Only takes effect in ``approx`` sharding mode — the
            daemon's store holds exact results only, so exact mode keeps
            the unsharded per-job path.
        sharding: ``"exact"`` (default) or ``"approx"``; ``None`` reads
            ``REPRO_SHARDING``.  Approx mode fans each owned job's shards
            over the worker pool and merges the per-shard statistics —
            deterministic but *not* bit-identical, so approx results are
            returned to the caller and **never persisted** to the store.
        pool: Worker-pool kind, ``"process"`` (default: saturates a
            many-core host; jobs must pickle) or ``"thread"`` (in-process:
            what tests that monkeypatch ``execute_job`` or install an
            in-process fault plane rely on); ``None`` reads
            ``REPRO_POOL``.  If process workers cannot spawn on this host
            the daemon falls back to threads and says so in ``stats``.
        fleet: Coordinate with other daemons sharing this store through
            per-job-key claim records, so a cold key is simulated exactly
            once fleet-wide; ``None`` reads ``REPRO_FLEET`` ("1"/"true"
            enables), defaulting to off.  A single daemon with ``fleet``
            on behaves identically to one with it off (claims are always
            won immediately), so the flag is safe to leave enabled.
    """

    #: Base per-job retry backoff in seconds (doubled per attempt).
    RETRY_BACKOFF = 0.05
    #: Bounded store-append retry inside the daemon (attempts / base s).
    PUT_ATTEMPTS = 3
    PUT_BACKOFF = 0.05
    #: Claim-loser store poll interval bounds in seconds (doubled per
    #: poll from base to max — cheap: the fast path is one stat()).
    CLAIM_POLL_BASE = 0.02
    CLAIM_POLL_MAX = 0.5

    def __init__(self, store: Union[str, Path, ResultStore],
                 jobs: Optional[int] = None,
                 job_retries: Optional[int] = None,
                 job_timeout: Optional[float] = None,
                 max_queue: Optional[int] = None,
                 kernel: Optional[str] = None,
                 shards: Optional[int] = None,
                 sharding: Optional[str] = None,
                 pool: Optional[str] = None,
                 hierarchy: Optional[str] = None,
                 fleet: Optional[bool] = None) -> None:
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        # Worker count, kernel and the shard/pool knobs all resolve
        # through EngineOptions — the one place REPRO_JOBS / REPRO_KERNEL /
        # REPRO_SHARDS / REPRO_SHARDING / REPRO_POOL are parsed.
        options = EngineOptions.from_env(kernel=kernel, jobs=jobs,
                                         shards=shards, sharding=sharding,
                                         pool=pool, hierarchy=hierarchy)
        self.num_workers = options.jobs
        self.kernel = options.kernel
        self.shards = options.shards
        self.sharding = options.sharding
        self.pool_kind = options.pool
        # Load the hierarchy spec once at startup: a bad file must refuse
        # the daemon, not poison every submitted experiment later.
        self.hierarchy_spec = None
        self.hierarchy_name: Optional[str] = None
        if options.hierarchy:
            from .memory.spec import load_hierarchy
            self.hierarchy_spec = load_hierarchy(options.hierarchy)
            self.hierarchy_name = Path(options.hierarchy).stem
        # Forward the kernel to execute_job only when explicitly chosen:
        # workers are threads of this process, so execute_job's own
        # REPRO_KERNEL fallback resolves identically, and tests that
        # substitute execute_job keep working with its old signature.
        self._kernel_arg = kernel
        if job_retries is None:
            env_value = os.environ.get(REPRO_JOB_RETRIES_ENV, "").strip()
            job_retries = int(env_value) if env_value \
                else DEFAULT_JOB_RETRIES
        self.job_retries = max(1, job_retries)
        if job_timeout is None:
            env_value = os.environ.get(REPRO_JOB_TIMEOUT_ENV, "").strip()
            job_timeout = float(env_value) if env_value else 0.0
        self.job_timeout: Optional[float] = job_timeout or None
        if max_queue is None:
            env_value = os.environ.get(REPRO_MAX_QUEUE_ENV, "").strip()
            max_queue = int(env_value) if env_value else 0
        self.max_queue = max(0, max_queue)
        if fleet is None:
            env_value = os.environ.get(REPRO_FLEET_ENV, "").strip()
            fleet = env_value.lower() in ("1", "true", "yes", "on")
        self.fleet = bool(fleet)
        #: This daemon's claim signature (diagnostics in claim records).
        self._claim_owner = f"repro-serve-{os.getpid()}"
        #: Why a requested process pool fell back to threads (or None).
        self._pool_fallback_reason: Optional[str] = None
        #: Guards pool replacement after a BrokenProcessPool failover.
        self._pool_lock = threading.Lock()
        self._closed = False
        self._pool = self._build_pool()
        #: One lock for the claim phase and every store operation: a job is
        #: classified (stored / in flight / owned) atomically with respect
        #: to other requests' claims and puts.
        self._lock = threading.Lock()
        #: job key -> Future resolving to the finished result object.
        self._inflight: Dict[str, "Future[Any]"] = {}
        self._requests: Dict[str, _RequestState] = {}
        self._request_threads: List[threading.Thread] = []
        self._next_request = 0
        self.started_at = time.time()
        self.counters = {
            "requests": 0,       # protocol requests dispatched
            "submissions": 0,    # grids submitted
            "jobs": 0,           # grid cells across all submissions
            "simulations": 0,    # jobs this daemon actually simulated
            "store_hits": 0,     # jobs answered straight from the store
            "coalesced": 0,      # jobs attached to an in-flight future
            "retries": 0,        # job attempts retried after a failure
            "job_failures": 0,   # jobs that exhausted their retry budget
            "quarantined": 0,    # job keys moved to the poison quarantine
            "shed": 0,           # submits refused by admission control
            "put_retries": 0,    # store appends retried after a failure
            "put_failures": 0,   # store appends abandoned (degraded mode)
            "shards_executed": 0,  # approx-mode shard tasks completed
            "shard_merges": 0,   # per-job merges of shard partials
            "pool_failovers": 0,  # broken process pools rebuilt mid-run
            "claims_won": 0,     # fleet claims this daemon won outright
            "claims_lost": 0,    # claims another daemon held first
            "claim_waits": 0,    # lost claims served from the store
            "claims_broken": 0,  # stale claims (dead owner) taken over
        }
        #: Poison quarantine: job key -> last error message.  A key lands
        #: here after exhausting its retry budget; later submits of the
        #: same key fail fast instead of burning the budget again, until
        #: a ``force`` submit clears it.
        self._quarantine: Dict[str, str] = {}
        #: Jobs submitted to the pool and not yet finished (admission
        #: control).  Guarded by its own lock: the done-callback may fire
        #: on the submitting thread while ``_lock`` is held.
        self._active_jobs = 0
        #: Jobs admitted but not yet classified by the claim phase: the
        #: check-and-reserve in :meth:`_admit` counts them, so concurrent
        #: submits cannot all pass the backlog check and overshoot
        #: ``max_queue`` before any of them reaches the pool.
        self._reserved_jobs = 0
        self._admission_lock = threading.Lock()
        #: Degraded read-only mode: set when the store media proved
        #: unwritable (every put retry exhausted); sticky until restart.
        self.degraded = False
        self.degraded_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _build_pool(self):
        """Build the worker pool of the configured kind.

        A requested process pool is probed immediately (submit + result):
        hosts where worker processes cannot spawn — sandboxes,
        RLIMIT_NPROC — fall back to the thread pool at startup, recorded
        in ``stats()["pool"]["fallback_reason"]``, instead of failing the
        first grid.
        """
        if self.pool_kind == "process":
            pool = ProcessPoolExecutor(max_workers=self.num_workers)
            try:
                pool.submit(os.getpid).result()
                return pool
            except OSError as exc:
                pool.shutdown(wait=False)
                self.pool_kind = "thread"
                self._pool_fallback_reason = (
                    f"process workers unavailable ({exc})")
                print(f"repro.service: {self._pool_fallback_reason}; "
                      f"using thread workers", file=sys.stderr)
        return ThreadPoolExecutor(
            max_workers=self.num_workers,
            thread_name_prefix="repro-service-worker")

    def _rebuild_pool(self) -> None:
        """Replace a broken process pool (a worker died) with a fresh one.

        Mirrors the engine's ``BrokenProcessPool`` failover: the jobs are
        deterministic, so resubmitting to a fresh pool loses nothing.
        Thread pools never break this way.
        """
        with self._pool_lock:
            if self._closed:
                raise RuntimeError(
                    "cannot schedule new futures after shutdown")
            if isinstance(self._pool, ProcessPoolExecutor):
                self._pool.shutdown(wait=False, cancel_futures=True)
                self.counters["pool_failovers"] += 1
                print("repro.service: worker pool broke; rebuilding",
                      file=sys.stderr)
                self._pool = self._build_pool()

    def _submit_raw(self, fn, *args: Any, **kwargs: Any) -> "Future[Any]":
        """Submit a callable to the pool, surviving one broken-pool event.

        ``RuntimeError`` from a shut-down pool propagates untouched (the
        retry machinery upstream treats it like any failed attempt).
        """
        try:
            return self._pool.submit(fn, *args, **kwargs)
        except BrokenProcessPool:
            self._rebuild_pool()
            return self._pool.submit(fn, *args, **kwargs)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, experiment: Optional[str] = None,
               jobs: Optional[Sequence[Dict[str, Any]]] = None,
               scale: Optional[Dict[str, Any]] = None,
               force: bool = False, wait: bool = False) -> Dict[str, Any]:
        """Submit a figure grid (by name) or an explicit job-spec grid.

        With ``wait`` the call returns the finished payload; otherwise it
        returns immediately with the request id to poll via ``status`` /
        ``result``.
        """
        if self._closed:
            raise ServiceError("service is shutting down",
                               code="shutting_down", retryable=True)
        if (experiment is None) == (jobs is None):
            raise ServiceError(
                "submit needs exactly one of 'experiment' or 'jobs'")
        resolved_scale = scale_from_wire(scale)
        if experiment is not None:
            if experiment not in EXPERIMENTS:
                raise ServiceError(
                    f"unknown experiment {experiment!r}; known: "
                    f"{', '.join(EXPERIMENTS)}",
                    code="unknown_experiment")
            job_list = EXPERIMENTS[experiment].jobs(resolved_scale)
            name, explicit = experiment, False
        else:
            if not jobs:
                raise ServiceError("empty job list")
            job_list = [job_from_wire(spec) for spec in jobs]
            name, explicit = "adhoc", True
        if self.hierarchy_spec is not None:
            from .sim.engine import apply_hierarchy
            job_list = apply_hierarchy(job_list, self.hierarchy_spec,
                                       self.hierarchy_name)
        reserved = self._admit(len(job_list))
        try:
            self._refuse_if_degraded(job_list, force)
            with self._lock:
                self._next_request += 1
                request_id = f"req-{self._next_request}-{name}"
                state = _RequestState(request_id, name, len(job_list),
                                      explicit)
                self._requests[request_id] = state
                self._evict_finished_requests()
                self.counters["submissions"] += 1
                self.counters["jobs"] += len(job_list)
            if wait:
                self._run_request(state, job_list, resolved_scale, force,
                                  reserved)
                return state.snapshot(include_payload=True)
            thread = threading.Thread(
                target=self._run_request,
                args=(state, job_list, resolved_scale, force, reserved),
                name=f"repro-service-{request_id}", daemon=True)
            # Prune threads that already finished: a long-lived daemon
            # must not pin one Thread object per request it ever served.
            self._request_threads = [old for old in self._request_threads
                                     if old.is_alive()]
            self._request_threads.append(thread)
            thread.start()
        except BaseException:
            # The reservation now belongs to _run_request; anything that
            # kept it from starting must give the slots back, or shed
            # submits would count phantom backlog forever.
            self._release_reservation(reserved)
            raise
        return state.snapshot()

    def _admit(self, incoming: int) -> int:
        """Load-shed when the job backlog exceeds the bound, atomically.

        Check-and-reserve under one lock: an admitted grid's ``incoming``
        jobs are counted as reserved backlog until the claim phase
        classifies them (by which point pool submissions are counted in
        ``_active_jobs``), so concurrent submits racing the check cannot
        all pass it and collectively overshoot ``max_queue``.  Returns
        the reservation the caller must hand to :meth:`_run_request` (or
        release itself on failure).

        Shedding is honest back-pressure: the refusal is marked
        ``retryable``, so a well-behaved client backs off and resubmits —
        and resubmission is free (store hits / coalescing for everything
        that finished meanwhile).
        """
        if not self.max_queue:
            return 0
        with self._admission_lock:
            backlog = self._active_jobs + self._reserved_jobs
            if backlog < self.max_queue:
                self._reserved_jobs += incoming
                return incoming
        with self._lock:
            self.counters["shed"] += 1
        raise ServiceError(
            f"service overloaded: {backlog} jobs active or admitted "
            f"(max {self.max_queue}); retry with backoff",
            code="overloaded", retryable=True)

    def _release_reservation(self, reserved: int) -> None:
        if not reserved:
            return
        with self._admission_lock:
            self._reserved_jobs -= reserved

    def _refuse_if_degraded(self, job_list: List[Job],
                            force: bool) -> None:
        """In degraded mode, admit only grids that need no store write.

        Warm answers keep flowing (reads still work); anything that would
        have to append — a cold keyed job, or ``force`` recomputation —
        is refused honestly instead of failing halfway through.
        Uncacheable jobs never write the store, so they stay admissible.
        """
        if not self.degraded:
            return
        reason = self.degraded_reason or "store media unwritable"
        if force:
            raise ServiceError(
                f"store is in degraded read-only mode ({reason}); "
                f"force recomputation needs a writable store",
                code="degraded")
        with self._lock:
            for job in job_list:
                key = try_job_key(job)
                if key is not None and key not in self.store:
                    raise ServiceError(
                        f"store is in degraded read-only mode ({reason}) "
                        f"and this grid has unstored jobs; only warm "
                        f"requests are served", code="degraded")

    def _submit_job(self, job: Job) -> "Future[Any]":
        """Submit one job to the pool, tracked for admission control.

        In ``approx`` sharding mode a job that the planner can split fans
        out as shard tasks over the pool and comes back as one merged
        future; everything else (exact mode, mixes, tiny traces) runs
        the unsharded single-job path.  Either way the job counts once
        against admission control.
        """
        plan = None
        if self.sharding == "approx" and self.shards > 1:
            plan = plan_shard_tasks(
                job, self.shards,
                kernel=self.kernel if self._kernel_arg is not None
                else None)
        if plan is not None:
            future = self._submit_sharded(plan)
        elif self._kernel_arg is None:
            future = self._submit_raw(execute_job, job)
        else:
            future = self._submit_raw(execute_job, job,
                                      kernel=self.kernel)
        with self._admission_lock:
            self._active_jobs += 1
        future.add_done_callback(self._job_finished)
        return future

    def _submit_sharded(self, plan: List[Any]) -> "Future[Any]":
        """Fan one job's shard tasks over the pool; one merged future.

        The returned future resolves to the merged
        :class:`~repro.sim.system.SimulationResult` once every shard
        lands (merge order is the plan order, so the result is
        deterministic regardless of completion order).  A failing shard
        cancels its queued siblings and fails the merged future, which
        then flows through the ordinary retry/quarantine machinery.
        """
        shard_futures = [self._submit_raw(execute_shard, task)
                         for task in plan]
        merged: "Future[Any]" = Future()

        def _collect() -> None:
            try:
                # FIRST_EXCEPTION, not plan-order result() calls: a late
                # shard failing must surface (and cancel its queued
                # siblings) immediately, not after every earlier shard
                # happens to finish.
                wait_futures(shard_futures, return_when=FIRST_EXCEPTION)
                failed = next((future for future in shard_futures
                               if future.done() and not future.cancelled()
                               and future.exception() is not None), None)
                if failed is not None:
                    raise failed.exception()
                partials = [future.result() for future in shard_futures]
                result = merge_shard_results(partials)
            except BaseException as exc:  # noqa: BLE001 - to the future
                for future in shard_futures:
                    future.cancel()
                if not merged.cancelled():
                    try:
                        merged.set_exception(exc)
                    except InvalidStateError:
                        pass  # abandoned by a timed-out collect
                return
            with self._lock:
                self.counters["shards_executed"] += len(partials)
                self.counters["shard_merges"] += 1
            if not merged.cancelled():
                try:
                    merged.set_result(result)
                except InvalidStateError:
                    pass  # abandoned by a timed-out collect
        threading.Thread(target=_collect, name="repro-shard-merge",
                         daemon=True).start()
        return merged

    def _job_finished(self, future: "Future[Any]") -> None:
        del future
        with self._admission_lock:
            self._active_jobs -= 1

    def _evict_finished_requests(self) -> None:
        """Drop the longest-finished requests beyond the retention cap.

        Caller holds the lock.  Eviction order is *completion* time, not
        submission order: a request submitted early but finished recently
        is exactly the one a client is most likely still polling, so it
        must outlive requests that have been done (and pollable) longer.
        Running requests are never evicted; a ``status``/``result`` poll
        for an evicted id gets the same "unknown request id" as a
        mistyped one.
        """
        finished = sorted(
            ((state.finished_at or 0.0, request_id)
             for request_id, state in self._requests.items()
             if state.done.is_set()))
        excess = len(finished) - MAX_FINISHED_REQUESTS
        for _, request_id in finished[:max(0, excess)]:
            del self._requests[request_id]

    def _run_request(self, state: _RequestState, job_list: List[Job],
                     scale: Scale, force: bool,
                     reserved: int = 0) -> None:
        start = time.perf_counter()
        try:
            results = self._run_jobs(state, job_list, force, reserved)
            state.seconds = time.perf_counter() - start
            if state.failed_jobs:
                # Per-job isolation: the healthy cells completed (and
                # their puts landed), but a grid with holes has no honest
                # stats — report the structured failure list instead.
                state.error = (
                    f"{len(state.failed_jobs)}/{state.total} jobs failed "
                    f"after {self.job_retries} attempts")
                state.state = "failed"
                return
            if state.explicit:
                state.results = [serialize_result(result)
                                 for result in results]
            else:
                experiment = EXPERIMENTS[state.name]
                state.stats = experiment.summarize(results, scale)
                state.stats_path = self._write_stats(state.name,
                                                     state.stats)
            try:
                with self._lock:
                    self.store.flush_index()
            except OSError as exc:
                # A stale index is never wrong, only slower — losing the
                # flush must not fail an otherwise complete request.
                print(f"repro.service: could not flush store index "
                      f"({exc})", file=sys.stderr)
            state.state = "done"
        except BaseException as exc:  # noqa: BLE001 - reported to client
            # BaseException on purpose: *anything* escaping the job run —
            # including SystemExit/KeyboardInterrupt raised on a worker
            # thread — must leave the request in a terminal state a
            # ``status`` poll can see, never wedged at "running".
            state.error = f"{type(exc).__name__}: {exc}"
            state.state = "failed"
            if not isinstance(exc, Exception):
                raise
        finally:
            state.finished_at = time.monotonic()
            state.done.set()

    def _write_stats(self, name: str,
                     stats: Dict[str, Any]) -> Optional[str]:
        """Atomically persist an experiment's stats JSON; None on failure.

        On unwritable media the request still succeeds — the stats are in
        the response payload; only the on-disk copy is lost — and the
        daemon flips to degraded read-only mode.
        """
        stats_path = self.store.root / "stats" / f"{name}.json"
        # Temp + rename: concurrent same-experiment requests (or a kill
        # mid-write) must never leave a torn stats file.
        tmp = stats_path.with_name(
            f".{stats_path.name}.{threading.get_ident()}.tmp")
        try:
            stats_path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(canonical_json(stats), encoding="utf-8")
            os.replace(tmp, stats_path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            print(f"repro.service: could not write {stats_path} ({exc}); "
                  f"entering degraded read-only mode", file=sys.stderr)
            self._enter_degraded(str(exc))
            return None
        return str(stats_path)

    def _enter_degraded(self, reason: str) -> None:
        with self._lock:
            if not self.degraded:
                self.degraded = True
                self.degraded_reason = reason

    def _run_jobs(self, state: _RequestState, job_list: List[Job],
                  force: bool, reserved: int = 0) -> List[Any]:
        """Claim, compute and collect one grid, persisting in job order."""
        # Claim phase: classify every job atomically against other
        # requests.  plan[i] is ("store", key) | ("watch", future) |
        # ("own", key, exec_future, claimed) | ("direct", exec_future)
        # | ("poison", key) | ("remote", key) — "remote" only in fleet
        # mode, when another daemon holds the key's claim.
        specs: List[Optional[Dict[str, Any]]] = []
        keys: List[Optional[str]] = []
        approx = self.sharding == "approx" and self.shards > 1
        for job in job_list:
            try:
                # Approx-mode results are deterministic but not
                # bit-identical to the exact replay, so they must never
                # be served from, deduplicated against, or persisted
                # into the exact-only store: every job runs direct.
                spec = None if approx else job_spec(job)
            except UncacheableJobError:
                spec = None
            specs.append(spec)
            keys.append(None if spec is None else spec_key(spec))
        plan: List[Tuple[Any, ...]] = []
        owned: List[int] = []
        #: Fleet claims this request still holds (released as the collect
        #: loop persists each one; the cleanup path releases leftovers).
        held_claims: set = set()
        results: List[Any] = []
        # The claim loop sits inside the same try as the collect loop: a
        # failure after a Future is registered (pool shut down mid-claim,
        # MemoryError, ...) must resolve the registered futures, or every
        # request that coalesced onto them would wait forever.
        try:
            try:
                with self._lock:
                    for index, key in enumerate(keys):
                        if key is None:
                            # Unkeyed jobs (uncacheable specs, approx-
                            # sharded runs) always simulate — report them
                            # as such.
                            plan.append(("direct",
                                         self._submit_job(job_list[index])))
                            self.counters["simulations"] += 1
                            state.simulated += 1
                            continue
                        if not force and key in self.store:
                            plan.append(("store", key))
                            self.counters["store_hits"] += 1
                            state.stored += 1
                            continue
                        if key in self._quarantine:
                            if force:
                                # A force submit is the operator saying
                                # "try again": clear the poison verdict
                                # and re-own.
                                del self._quarantine[key]
                            else:
                                plan.append(("poison", key))
                                continue
                        future = self._inflight.get(key)
                        if future is not None:
                            plan.append(("watch", future))
                            self.counters["coalesced"] += 1
                            state.coalesced += 1
                            continue
                        claimed = False
                        if self.fleet and not force:
                            verdict = self._claim_key(key)
                            if verdict == "stored":
                                plan.append(("store", key))
                                self.counters["store_hits"] += 1
                                state.stored += 1
                                continue
                            if verdict == "lost":
                                plan.append(("remote", key))
                                self.counters["claims_lost"] += 1
                                continue
                            claimed = verdict == "claimed"
                            if claimed:
                                self.counters["claims_won"] += 1
                                held_claims.add(key)
                        future = Future()
                        self._inflight[key] = future
                        owned.append(index)
                        plan.append(("own", key,
                                     self._submit_job(job_list[index]),
                                     claimed))
                        self.counters["simulations"] += 1
                        state.simulated += 1
            finally:
                # Every admitted job is now classified (pool submissions
                # are counted in _active_jobs), so the reservation has
                # done its job.
                self._release_reservation(reserved)
            # Collect phase, strictly in job order: owners persist their
            # results as they arrive, so the shard files the daemon writes
            # are byte-identical to a serial run of the same job list —
            # and an interrupted grid keeps every job persisted before
            # the kill.  Per-job isolation: a step that fails for good is
            # recorded in ``state.failed_jobs`` and the loop moves on, so
            # every healthy sibling still lands in the store in job order.
            for index, step in enumerate(plan):
                try:
                    if step[0] == "store":
                        with self._lock:
                            result = self.store.get(step[1])
                        if result is None:
                            # The entry vanished behind us (fsck/compact)
                            # or the read failed: the store is a cache,
                            # so recover by recomputing — with the full
                            # retry/persist machinery.
                            result = self._collect_owned(
                                job_list[index], step[1],
                                self._submit_job(job_list[index]))
                            self._persist(step[1], specs[index], result)
                    elif step[0] == "poison":
                        raise ServiceError(
                            f"job {step[1][:12]}… is quarantined after "
                            f"repeated failures "
                            f"({self._quarantine.get(step[1])}); "
                            f"submit with force to retry it",
                            code="quarantined")
                    elif step[0] == "watch" or step[0] == "direct":
                        result = step[1].result()
                    elif step[0] == "remote":
                        result = self._await_remote(
                            job_list[index], step[1], specs[index], state)
                    else:
                        _, key, exec_future, claimed = step
                        try:
                            result = self._collect_owned(
                                job_list[index], key, exec_future)
                            self._persist(key, specs[index], result)
                        finally:
                            if claimed:
                                # Released only after the put landed (or
                                # the job failed for good): a loser that
                                # sees the claim gone either finds the
                                # result or takes the work over.
                                self.store.release_claim(key)
                                held_claims.discard(key)
                        with self._lock:
                            inflight = self._inflight.pop(key, None)
                        if inflight is not None:
                            inflight.set_result(result)
                except Exception as exc:  # noqa: BLE001 - isolated below
                    code = exc.code if isinstance(exc, ServiceError) \
                        else "job_failed"
                    state.failed_jobs.append({
                        "index": index,
                        "key": keys[index],
                        "code": code,
                        "error": f"{type(exc).__name__}: {exc}"
                        if not isinstance(exc, ServiceError)
                        else str(exc),
                    })
                    results.append(None)
                    continue
                results.append(result)
                state.completed += 1
            return results
        except BaseException as exc:
            # Resolve every still-registered owned future so attached
            # requests fail loudly instead of waiting forever.
            with self._lock:
                for index in owned:
                    future = self._inflight.pop(keys[index], None)
                    if future is not None and not future.done():
                        future.set_exception(exc)
            # And surrender every fleet claim this request still holds,
            # so sibling daemons take the work over instead of polling a
            # claim whose owner gave up.
            for key in held_claims:
                self.store.release_claim(key)
            raise

    def _claim_key(self, key: str) -> str:
        """Contend for a cold key's fleet claim.  Caller holds the lock.

        Returns ``"claimed"`` (this daemon owns the key and must release
        the claim after persisting), ``"stored"`` (another daemon
        persisted the result between our store check and now — serve
        it), ``"lost"`` (another daemon holds the claim — poll the
        store), or ``"unclaimed"`` (the claim layer is unavailable, e.g.
        read-only media: proceed as owner without a claim; at worst a
        sibling daemon duplicates a deterministic job).
        """
        try:
            won = self.store.claim(key, owner=self._claim_owner)
        except OSError:
            return "unclaimed"
        if won:
            # Re-check the store *after* winning: the previous owner may
            # have persisted and released between our in-memory miss and
            # the claim create.  refresh() is one stat() when nothing
            # changed, so this stays cheap for genuinely cold keys.
            if self.store.refresh(key):
                self.store.release_claim(key)
                return "stored"
            return "claimed"
        return "lost"

    def _await_remote(self, job: Job, key: str,
                      spec: Optional[Dict[str, Any]],
                      state: _RequestState) -> Any:
        """Wait for another daemon's claimed simulation of ``key``.

        The claim-loser contract: poll the shared store until the
        owner's locked append lands, then serve it as a store hit.  If
        the claim disappears without a result (the owner's attempt
        failed) or goes stale (the owner died), contend to take the work
        over and simulate here — with the in-process future table still
        deduplicating against this daemon's other requests.
        """
        poll = self.CLAIM_POLL_BASE
        while True:
            with self._lock:
                if self.store.refresh(key):
                    result = self.store.get(key)
                    if result is not None:
                        self.counters["claim_waits"] += 1
                        self.counters["store_hits"] += 1
                        state.stored += 1
                        return result
                    # Present but unreadable: fall through and poll —
                    # refresh() re-scans the shard on the next pass.
            claim = self.store.read_claim(key)
            take_over = False
            if claim is None:
                # Owner released without persisting (its attempt failed,
                # or its media went read-only): contend for the claim.
                verdict = self._claim_key_for_takeover(key)
                if verdict == "stored":
                    continue  # the result just appeared; serve it above
                take_over = verdict in ("claimed", "unclaimed")
            elif self.store.claim_is_stale(claim):
                take_over = self.store.steal_claim(
                    key, owner=self._claim_owner)
                if take_over:
                    with self._lock:
                        self.counters["claims_broken"] += 1
            if take_over:
                return self._takeover(job, key, spec, state)
            time.sleep(poll)
            poll = min(poll * 2, self.CLAIM_POLL_MAX)

    def _claim_key_for_takeover(self, key: str) -> str:
        with self._lock:
            return self._claim_key(key)

    def _takeover(self, job: Job, key: str,
                  spec: Optional[Dict[str, Any]],
                  state: _RequestState) -> Any:
        """Simulate a key this daemon just inherited from a dead owner."""
        with self._lock:
            existing = self._inflight.get(key)
            if existing is None:
                inflight: "Future[Any]" = Future()
                self._inflight[key] = inflight
                exec_future = self._submit_job(job)
                self.counters["simulations"] += 1
                state.simulated += 1
        if existing is not None:
            # Another of this daemon's requests inherited the key first;
            # surrender the redundant claim and attach to its future.
            self.store.release_claim(key)
            with self._lock:
                self.counters["coalesced"] += 1
                state.coalesced += 1
            return existing.result()
        try:
            result = self._collect_owned(job, key, exec_future)
            self._persist(key, spec, result)
        finally:
            self.store.release_claim(key)
        with self._lock:
            still_inflight = self._inflight.pop(key, None)
        if still_inflight is not None:
            still_inflight.set_result(result)
        return result

    def _collect_owned(self, job: Job, key: str,
                       exec_future: "Future[Any]") -> Any:
        """One owned job's result, retried within the bounded budget.

        Each attempt may fail (a crashing worker) or exceed the per-
        attempt deadline (a hung simulation: the attempt is abandoned —
        its thread may still finish, which is harmless because puts are
        idempotent by key — and a fresh attempt starts).  After the
        budget the key is quarantined, the in-flight future is failed so
        coalesced watchers unblock, and the failure propagates to the
        per-job isolation handler in :meth:`_run_jobs`.
        """
        last_error = "unknown"
        for attempt in range(1, self.job_retries + 1):
            try:
                return exec_future.result(timeout=self.job_timeout)
            except FutureTimeoutError:
                exec_future.cancel()
                last_error = (f"attempt exceeded the {self.job_timeout}s "
                              f"deadline")
            except Exception as exc:  # noqa: BLE001 - retried
                last_error = f"{type(exc).__name__}: {exc}"
            if attempt < self.job_retries:
                with self._lock:
                    self.counters["retries"] += 1
                time.sleep(self.RETRY_BACKOFF * (2 ** (attempt - 1)))
                exec_future = self._submit_job(job)
        error = ServiceError(
            f"job {key[:12]}… failed after {self.job_retries} attempts: "
            f"{last_error}", code="job_failed", retryable=True)
        with self._lock:
            self.counters["job_failures"] += 1
            self.counters["quarantined"] += 1
            self._quarantine[key] = last_error
            inflight = self._inflight.pop(key, None)
        if inflight is not None and not inflight.done():
            inflight.set_exception(error)
        raise error

    def _persist(self, key: str, spec: Optional[Dict[str, Any]],
                 result: Any) -> None:
        """Store one owned result with a bounded retry; never raises.

        A failed append is retried (the shard's torn tail is repaired in
        place by the next locked append); exhausting the budget flips the
        daemon into degraded read-only mode but does **not** fail the
        job — the result is already computed and flows back to every
        waiter, only the cache entry is lost.
        """
        for attempt in range(1, self.PUT_ATTEMPTS + 1):
            try:
                with self._lock:
                    self.store.put(key, spec, result)
                return
            except OSError as error:
                if attempt == self.PUT_ATTEMPTS:
                    with self._lock:
                        self.counters["put_failures"] += 1
                    print(f"repro.service: giving up storing "
                          f"{key[:12]}… ({error}); entering degraded "
                          f"read-only mode", file=sys.stderr)
                    self._enter_degraded(str(error))
                    return
                with self._lock:
                    self.counters["put_retries"] += 1
                time.sleep(self.PUT_BACKOFF * (2 ** (attempt - 1)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self, request_id: Optional[str] = None,
               scale: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """One request's progress, or per-experiment store coverage."""
        if request_id is not None:
            return self._request_state(request_id).snapshot()
        resolved = scale_from_wire(scale)
        # Key hashing is pure CPU over static job lists — do it outside
        # the lock so a polling client never stalls in-flight claims and
        # puts; only the membership checks need the store's lock.
        grids = {name: [try_job_key(job)
                        for job in experiment.jobs(resolved)]
                 for name, experiment in EXPERIMENTS.items()}
        coverage: Dict[str, Dict[str, int]] = {}
        with self._lock:
            entries = len(self.store)
            for name, grid_keys in grids.items():
                stored = sum(1 for key in grid_keys if key in self.store)
                coverage[name] = {"stored": stored, "total": len(grid_keys)}
            quarantine = dict(self._quarantine)
        return {"store": str(self.store.root), "entries": entries,
                "experiments": coverage, "quarantine": quarantine}

    def result(self, request_id: str, wait: bool = False,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """A request's final payload (stats/results) once it is done."""
        state = self._request_state(request_id)
        if wait:
            # The server-side wait is clamped so one slow grid can never
            # pin a handler thread (and its client socket) indefinitely —
            # clients poll in bounded chunks (see ServiceClient.result).
            if timeout is None:
                timeout = MAX_RESULT_WAIT
            state.done.wait(min(float(timeout), MAX_RESULT_WAIT))
        return state.snapshot(include_payload=True)

    def _request_state(self, request_id: str) -> _RequestState:
        state = self._requests.get(request_id)
        if state is None:
            raise ServiceError(f"unknown request id {request_id!r}",
                               code="unknown_request")
        return state

    def stats(self) -> Dict[str, Any]:
        """Server counters: the store/dedup traffic since startup."""
        from .faults import counters_snapshot
        from .sim.engine import TRACE_CACHE
        with self._lock:
            counters = dict(self.counters)
            inflight = len(self._inflight)
            quarantined_keys = len(self._quarantine)
            store = {"entries": len(self.store), "hits": self.store.hits,
                     "misses": self.store.misses, "puts": self.store.puts}
        with self._admission_lock:
            active = self._active_jobs
        processes = getattr(self._pool, "_processes", None)
        return {
            "uptime_seconds": time.time() - self.started_at,
            "workers": self.num_workers,
            "kernel": self.kernel,
            "shards": self.shards,
            "sharding": self.sharding,
            "fleet": self.fleet,
            "pid": os.getpid(),
            "pool": {
                "type": self.pool_kind,
                "workers": self.num_workers,
                "children": sorted(processes.keys()) if processes else [],
                "fallback_reason": self._pool_fallback_reason,
            },
            "inflight": inflight,
            "active_jobs": active,
            "quarantined_keys": quarantined_keys,
            "degraded": self.degraded,
            "counters": counters,
            "store": store,
            "trace_cache": {"hits": TRACE_CACHE.hits,
                            "misses": TRACE_CACHE.misses,
                            "disk_hits": TRACE_CACHE.disk_hits,
                            "disk_spills": TRACE_CACHE.disk_spills},
            "faults": counters_snapshot(),
        }

    def health(self) -> Dict[str, Any]:
        payload = {"status": "degraded" if self.degraded else "ok",
                   "pid": os.getpid(),
                   "schema": PROTOCOL_SCHEMA,
                   "store": str(self.store.root),
                   "workers": self.num_workers,
                   "fleet": self.fleet,
                   "uptime_seconds": time.time() - self.started_at}
        if self.degraded:
            payload["reason"] = self.degraded_reason
        return payload

    def figures(self) -> Dict[str, Any]:
        return {"experiments": {name: experiment.title
                                for name, experiment in EXPERIMENTS.items()}}

    # ------------------------------------------------------------------
    # Dispatch and lifecycle
    # ------------------------------------------------------------------
    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one protocol request, returning the response object."""
        with self._lock:
            self.counters["requests"] += 1
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        try:
            if op == "submit":
                payload = self.submit(
                    experiment=request.get("experiment"),
                    jobs=request.get("jobs"),
                    scale=request.get("scale"),
                    force=bool(request.get("force", False)),
                    wait=bool(request.get("wait", False)))
            elif op == "status":
                payload = self.status(request.get("id"),
                                      scale=request.get("scale"))
            elif op == "result":
                request_id = request.get("id")
                if not isinstance(request_id, str):
                    raise ServiceError("result needs a request 'id'")
                payload = self.result(request_id,
                                      wait=bool(request.get("wait", False)),
                                      timeout=request.get("timeout"))
            elif op == "stats":
                payload = self.stats()
            elif op == "health":
                payload = self.health()
            elif op == "figures":
                payload = self.figures()
            elif op == "shutdown":
                payload = {"stopping": True}
            else:
                raise ServiceError(f"unknown op {op!r}")
        except ServiceError as exc:
            return {"ok": False, "error": str(exc), "code": exc.code,
                    "retryable": exc.retryable}
        except Exception as exc:  # noqa: BLE001 - daemon must not die
            return {"ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "code": "internal", "retryable": False}
        response = {"ok": True}
        response.update(payload)
        return response

    def close(self, wait: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting work and drain the pool.

        Jobs already executing run to completion (their puts land, so a
        restart resumes past them); queued jobs are cancelled.  Request
        threads are given ``timeout`` seconds to finish their bookkeeping.

        Process pools need more than the thread pool's drain: a SIGTERM'd
        daemon must not leave orphaned worker children running
        simulations nobody will collect, so after the cooperative
        shutdown any child still alive past the deadline is terminated
        (then killed).  Thread workers die with the process, which is why
        the pre-process-pool daemon never needed this.
        """
        with self._pool_lock:
            self._closed = True
            pool = self._pool
        if isinstance(pool, ProcessPoolExecutor):
            self._shutdown_process_pool(pool, wait, timeout)
        else:
            pool.shutdown(wait=wait, cancel_futures=True)
        if wait:
            deadline = time.time() + timeout
            for thread in self._request_threads:
                thread.join(max(0.0, deadline - time.time()))

    @staticmethod
    def _shutdown_process_pool(pool: ProcessPoolExecutor, wait: bool,
                               timeout: float) -> None:
        """Shut a process pool down without leaving orphaned children."""
        children = list((getattr(pool, "_processes", None) or {}).values())
        # Cooperative first: cancel the queue and let running jobs finish
        # within the grace period (their puts land before the restart).
        pool.shutdown(wait=False, cancel_futures=True)
        deadline = time.time() + (timeout if wait else 0.5)
        for child in children:
            child.join(max(0.0, deadline - time.time()))
        survivors = [child for child in children if child.is_alive()]
        for child in survivors:
            child.terminate()
        deadline = time.time() + 1.0
        for child in survivors:
            child.join(max(0.0, deadline - time.time()))
            if child.is_alive():
                child.kill()


# ======================================================================
# The socket layer
# ======================================================================
class _ServiceHandler(socketserver.StreamRequestHandler):
    """One JSON request line in, one JSON response line out."""

    def handle(self) -> None:
        raw = self.rfile.readline(MAX_REQUEST_BYTES + 1)
        if not raw:
            return
        if len(raw) > MAX_REQUEST_BYTES:
            self._respond({"ok": False, "error": "request too large"})
            return
        try:
            request = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self._respond({"ok": False,
                           "error": "request is not valid JSON"})
            return
        service: SimulationService = self.server.service  # type: ignore
        response = service.dispatch(request)
        self._respond(response)
        if isinstance(request, dict) and request.get("op") == "shutdown":
            self.server.request_shutdown()  # type: ignore[attr-defined]

    def _respond(self, response: Dict[str, Any]) -> None:
        payload = json.dumps(response, sort_keys=True,
                             separators=(",", ":")) + "\n"
        try:
            # Fault site: the response connection dying under the daemon.
            # An injected drop raises the same ConnectionResetError a real
            # torn socket would; the client sees a closed connection and
            # drives its reconnect-and-retry path.
            fault_point("service.response")
            self.wfile.write(payload.encode("utf-8"))
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to report to


class _ServerMixin:
    """Shutdown plumbing shared by the TCP and unix variants."""

    service: SimulationService
    daemon_threads = True

    def request_shutdown(self) -> None:
        # shutdown() blocks until serve_forever exits, so it must be
        # called off the handler thread (which serve_forever may join).
        threading.Thread(target=self.shutdown,  # type: ignore[attr-defined]
                         name="repro-service-shutdown",
                         daemon=True).start()


class ReproTCPServer(_ServerMixin, socketserver.ThreadingTCPServer):
    allow_reuse_address = True


class ReproUnixServer(_ServerMixin,
                      socketserver.ThreadingUnixStreamServer):
    pass


def _unix_socket_alive(socket_path: str, timeout: float = 0.5) -> bool:
    """Whether anything accepts connections on ``socket_path``.

    ``ConnectionRefusedError`` (and a vanished file) means the socket is
    an orphan from a crashed daemon — safe to replace.  Anything else —
    an accepted connect, or even a timeout (a live but busy listener) —
    is treated as alive: when unsure, refuse to steal.
    """
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(timeout)
        probe.connect(socket_path)
    except (ConnectionRefusedError, FileNotFoundError):
        return False
    except OSError:
        return True
    finally:
        probe.close()
    return True


def create_server(service: SimulationService,
                  port: Optional[int] = None,
                  socket_path: Union[str, Path, None] = None
                  ) -> Tuple[socketserver.BaseServer, str]:
    """Bind a server for ``service``; returns ``(server, address)``.

    Exactly one of ``port`` (localhost TCP; 0 picks a free port) and
    ``socket_path`` (unix socket, replaced if a *stale* one exists) must
    be given.  The returned address string round-trips through
    :func:`parse_address`.

    A socket file left by a crashed daemon is unlinked and replaced, but
    a *live* daemon's socket is probed first (a short connect): if
    anything answers, binding is refused with a ``ServiceError`` instead
    of silently stealing the address out from under the running daemon —
    load-bearing once fleets run many daemons per host.
    """
    if (port is None) == (socket_path is None):
        raise ServiceError("specify exactly one of port / socket_path")
    if socket_path is not None:
        socket_path = str(socket_path)
        stale = Path(socket_path)
        if stale.is_socket():
            if _unix_socket_alive(socket_path):
                raise ServiceError(
                    f"a daemon is already listening on {socket_path}; "
                    f"refusing to replace a live socket (stop it first, "
                    f"or serve on a different path)")
            stale.unlink()
        server: socketserver.BaseServer = ReproUnixServer(
            socket_path, _ServiceHandler)
        address = format_address("unix", socket_path)
    else:
        server = ReproTCPServer(("127.0.0.1", port), _ServiceHandler)
        address = format_address("tcp", server.server_address[:2])
    server.service = service  # type: ignore[attr-defined]
    return server, address


# ======================================================================
# The client
# ======================================================================
class ServiceClient:
    """Talk to a running daemon: one JSON line per request.

    Every method raises :class:`ServiceError` when the daemon answers
    ``ok: false`` (carrying the server's machine-readable ``code`` and
    ``retryable`` flag) or when it stays unreachable after the retry
    budget (codes ``connection`` / ``timeout``, always retryable).

    Resilience: every request gets a per-op IO deadline (``timeout``),
    reconnects with exponential backoff plus deterministic jitter, and is
    safe to resubmit — jobs are content-addressed and coalesced server-
    side, so a retried ``submit`` whose first response was lost costs
    nothing.  Long waits (``result(wait=True)``, ``submit(wait=True)``)
    poll in bounded chunks, so a daemon dying mid-request surfaces as a
    retryable :class:`ServiceError` instead of a hang.

    Args:
        address: Daemon address (see :func:`parse_address`).
        timeout: Per-op socket IO deadline in seconds (None = no limit).
        retries: Connection attempts per request (default 3).
        backoff: Base reconnect backoff in seconds, doubled per attempt,
            plus up to 50% deterministic jitter (seeded by the address).
    """

    #: Defaults for the reconnect budget.
    DEFAULT_RETRIES = 3
    DEFAULT_BACKOFF = 0.1
    #: Server-side wait slice per poll of a running request (seconds).
    WAIT_CHUNK = 2.0
    #: Extra socket allowance on top of a server-side wait slice.
    WAIT_GRACE = 10.0

    def __init__(self, address: str, timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 backoff: Optional[float] = None) -> None:
        self.family, self.location = parse_address(address)
        self.address = format_address(self.family, self.location)
        self.timeout = timeout
        self.retries = self.DEFAULT_RETRIES if retries is None \
            else max(1, retries)
        self.backoff = self.DEFAULT_BACKOFF if backoff is None else backoff
        # Deterministic jitter: seeded by the address, so a test run (or
        # a replayed incident) backs off identically every time, while
        # distinct clients still de-synchronise.
        self._jitter = random.Random(f"repro-client:{self.address}")

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """One op with reconnect-and-retry; see :meth:`request_once`."""
        last_error: Optional[ServiceError] = None
        for attempt in range(1, self.retries + 1):
            try:
                return self.request_once(op, **params)
            except ServiceError as error:
                if not error.retryable or attempt >= self.retries:
                    raise
                last_error = error
            except socket.timeout as error:
                last_error = ServiceConnectionError(
                    f"service at {self.address} did not answer within "
                    f"{self.timeout}s ({error})", code="timeout",
                    retryable=True)
            except OSError as error:
                last_error = ServiceConnectionError(
                    f"could not reach service at {self.address} "
                    f"({error})", code="connection", retryable=True)
            if attempt >= self.retries:
                raise last_error
            self._sleep_backoff(attempt)
        raise last_error  # pragma: no cover - loop always raises/returns

    def _sleep_backoff(self, attempt: int) -> None:
        base = self.backoff * (2 ** (attempt - 1))
        time.sleep(base * (1.0 + 0.5 * self._jitter.random()))

    def request_once(self, op: str, io_timeout: Optional[float] = None,
                     **params: Any) -> Dict[str, Any]:
        """One op, one connection, no retry (the building block).

        ``io_timeout`` overrides the client's socket deadline for this
        request — used by the chunked-wait polls, whose server side
        legitimately blocks for a bounded slice before answering.
        """
        payload = {"op": op, **{key: value for key, value in params.items()
                                if value is not None}}
        line = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._connect(io_timeout) as sock:
            sock.sendall(line.encode("utf-8"))
            with sock.makefile("rb") as stream:
                raw = stream.readline()
        if not raw:
            raise ConnectionError(
                f"service at {self.address} closed the connection "
                f"without answering")
        try:
            response = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            # The peer is not a repro daemon (an HTTP server, say).
            raise ServiceError(
                f"malformed (non-JSON) response from {self.address} — "
                f"is a repro daemon really listening there?") from None
        if not isinstance(response, dict) or "ok" not in response:
            raise ServiceError(f"malformed response from {self.address}")
        if not response["ok"]:
            raise ServiceError(response.get("error", "unknown error"),
                               code=response.get("code", "internal"),
                               retryable=bool(response.get("retryable")))
        return response

    def _connect(self, io_timeout: Optional[float] = None
                 ) -> socket.socket:
        timeout = self.timeout if io_timeout is None else io_timeout
        # Fault site: the connect handshake (refused / dropped / slow).
        fault_point("client.connect")
        if self.family == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.settimeout(timeout)
                sock.connect(self.location)
            except BaseException:
                sock.close()
                raise
            return sock
        return socket.create_connection(self.location, timeout=timeout)

    # Typed convenience wrappers -----------------------------------------
    def submit(self, experiment: Optional[str] = None,
               jobs: Optional[Sequence[Dict[str, Any]]] = None,
               scale: Optional[Dict[str, Any]] = None,
               force: bool = False, wait: bool = False) -> Dict[str, Any]:
        response = self.request("submit", experiment=experiment, jobs=jobs,
                                scale=scale, force=force or None)
        if not wait:
            return response
        # Waiting is submit-then-poll rather than one long blocking call:
        # each poll is IO-bounded, so a daemon dying mid-grid surfaces as
        # a retryable error within a chunk instead of a silent hang.
        return self.result(response["id"], wait=True)

    def status(self, request_id: Optional[str] = None,
               scale: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        return self.request("status", id=request_id, scale=scale)

    def result(self, request_id: str, wait: bool = False,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """A request's payload; with ``wait``, poll until terminal.

        ``timeout`` bounds the *overall* wait (None = wait for the grid,
        however long, while staying responsive to daemon death); expiry
        raises a retryable :class:`ServiceError` with code ``timeout``.
        """
        if not wait:
            return self.request("result", id=request_id)
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while True:
            chunk = self.WAIT_CHUNK
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceError(
                        f"request {request_id} still running after "
                        f"{timeout}s", code="timeout", retryable=True)
                chunk = min(chunk, max(remaining, 0.05))
            response = self.request(
                "result", io_timeout=chunk + self.WAIT_GRACE,
                id=request_id, wait=True, timeout=chunk)
            if response.get("state") != "running":
                return response

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def health(self) -> Dict[str, Any]:
        return self.request("health")

    def figures(self) -> Dict[str, Any]:
        return self.request("figures")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    def wait_healthy(self, timeout: float = 10.0,
                     interval: float = 0.05) -> Dict[str, Any]:
        """Poll ``health`` until the daemon answers (startup helper).

        The deadline is monotonic — a wall-clock step (NTP, suspend)
        during daemon startup must not stretch or cut short the wait.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except (OSError, ServiceError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)


# ======================================================================
# The fleet client
# ======================================================================
class FleetClient:
    """Talk to a fleet of daemons sharing one store.

    Routing: each submit hashes its grid's first job key and lands on
    ``members[hash % N]`` — deterministic, so identical grids from many
    clients converge on the same member and coalesce in-process, while
    different figures spread across the fleet.  Failover: a member that
    answers with ``connection`` / ``timeout`` / ``overloaded`` /
    ``shutting_down`` is skipped in ring order, reusing each member
    client's own retry/backoff contract underneath.  A member dying
    mid-grid is survivable for the same reason resubmission is free on
    one daemon: jobs are content-addressed, so the next member serves
    every cell the dead member persisted straight from the shared store
    and simulates only the remainder (breaking the dead member's stale
    claims in fleet mode).

    ``stats()`` / ``health()`` aggregate across members (summed
    counters / fleet-wide status) with the per-member payloads riding
    along under ``"members"``.

    Args:
        addresses: Comma-separated address string, or a sequence of
            addresses (each as accepted by :func:`parse_address`).
        timeout / retries / backoff: Forwarded to each member's
            :class:`ServiceClient`.
    """

    #: Error codes that route a submit to the next fleet member.
    FAILOVER_CODES = frozenset(
        {"connection", "timeout", "overloaded", "shutting_down"})

    def __init__(self, addresses: Union[str, Sequence[str]],
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 backoff: Optional[float] = None) -> None:
        if isinstance(addresses, str):
            addresses = addresses.split(",")
        cleaned = [addr.strip() for addr in addresses
                   if addr and addr.strip()]
        if not cleaned:
            raise ServiceError("empty fleet address list")
        self.members = [ServiceClient(addr, timeout=timeout,
                                      retries=retries, backoff=backoff)
                        for addr in cleaned]
        self.address = ",".join(member.address for member in self.members)

    def _route(self, experiment: Optional[str],
               jobs: Optional[Sequence[Dict[str, Any]]],
               scale: Optional[Dict[str, Any]]) -> int:
        """Deterministic starting member for one submit."""
        key: Optional[str] = None
        try:
            if jobs:
                key = try_job_key(job_from_wire(jobs[0]))
            elif experiment in EXPERIMENTS:
                grid = EXPERIMENTS[experiment].jobs(scale_from_wire(scale))
                if grid:
                    key = try_job_key(grid[0])
        except Exception:  # noqa: BLE001 - fall back to the name hash
            key = None
        if key is None:
            seed = experiment or json.dumps(jobs, sort_keys=True,
                                            default=str)
            key = hashlib.sha256(str(seed).encode("utf-8")).hexdigest()
        return int(key[:8], 16) % len(self.members)

    def _ring(self, start: int) -> List[ServiceClient]:
        count = len(self.members)
        return [self.members[(start + step) % count]
                for step in range(count)]

    def _no_member(self,
                   last_error: Optional[ServiceError]) -> ServiceError:
        return last_error or ServiceConnectionError(
            f"no fleet member reachable at {self.address}",
            code="connection", retryable=True)

    def submit(self, experiment: Optional[str] = None,
               jobs: Optional[Sequence[Dict[str, Any]]] = None,
               scale: Optional[Dict[str, Any]] = None,
               force: bool = False, wait: bool = False) -> Dict[str, Any]:
        """Submit to the routed member, failing over in ring order.

        The response gains a ``"member"`` field naming the address that
        served it.  With ``wait``, a member dying mid-grid resubmits the
        whole grid to the next member — free, because every cell the
        dead member persisted is served from the shared store.
        """
        start = self._route(experiment, jobs, scale)
        last_error: Optional[ServiceError] = None
        for member in self._ring(start):
            try:
                response = member.submit(experiment=experiment, jobs=jobs,
                                         scale=scale, force=force)
            except ServiceError as error:
                if error.code in self.FAILOVER_CODES:
                    last_error = error
                    continue
                raise
            try:
                if wait:
                    response = member.result(response["id"], wait=True)
            except ServiceError as error:
                # The accepting member died (or restarted and forgot the
                # request id) mid-grid: resubmit to the next member.
                if error.code in ("connection", "timeout",
                                  "unknown_request"):
                    last_error = error
                    continue
                raise
            response["member"] = member.address
            return response
        raise self._no_member(last_error)

    def _any_member(self, call: Any,
                    extra_codes: Tuple[str, ...] = ()) -> Dict[str, Any]:
        """Run ``call(member)`` on the first member that can answer."""
        last_error: Optional[ServiceError] = None
        for member in self.members:
            try:
                response = call(member)
            except ServiceError as error:
                if error.code in self.FAILOVER_CODES or \
                        error.code in extra_codes:
                    last_error = error
                    continue
                raise
            response["member"] = member.address
            return response
        raise self._no_member(last_error)

    def status(self, request_id: Optional[str] = None,
               scale: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        # Request ids live on the member that accepted the submit, so a
        # targeted status walks the fleet past "unknown_request".
        return self._any_member(
            lambda member: member.status(request_id, scale=scale),
            extra_codes=("unknown_request",) if request_id else ())

    def result(self, request_id: str, wait: bool = False,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        return self._any_member(
            lambda member: member.result(request_id, wait=wait,
                                         timeout=timeout),
            extra_codes=("unknown_request",))

    def figures(self) -> Dict[str, Any]:
        return self._any_member(lambda member: member.figures())

    def stats(self) -> Dict[str, Any]:
        """Fleet-wide counters: summed across the reachable members."""
        totals: Dict[str, Any] = {}
        members: List[Dict[str, Any]] = []
        reachable = 0
        entries = 0
        for member in self.members:
            try:
                payload = member.stats()
            except (OSError, ServiceError) as error:
                members.append({"address": member.address,
                                "error": str(error)})
                continue
            reachable += 1
            payload["address"] = member.address
            members.append(payload)
            for name, value in (payload.get("counters") or {}).items():
                if isinstance(value, (int, float)):
                    totals[name] = totals.get(name, 0) + value
            store = payload.get("store") or {}
            # Every member views the same store; report the freshest view.
            entries = max(entries, store.get("entries", 0))
        if not reachable:
            raise self._no_member(None)
        return {"fleet": {"size": len(self.members),
                          "reachable": reachable},
                "counters": totals,
                "store": {"entries": entries},
                "members": members}

    def health(self) -> Dict[str, Any]:
        """Per-member health plus a fleet-wide verdict."""
        members: List[Dict[str, Any]] = []
        healthy = 0
        for member in self.members:
            try:
                payload = member.health()
                if payload.get("status") == "ok":
                    healthy += 1
            except (OSError, ServiceError) as error:
                payload = {"status": "unreachable", "error": str(error)}
            payload["address"] = member.address
            members.append(payload)
        if healthy == len(self.members):
            status = "ok"
        elif healthy:
            status = "degraded"
        else:
            status = "unreachable"
        return {"status": status,
                "fleet": {"size": len(self.members), "healthy": healthy},
                "members": members}

    def wait_healthy(self, timeout: float = 10.0,
                     interval: float = 0.05) -> Dict[str, Any]:
        """Block until every member answers ``health`` (startup helper)."""
        deadline = time.monotonic() + timeout
        members = []
        for member in self.members:
            remaining = max(0.05, deadline - time.monotonic())
            payload = member.wait_healthy(timeout=remaining,
                                          interval=interval)
            payload["address"] = member.address
            members.append(payload)
        return {"status": "ok", "members": members}

    def shutdown(self) -> Dict[str, Any]:
        """Ask every reachable member to stop (best-effort)."""
        stopped = 0
        for member in self.members:
            try:
                member.shutdown()
                stopped += 1
            except (OSError, ServiceError):
                pass
        return {"stopping": True, "members": stopped}


def serve_forever(service: SimulationService,
                  server: socketserver.BaseServer,
                  poll_interval: float = 0.1) -> None:
    """Run the accept loop until :meth:`request_shutdown` (or a signal
    handler calling ``server.shutdown()``) stops it, then drain."""
    try:
        server.serve_forever(poll_interval=poll_interval)
    finally:
        server.server_close()
        service.close()
        if isinstance(server, ReproUnixServer):
            try:
                os.unlink(server.server_address)  # type: ignore[arg-type]
            except OSError:
                pass


def main_serve(store: Union[str, Path], port: Optional[int] = None,
               socket_path: Union[str, Path, None] = None,
               jobs: Optional[int] = None,
               ready_file: Union[str, Path, None] = None,
               job_retries: Optional[int] = None,
               job_timeout: Optional[float] = None,
               max_queue: Optional[int] = None,
               faults: Optional[str] = None,
               kernel: Optional[str] = None,
               shards: Optional[int] = None,
               sharding: Optional[str] = None,
               pool: Optional[str] = None,
               hierarchy: Optional[str] = None,
               fleet: Optional[bool] = None) -> int:
    """Entry point behind ``python -m repro serve``.

    Binds, announces the address on stdout (and in ``ready_file`` when
    given — the way scripts using an ephemeral ``--port 0`` learn where
    the daemon landed), installs SIGTERM/SIGINT handlers for graceful
    shutdown, and serves until stopped.
    """
    import signal

    if faults is not None:
        from . import faults as faults_module
        # Install in-process *and* export, so any engine worker process
        # this daemon's jobs spawn inherits the same schedule.
        faults_module.install(faults)
        os.environ[faults_module.REPRO_FAULTS_ENV] = faults
        print(f"repro.service: fault injection armed: {faults}",
              flush=True, file=sys.stderr)

    service = SimulationService(store, jobs=jobs, job_retries=job_retries,
                                job_timeout=job_timeout,
                                max_queue=max_queue, kernel=kernel,
                                shards=shards, sharding=sharding,
                                pool=pool, hierarchy=hierarchy,
                                fleet=fleet)
    server, address = create_server(service, port=port,
                                    socket_path=socket_path)
    print(f"repro.service: listening on {address} "
          f"(store {service.store.root}, {service.num_workers} "
          f"{service.pool_kind} worker"
          f"{'s' if service.num_workers != 1 else ''}"
          f"{', fleet member' if service.fleet else ''})", flush=True)
    if service.hierarchy_spec is not None:
        print(f"repro.service: hierarchy override "
              f"{service.hierarchy_name!r} "
              f"({service.hierarchy_spec.depth}-level)", flush=True)
    if ready_file is not None:
        ready = Path(ready_file)
        ready.parent.mkdir(parents=True, exist_ok=True)
        tmp = ready.with_name(ready.name + ".tmp")
        tmp.write_text(address + "\n", encoding="utf-8")
        os.replace(tmp, ready)

    def _stop(signum: int, frame: Any) -> None:
        del frame
        print(f"repro.service: signal {signum}, shutting down", flush=True,
              file=sys.stderr)
        server.request_shutdown()  # type: ignore[attr-defined]

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _stop)
    try:
        serve_forever(service, server)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0
