"""Synthetic workload (trace) generators for every evaluated application."""

from .base import ADDRESS_SPACE_STRIDE, Workload, WorkloadProfile, make_access
from .generators import (
    PhasedWorkload,
    PointerChaseWorkload,
    RandomAccessWorkload,
    StencilWorkload,
    StreamingWorkload,
    ZipfWorkload,
)
from .graph import GraphWorkload, make_gapbs_workload
from .mixes import (
    MIXES,
    MixSpec,
    generate_mix_buffers,
    generate_mix_traces,
    get_mix,
)
from .suite import (
    APPLICATIONS,
    ApplicationSpec,
    HIGHLIGHTED_APPLICATIONS,
    SUITES,
    applications_in_suite,
    build_workload,
    get_application,
    high_benefit_applications,
)

__all__ = [
    "ADDRESS_SPACE_STRIDE",
    "APPLICATIONS",
    "ApplicationSpec",
    "GraphWorkload",
    "HIGHLIGHTED_APPLICATIONS",
    "MIXES",
    "MixSpec",
    "PhasedWorkload",
    "PointerChaseWorkload",
    "RandomAccessWorkload",
    "StencilWorkload",
    "StreamingWorkload",
    "SUITES",
    "Workload",
    "WorkloadProfile",
    "ZipfWorkload",
    "applications_in_suite",
    "build_workload",
    "generate_mix_buffers",
    "generate_mix_traces",
    "get_application",
    "get_mix",
    "high_benefit_applications",
    "make_access",
    "make_gapbs_workload",
]
