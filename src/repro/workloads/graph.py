"""GAPBS-style graph-analytics trace generators.

The paper's graph workloads (GAPBS pr, bfs, bc, cc on the Twitter graph and tc
on a synthetic 2^25-node graph) are the applications that benefit most from
level prediction: their vertex-property gathers miss L2 almost always and hit
the LLC only for the most popular vertices, so the sequential level-by-level
lookup wastes latency on nearly every load (Section II, Figure 2(b)).

The Twitter graph itself is several gigabytes and is not available offline, so
these generators walk an *implicit* power-law graph: vertex degrees and
neighbour identities are drawn from a skewed distribution seeded by the vertex
id, which reproduces the two properties that matter to the memory system —

* the CSR offset and edge arrays are read sequentially (prefetchable), and
* the per-neighbour property gathers are scattered over a property array much
  larger than the LLC, with a hot set of popular vertices that gives the LLC
  (but not the private L2) a moderate hit rate.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from ..memory.block import MemoryAccess
from .base import Workload, WorkloadProfile, make_access

#: Region spacing between the offset / edge / property arrays of one graph.
_REGION_STRIDE = 1 << 30


class GraphWorkload(Workload):
    """Implicit power-law graph traversal (PageRank-style gathers).

    Args:
        num_vertices: Number of vertices; the property array is
            ``num_vertices * property_bytes`` and should exceed the LLC.
        average_degree: Mean out-degree (edges per vertex processed).
        skew: Power-law skew of neighbour popularity; higher values mean a
            smaller hot set and therefore a better LLC hit rate.
        vertex_order: ``sequential`` for PageRank-style full sweeps,
            ``random`` for frontier-driven algorithms (BFS/BC).
        property_bytes: Bytes per vertex property entry.
        intersection: When True, each edge also triggers a scan of the
            neighbour's adjacency list (triangle counting).
        store_fraction: Fraction of property accesses that are stores
            (rank updates).
    """

    def __init__(self, name: str, profile: Optional[WorkloadProfile] = None,
                 num_vertices: int = 1 << 20, average_degree: int = 8,
                 skew: float = 2.0, vertex_order: str = "sequential",
                 property_bytes: int = 8, intersection: bool = False,
                 store_fraction: float = 0.15,
                 non_memory_instructions: int = 4) -> None:
        super().__init__(name, profile)
        if vertex_order not in ("sequential", "random"):
            raise ValueError("vertex_order must be 'sequential' or 'random'")
        self.num_vertices = num_vertices
        self.average_degree = max(1, average_degree)
        self.skew = skew
        self.vertex_order = vertex_order
        self.property_bytes = property_bytes
        self.intersection = intersection
        self.store_fraction = store_fraction
        self.non_memory_instructions = non_memory_instructions

    # ------------------------------------------------------------------
    # Implicit graph structure
    # ------------------------------------------------------------------
    def _degree_of(self, vertex: int, rng: random.Random) -> int:
        """Power-law-ish degree: a few hubs, many low-degree vertices."""
        draw = rng.random()
        if draw < 0.02:
            return self.average_degree * 8
        if draw < 0.2:
            return self.average_degree * 2
        return max(1, int(self.average_degree * rng.random()))

    def _neighbour_of(self, rng: random.Random) -> int:
        """Draw a neighbour id with power-law popularity (low ids are hot)."""
        u = rng.random()
        vertex = int(self.num_vertices * (u ** self.skew))
        return min(vertex, self.num_vertices - 1)

    # ------------------------------------------------------------------
    # Address layout
    # ------------------------------------------------------------------
    def _offset_address(self, base: int, vertex: int) -> int:
        return base + vertex * 8

    def _edge_address(self, base: int, edge_index: int) -> int:
        return base + _REGION_STRIDE + edge_index * 4

    def _property_address(self, base: int, vertex: int) -> int:
        return base + 2 * _REGION_STRIDE + vertex * self.property_bytes

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------
    def _accesses(self, rng: random.Random, base_address: int,
                  thread_id: int) -> Iterator[MemoryAccess]:
        edge_cursor = 0
        vertex = 0
        while True:
            if self.vertex_order == "sequential":
                vertex = (vertex + 1) % self.num_vertices
            else:
                vertex = rng.randrange(self.num_vertices)

            # Read the CSR offset entry for this vertex (sequential-ish).
            yield make_access(
                self._offset_address(base_address, vertex), pc=0x6000, rng=rng,
                non_memory_instructions=self.non_memory_instructions,
                thread_id=thread_id)

            degree = self._degree_of(vertex, rng)
            for _ in range(degree):
                # Stream through the edge array.
                yield make_access(
                    self._edge_address(base_address, edge_cursor), pc=0x6008,
                    rng=rng,
                    non_memory_instructions=self.non_memory_instructions,
                    thread_id=thread_id)
                edge_cursor += 1

                # Gather the neighbour's property: the address depends on the
                # neighbour id just loaded from the edge array, so this load
                # is serialised behind it (pointer-dependent gather).
                neighbour = self._neighbour_of(rng)
                yield make_access(
                    self._property_address(base_address, neighbour),
                    pc=0x6010, rng=rng,
                    store_fraction=self.store_fraction,
                    dependent=True,
                    non_memory_instructions=self.non_memory_instructions,
                    thread_id=thread_id)

                if self.intersection:
                    # Triangle counting: scan a prefix of the neighbour's own
                    # adjacency list (another scattered region).
                    scan = min(4, self.average_degree)
                    for j in range(scan):
                        yield make_access(
                            self._edge_address(
                                base_address,
                                neighbour * self.average_degree + j),
                            pc=0x6018, rng=rng, dependent=j == 0,
                            non_memory_instructions=2,
                            thread_id=thread_id)


def make_gapbs_workload(kernel: str, profile: Optional[WorkloadProfile] = None,
                        num_vertices: int = 1 << 20) -> GraphWorkload:
    """Create the GAPBS kernel variants the paper evaluates.

    ``pr`` and ``cc`` sweep vertices sequentially, ``bfs`` and ``bc`` visit
    them in frontier (random) order, and ``tc`` adds adjacency-list
    intersection on a smaller synthetic graph (matching the paper's use of a
    synthetic graph for tc).
    """
    kernel = kernel.lower()
    if kernel in ("pr", "cc"):
        return GraphWorkload(f"gapbs.{kernel}", profile,
                             num_vertices=num_vertices, vertex_order="sequential",
                             skew=2.0, store_fraction=0.2)
    if kernel in ("bfs", "bc"):
        return GraphWorkload(f"gapbs.{kernel}", profile,
                             num_vertices=num_vertices, vertex_order="random",
                             skew=1.6, store_fraction=0.1)
    if kernel == "tc":
        return GraphWorkload("gapbs.tc", profile,
                             num_vertices=num_vertices // 2,
                             vertex_order="sequential", skew=1.2,
                             intersection=True, store_fraction=0.0)
    raise ValueError(f"unknown GAPBS kernel {kernel!r}")
