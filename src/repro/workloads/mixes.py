"""Multi-program and multi-threaded workload mixes (Table II).

The paper's multi-core evaluation runs five four-application mixes plus
GAPBS PageRank with two and four threads:

=====  ==========================================================
mix1   GAPBS.bfs, SPEC.619.lbm, NAS.lu, bmt
mix2   SPEC.654.roms, NAS.mg, SPEC.649.fotonik3d, SPEC.602.gcc
mix3   SPEC.620.omnetpp, GAPBS.pr, SPEC.627.cam, NAS.cg
mix4   SPEC.627.cam, NAS.cg, SPEC.621.wrf, NAS.bt
mix5   GAPBS.bfs, SPEC.619.lbm, SPEC.621.wrf, NAS.bt
MT1    GAPBS.pr with 2 threads
MT2    GAPBS.pr with 4 threads
=====  ==========================================================

Multi-program mixes place each application in a disjoint address region (one
per core); multi-threaded runs share a single graph, so their traces use the
same base address and therefore contend for (and share) the same blocks in the
LLC, which is what degrades prediction accuracy in Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..memory.block import MemoryAccess
from ..trace import TraceBuffer
from .base import ADDRESS_SPACE_STRIDE
from .suite import build_workload


@dataclass(frozen=True)
class MixSpec:
    """One multi-core workload: either a program mix or a threaded kernel."""

    name: str
    applications: tuple
    multithreaded: bool = False

    @property
    def num_cores(self) -> int:
        return len(self.applications)


#: Table II of the paper.
MIXES: Dict[str, MixSpec] = {
    "mix1": MixSpec("mix1", ("gapbs.bfs", "619.lbm", "nas.lu", "bmt")),
    "mix2": MixSpec("mix2", ("654.roms", "nas.mg", "649.foton", "602.gcc")),
    "mix3": MixSpec("mix3", ("620.omnet", "gapbs.pr", "627.cam", "nas.cg")),
    "mix4": MixSpec("mix4", ("627.cam", "nas.cg", "621.wrf", "nas.bt")),
    "mix5": MixSpec("mix5", ("gapbs.bfs", "619.lbm", "621.wrf", "nas.bt")),
    "MT1": MixSpec("MT1", ("gapbs.pr", "gapbs.pr"), multithreaded=True),
    "MT2": MixSpec("MT2", ("gapbs.pr",) * 4, multithreaded=True),
}


def get_mix(name: str) -> MixSpec:
    try:
        return MIXES[name]
    except KeyError as exc:
        raise ValueError(f"unknown mix {name!r}; known: {sorted(MIXES)}") from exc


def mix_core_plan(mix: MixSpec, seed: int = 0
                  ) -> List[Tuple[int, str, int, int]]:
    """Per-core generation parameters: (core, app_name, base, core_seed).

    This is the single definition of the mix placement/seeding policy —
    every mix-trace producer (the legacy and columnar generators below and
    the engine's cached :func:`repro.sim.engine.mix_traces`) iterates this
    plan, so their access streams can never diverge.  Multi-program mixes
    place each application in a disjoint address region (one per core);
    multi-threaded runs share a single region (and therefore data) across
    threads, with each thread visiting the shared structure in a different
    order (different seeds), which is how a parallel PageRank partitions
    work.
    """
    plan = []
    for core, app_name in enumerate(mix.applications):
        if mix.multithreaded:
            base = 0
            core_seed = seed + core + 1
        else:
            base = core * ADDRESS_SPACE_STRIDE
            core_seed = seed
        plan.append((core, app_name, base, core_seed))
    return plan


def generate_mix_traces(name: str, accesses_per_core: int,
                        seed: int = 0) -> List[List[MemoryAccess]]:
    """Generate one trace per core for a Table II mix (see
    :func:`mix_core_plan` for the placement/seeding policy)."""
    traces: List[List[MemoryAccess]] = []
    for core, app_name, base, core_seed in mix_core_plan(get_mix(name), seed):
        workload = build_workload(app_name)
        traces.append(workload.generate(accesses_per_core, seed=core_seed,
                                        base_address=base, thread_id=core))
    return traces


def generate_mix_buffers(name: str, accesses_per_core: int,
                         seed: int = 0) -> List[TraceBuffer]:
    """Columnar variant of :func:`generate_mix_traces` (same access streams).

    The simulation engine serves these through its trace cache
    (:func:`repro.sim.engine.mix_traces`); this helper exists for direct
    callers that want the buffers without a cache.
    """
    buffers: List[TraceBuffer] = []
    for core, app_name, base, core_seed in mix_core_plan(get_mix(name), seed):
        workload = build_workload(app_name)
        buffers.append(workload.generate_buffer(
            accesses_per_core, seed=core_seed, base_address=base,
            thread_id=core))
    return buffers
