"""Application registry: the benchmark suites evaluated in the paper.

Every application the paper reports (SPEC CPU 2017, GAPBS, NAS, and the
hpcg / gups / stream / bmt / spmv kernels) is registered here with a factory
producing its synthetic trace generator and with the paper's expected-benefit
classification from Figure 1 (``high`` = green box, ``modest`` = red box,
``low`` = outside both).

The per-application parameters (footprints, reuse, dependence) are chosen so
that each application reproduces its published cache-level filtering
signature; DESIGN.md documents this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .base import Workload, WorkloadProfile
from .generators import (
    PhasedWorkload,
    PointerChaseWorkload,
    RandomAccessWorkload,
    StencilWorkload,
    StreamingWorkload,
    ZipfWorkload,
)
from .graph import make_gapbs_workload

KiB = 1024
MiB = 1024 * 1024


@dataclass(frozen=True)
class ApplicationSpec:
    """Registry entry: how to build one application's trace generator."""

    name: str
    suite: str
    expected_benefit: str
    description: str
    factory: Callable[["ApplicationSpec"], Workload]

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(suite=self.suite,
                               expected_benefit=self.expected_benefit,
                               description=self.description)

    def build(self) -> Workload:
        return self.factory(self)


def _streaming(array_bytes: int, streams: int = 3, stores: float = 0.3,
               non_mem: int = 4, stride: int = 64,
               irregularity: float = 0.1) -> Callable[[ApplicationSpec], Workload]:
    def factory(spec: ApplicationSpec) -> Workload:
        return StreamingWorkload(spec.name, spec.profile(),
                                 array_bytes=array_bytes, num_streams=streams,
                                 store_fraction=stores, stride_bytes=stride,
                                 non_memory_instructions=non_mem,
                                 irregularity=irregularity)
    return factory


def _random(table_bytes: int, stores: float = 0.5,
            non_mem: int = 2) -> Callable[[ApplicationSpec], Workload]:
    def factory(spec: ApplicationSpec) -> Workload:
        return RandomAccessWorkload(spec.name, spec.profile(),
                                    table_bytes=table_bytes,
                                    store_fraction=stores,
                                    non_memory_instructions=non_mem)
    return factory


def _pointer(footprint: int, hot_fraction: float = 0.1,
             hot_probability: float = 0.5, chase: int = 32,
             non_mem: int = 6) -> Callable[[ApplicationSpec], Workload]:
    def factory(spec: ApplicationSpec) -> Workload:
        return PointerChaseWorkload(spec.name, spec.profile(),
                                    footprint_bytes=footprint,
                                    hot_fraction=hot_fraction,
                                    hot_probability=hot_probability,
                                    chase_length=chase,
                                    non_memory_instructions=non_mem)
    return factory


def _stencil(grid: int, plane: int, reuse: float, stores: float = 0.2,
             non_mem: int = 12, gather: float = 0.04,
             fields: int = 4) -> Callable[[ApplicationSpec], Workload]:
    def factory(spec: ApplicationSpec) -> Workload:
        return StencilWorkload(spec.name, spec.profile(), grid_bytes=grid,
                               plane_bytes=plane, reuse_probability=reuse,
                               store_fraction=stores,
                               non_memory_instructions=non_mem,
                               gather_fraction=gather,
                               accesses_per_element=fields)
    return factory


def _zipf(footprint: int, alpha: float = 0.8, dependent: float = 0.2,
          stores: float = 0.2, non_mem: int = 8, run: int = 2,
          fields: int = 2) -> Callable[[ApplicationSpec], Workload]:
    def factory(spec: ApplicationSpec) -> Workload:
        return ZipfWorkload(spec.name, spec.profile(),
                            footprint_bytes=footprint, zipf_alpha=alpha,
                            dependent_fraction=dependent,
                            store_fraction=stores,
                            non_memory_instructions=non_mem,
                            spatial_run_length=run,
                            accesses_per_block=fields)
    return factory


def _gcc_phased() -> Callable[[ApplicationSpec], Workload]:
    def factory(spec: ApplicationSpec) -> Workload:
        friendly = ZipfWorkload("gcc.friendly", spec.profile(),
                                footprint_bytes=384 * KiB, zipf_alpha=1.2,
                                dependent_fraction=0.1, spatial_run_length=3,
                                accesses_per_block=3)
        hostile = ZipfWorkload("gcc.hostile", spec.profile(),
                               footprint_bytes=1536 * KiB, zipf_alpha=0.9,
                               dependent_fraction=0.2, spatial_run_length=1,
                               accesses_per_block=3)
        return PhasedWorkload(spec.name, [friendly, hostile],
                              phase_length=15_000, profile=spec.profile())
    return factory


def _gapbs(kernel: str) -> Callable[[ApplicationSpec], Workload]:
    def factory(spec: ApplicationSpec) -> Workload:
        return make_gapbs_workload(kernel, spec.profile())
    return factory


def _spec(name: str, benefit: str, description: str,
          factory: Callable[[ApplicationSpec], Workload]) -> ApplicationSpec:
    return ApplicationSpec(name=name, suite="spec17",
                           expected_benefit=benefit,
                           description=description, factory=factory)


def _nas(name: str, benefit: str, description: str,
         factory: Callable[[ApplicationSpec], Workload]) -> ApplicationSpec:
    return ApplicationSpec(name=name, suite="nas", expected_benefit=benefit,
                           description=description, factory=factory)


def _other(name: str, benefit: str, description: str,
           factory: Callable[[ApplicationSpec], Workload]) -> ApplicationSpec:
    return ApplicationSpec(name=name, suite="other", expected_benefit=benefit,
                           description=description, factory=factory)


def _gapbs_spec(kernel: str, benefit: str, description: str) -> ApplicationSpec:
    return ApplicationSpec(name=f"gapbs.{kernel}", suite="gapbs",
                           expected_benefit=benefit, description=description,
                           factory=_gapbs(kernel))


_SPECS: List[ApplicationSpec] = [
    # ---------------- SPEC CPU 2017 ----------------
    _spec("602.gcc", "modest", "phase-changing code/data mix",
          _gcc_phased()),
    _spec("605.mcf", "high", "pointer-heavy network simplex",
          _pointer(16 * MiB, hot_fraction=0.08, hot_probability=0.55,
                   chase=8, non_mem=10)),
    _spec("619.lbm", "high", "lattice-Boltzmann streaming sweeps",
          _streaming(16 * MiB, streams=3, stores=0.4, non_mem=7, stride=192,
                     irregularity=0.15)),
    _spec("620.omnet", "high", "discrete-event pointer chasing",
          _pointer(6 * MiB, hot_fraction=0.25, hot_probability=0.45,
                   chase=24, non_mem=6)),
    _spec("623.xalan", "modest", "XML transform, cache-resident hot set",
          _zipf(640 * KiB, alpha=1.3, dependent=0.2, run=2)),
    _spec("627.cam", "modest", "atmosphere model stencil",
          _stencil(384 * KiB, 64 * KiB, reuse=0.6)),
    _spec("649.foton", "high", "electromagnetics stencil, streaming planes",
          _stencil(12 * MiB, 512 * KiB, reuse=0.3, non_mem=6, fields=1)),
    _spec("654.roms", "high", "ocean model, multi-array streaming",
          _streaming(12 * MiB, streams=4, stores=0.3, non_mem=5, stride=128,
                     irregularity=0.2)),
    _spec("603.bwaves", "modest", "blast-wave stencil, cache friendly",
          _stencil(320 * KiB, 64 * KiB, reuse=0.7)),
    _spec("607.cactus", "modest", "numerical relativity stencil",
          _stencil(448 * KiB, 96 * KiB, reuse=0.55)),
    _spec("621.wrf", "modest", "weather model stencil",
          _stencil(384 * KiB, 64 * KiB, reuse=0.6)),
    _spec("625.x264", "low", "video encode, small hot set",
          _zipf(512 * KiB, alpha=1.2, dependent=0.05, run=4)),
    _spec("631.deepsjeng", "low", "tree search, resident tables",
          _zipf(512 * KiB, alpha=1.1, dependent=0.3, run=1)),
    _spec("638.imagick", "low", "image processing streams, small frames",
          _streaming(2 * MiB, streams=2, stores=0.3, non_mem=8)),
    _spec("641.leela", "low", "MCTS, tiny working set",
          _zipf(256 * KiB, alpha=1.2, dependent=0.2, run=1)),
    _spec("644.nab", "low", "molecular dynamics, resident data",
          _zipf(1 * MiB, alpha=1.0, dependent=0.1, run=2)),
    _spec("648.exchange2", "low", "integer puzzles, negligible misses",
          _zipf(128 * KiB, alpha=1.3, dependent=0.05, run=2)),
    _spec("657.xz", "modest", "compression, mixed reuse",
          _zipf(4 * MiB, alpha=0.9, dependent=0.2, run=2)),
    # ---------------- GAPBS ----------------
    _gapbs_spec("bc", "high", "betweenness centrality on power-law graph"),
    _gapbs_spec("bfs", "high", "breadth-first search, frontier gathers"),
    _gapbs_spec("cc", "high", "connected components label propagation"),
    _gapbs_spec("pr", "high", "PageRank vertex-property gathers"),
    _gapbs_spec("tc", "high", "triangle counting with list intersection"),
    # ---------------- NAS ----------------
    _nas("nas.bt", "modest", "block tri-diagonal stencil",
         _stencil(448 * KiB, 96 * KiB, reuse=0.55)),
    _nas("nas.cg", "modest", "conjugate gradient sparse gathers",
         _zipf(1280 * KiB, alpha=1.1, dependent=0.35, run=1, non_mem=5)),
    _nas("nas.ft", "modest", "FFT transpose, strided but resident",
         _zipf(768 * KiB, alpha=1.2, dependent=0.1, run=2)),
    _nas("nas.is", "high", "integer sort histogram scatter",
         _random(16 * MiB, stores=0.5, non_mem=3)),
    _nas("nas.lu", "modest", "LU solver stencil",
         _stencil(448 * KiB, 96 * KiB, reuse=0.5)),
    _nas("nas.mg", "modest", "multigrid V-cycle stencil",
         _stencil(512 * KiB, 96 * KiB, reuse=0.5)),
    _nas("nas.ua", "modest", "unstructured adaptive mesh, LLC-ineffective",
         _stencil(2560 * KiB, 96 * KiB, reuse=0.5, non_mem=10, fields=3)),
    # ---------------- Other kernels ----------------
    _other("bmt", "modest", "blocked matrix transpose kernel",
           _zipf(768 * KiB, alpha=1.2, dependent=0.05, run=2, non_mem=4)),
    _other("hpcg", "modest", "HPCG sparse stencil, strong filtering",
           _stencil(384 * KiB, 64 * KiB, reuse=0.7, non_mem=14)),
    _other("gups", "high", "random table updates (GUPS)",
           _random(64 * MiB, stores=0.5, non_mem=2)),
    _other("spmv", "modest", "sparse matrix-vector gathers",
           _zipf(2 * MiB, alpha=1.0, dependent=0.4, run=1, non_mem=4)),
    _other("stream", "modest", "STREAM triad, prefetch-friendly",
           _streaming(16 * MiB, streams=3, stores=0.33, non_mem=2, stride=128,
                      irregularity=0.05)),
]

#: All registered applications, keyed by name.
APPLICATIONS: Dict[str, ApplicationSpec] = {spec.name: spec for spec in _SPECS}

#: The 21 applications highlighted in the paper's single-core figures.
HIGHLIGHTED_APPLICATIONS: List[str] = [
    "602.gcc", "605.mcf", "619.lbm", "620.omnet", "623.xalan", "627.cam",
    "649.foton", "654.roms", "bmt", "gapbs.bc", "gapbs.bfs", "gapbs.cc",
    "gapbs.pr", "gapbs.tc", "gups", "nas.cg", "nas.ft", "nas.is", "nas.mg",
    "nas.ua", "stream",
]

#: Suite membership used for suite-level averages (Figure 5).
SUITES: Dict[str, List[str]] = {
    "spec17": [name for name, spec in APPLICATIONS.items()
               if spec.suite == "spec17"],
    "gapbs": [name for name, spec in APPLICATIONS.items()
              if spec.suite == "gapbs"],
    "nas": [name for name, spec in APPLICATIONS.items()
            if spec.suite == "nas"],
    "other": [name for name, spec in APPLICATIONS.items()
              if spec.suite == "other"],
}


def get_application(name: str) -> ApplicationSpec:
    """Look up an application spec by name."""
    try:
        return APPLICATIONS[name]
    except KeyError as exc:
        raise ValueError(f"unknown application {name!r}; known: "
                         f"{sorted(APPLICATIONS)}") from exc


def build_workload(name: str) -> Workload:
    """Instantiate the trace generator for an application."""
    return get_application(name).build()


def applications_in_suite(suite: str) -> List[str]:
    """Names of the applications belonging to one suite."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; known: {sorted(SUITES)}")
    return list(SUITES[suite])


def high_benefit_applications() -> List[str]:
    """Applications inside the green box of Figure 1."""
    return [name for name, spec in APPLICATIONS.items()
            if spec.expected_benefit == "high"]
