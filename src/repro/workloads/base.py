"""Workload (trace generator) abstractions.

The paper evaluates SPEC CPU 2017, the GAPBS graph suite, NAS parallel
benchmarks and several kernels (gups, stream, hpcg, bmt, spmv) on real
hardware and in gem5.  Those binaries and inputs are not available here, so
each application is represented by a synthetic trace generator that reproduces
its *memory-hierarchy signature*: working-set sizes relative to L2/L3,
spatial locality and prefetchability, pointer-dependence (which limits
memory-level parallelism), store ratio, and compute density (non-memory
instructions per access).

These are exactly the properties that determine where each application lands
in Figure 1 (the L1/L2 vs. L2/L3 miss-filtering plane) and therefore how much
level prediction helps it — which is what the reproduction must preserve.
"""

from __future__ import annotations

import random
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..memory.block import AccessType, DEFAULT_BLOCK_SIZE, MemoryAccess
from ..trace import TraceBuffer

#: Spacing between the address spaces of co-running workloads (multi-core).
ADDRESS_SPACE_STRIDE = 1 << 36


@dataclass
class WorkloadProfile:
    """Qualitative profile used by documentation and the Figure-1 analysis.

    Attributes:
        suite: Which benchmark suite the application belongs to
            (``spec17``, ``gapbs``, ``nas``, ``other``).
        expected_benefit: The paper's classification: ``high`` for
            applications inside the green box of Figure 1, ``modest`` for the
            red box, ``low`` otherwise.
        description: One-line description of the reproduced behaviour.
    """

    suite: str
    expected_benefit: str
    description: str


class Workload(ABC):
    """A synthetic application trace generator.

    Subclasses implement :meth:`_accesses`, an iterator of
    :class:`MemoryAccess` records; the public :meth:`generate` materialises a
    bounded trace with a deterministic seed so every experiment is repeatable.
    """

    def __init__(self, name: str, profile: Optional[WorkloadProfile] = None,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        self.name = name
        self.profile = profile or WorkloadProfile(
            suite="other", expected_benefit="modest", description="")
        self.block_size = block_size

    @abstractmethod
    def _accesses(self, rng: random.Random, base_address: int,
                  thread_id: int) -> Iterator[MemoryAccess]:
        """Yield an unbounded stream of accesses."""

    def _trace_rng(self, seed: int) -> random.Random:
        """The deterministic RNG both trace materialisations derive from.

        crc32 (not hash()) keeps the per-workload seed stable across
        interpreter runs and worker processes: str hashing is randomized
        per process, which would make traces — and therefore every
        simulation result — irreproducible outside a single run and break
        the engine's serial == parallel guarantee under spawn.
        """
        name_seed = zlib.crc32(self.name.encode("utf-8"))
        return random.Random((seed << 16) ^ name_seed)

    def generate(self, num_accesses: int, seed: int = 0,
                 base_address: int = 0, thread_id: int = 0) -> List[MemoryAccess]:
        """Generate a bounded, reproducible trace as a list of records.

        This is the legacy representation; the simulation pipeline runs on
        :meth:`generate_buffer`, whose columns are field-for-field identical
        to this list for the same arguments.

        Args:
            num_accesses: Number of memory references to produce.
            seed: RNG seed; the same seed always yields the same trace.
            base_address: Offset added to every address, used to place
                co-running workloads in disjoint address regions.
            thread_id: Thread identifier stamped on every access.
        """
        if num_accesses <= 0:
            raise ValueError("num_accesses must be positive")
        rng = self._trace_rng(seed)
        trace: List[MemoryAccess] = []
        stream = self._accesses(rng, base_address, thread_id)
        for _ in range(num_accesses):
            trace.append(next(stream))
        return trace

    def generate_buffer(self, num_accesses: int, seed: int = 0,
                        base_address: int = 0,
                        thread_id: int = 0) -> TraceBuffer:
        """Generate the same trace as :meth:`generate`, packed columnar.

        The buffer consumes the identical generator stream (same RNG seed,
        same draw order), so its address/pc/type columns are bit-identical
        to the legacy list — only the representation changes.
        """
        if num_accesses <= 0:
            raise ValueError("num_accesses must be positive")
        rng = self._trace_rng(seed)
        stream = self._accesses(rng, base_address, thread_id)
        return TraceBuffer.from_stream(stream, num_accesses)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


def make_access(address: int, *, pc: int, rng: random.Random,
                store_fraction: float = 0.0,
                dependent: bool = False,
                non_memory_instructions: int = 3,
                thread_id: int = 0) -> MemoryAccess:
    """Helper used by generators to build one access record."""
    access_type = AccessType.LOAD
    if store_fraction > 0.0 and rng.random() < store_fraction:
        access_type = AccessType.STORE
    return MemoryAccess(
        address=address,
        access_type=access_type,
        pc=pc,
        depends_on_previous=dependent,
        non_memory_instructions=non_memory_instructions,
        thread_id=thread_id,
    )
