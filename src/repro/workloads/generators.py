"""Parametric trace generators for the application classes in the paper.

Each generator models one *memory behaviour family*; the application registry
(``repro.workloads.suite``) instantiates them with per-application parameters
chosen to reproduce the cache-level filtering signature reported in Figures 1
and 2 of the paper:

* :class:`StreamingWorkload` — unit-stride sweeps over arrays much larger than
  the LLC (stream, lbm, roms): highly prefetchable, but demand misses at every
  level because nothing is reused before eviction.
* :class:`RandomAccessWorkload` — uniform random updates over a huge table
  (gups): defeats caches and prefetchers alike; almost every access goes to
  memory.
* :class:`PointerChaseWorkload` — dependent walks through linked structures
  (605.mcf, 620.omnetpp, 623.xalancbmk): serialised loads and working sets
  between the L2 and several times the LLC.
* :class:`StencilWorkload` — multi-stream sweeps with neighbour reuse (hpcg,
  nas.mg/ua/bt/lu, 627.cam4, 649.fotonik3d, 654.roms, bmt): good L2/L3
  filtering for the cache-resident variants, streaming behaviour otherwise.
* :class:`ZipfWorkload` — skewed reuse over a configurable footprint
  (602.gcc-like code/data mixes, nas.cg/ft/is sized appropriately).
* :class:`PhasedWorkload` — alternates between a cache-friendly and a
  cache-hostile phase to reproduce 602.gcc's time-varying behaviour
  (Figure 2(f)).
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Sequence

from ..memory.block import MemoryAccess
from .base import Workload, WorkloadProfile, make_access


class StreamingWorkload(Workload):
    """Streaming sweeps over one or more large arrays.

    ``stride_bytes`` sets the element stride (lattice codes like lbm step by
    a whole cell structure, i.e. several cache blocks); ``irregularity`` adds
    occasional short jumps, modelling the fraction of the stream hardware
    prefetchers fail to cover in the real applications.
    """

    def __init__(self, name: str, profile: Optional[WorkloadProfile] = None,
                 array_bytes: int = 16 * 1024 * 1024, num_streams: int = 2,
                 stride_bytes: int = 64, store_fraction: float = 0.3,
                 non_memory_instructions: int = 4,
                 irregularity: float = 0.1) -> None:
        super().__init__(name, profile)
        self.array_bytes = array_bytes
        self.num_streams = max(1, num_streams)
        self.stride_bytes = stride_bytes
        self.store_fraction = store_fraction
        self.non_memory_instructions = non_memory_instructions
        self.irregularity = irregularity

    def _accesses(self, rng: random.Random, base_address: int,
                  thread_id: int) -> Iterator[MemoryAccess]:
        positions = [0] * self.num_streams
        bases = [base_address + i * (self.array_bytes + (1 << 22))
                 for i in range(self.num_streams)]
        while True:
            for stream in range(self.num_streams):
                address = bases[stream] + positions[stream]
                step = self.stride_bytes
                if self.irregularity and rng.random() < self.irregularity:
                    # Skip ahead a few blocks: breaks the next-line pattern
                    # the way boundary handling and indirection do in the
                    # real codes.
                    step += rng.randrange(2, 9) * self.block_size
                positions[stream] = (positions[stream] + step) % self.array_bytes
                yield make_access(
                    address, pc=0x1000 + stream * 8, rng=rng,
                    store_fraction=self.store_fraction if stream == 0 else 0.0,
                    non_memory_instructions=self.non_memory_instructions,
                    thread_id=thread_id)


class RandomAccessWorkload(Workload):
    """GUPS-style uniform random accesses over a huge table."""

    def __init__(self, name: str, profile: Optional[WorkloadProfile] = None,
                 table_bytes: int = 64 * 1024 * 1024,
                 store_fraction: float = 0.5,
                 non_memory_instructions: int = 2) -> None:
        super().__init__(name, profile)
        self.table_bytes = table_bytes
        self.store_fraction = store_fraction
        self.non_memory_instructions = non_memory_instructions

    def _accesses(self, rng: random.Random, base_address: int,
                  thread_id: int) -> Iterator[MemoryAccess]:
        num_blocks = self.table_bytes // self.block_size
        while True:
            block = rng.randrange(num_blocks)
            address = base_address + block * self.block_size
            yield make_access(
                address, pc=0x2000, rng=rng,
                store_fraction=self.store_fraction,
                non_memory_instructions=self.non_memory_instructions,
                thread_id=thread_id)


class PointerChaseWorkload(Workload):
    """Dependent pointer chasing through a shuffled linked structure."""

    def __init__(self, name: str, profile: Optional[WorkloadProfile] = None,
                 footprint_bytes: int = 8 * 1024 * 1024,
                 hot_fraction: float = 0.1, hot_probability: float = 0.5,
                 chase_length: int = 64, store_fraction: float = 0.05,
                 non_memory_instructions: int = 6) -> None:
        super().__init__(name, profile)
        self.footprint_bytes = footprint_bytes
        self.hot_fraction = hot_fraction
        self.hot_probability = hot_probability
        self.chase_length = chase_length
        self.store_fraction = store_fraction
        self.non_memory_instructions = non_memory_instructions

    def _accesses(self, rng: random.Random, base_address: int,
                  thread_id: int) -> Iterator[MemoryAccess]:
        num_blocks = self.footprint_bytes // self.block_size
        hot_blocks = max(1, int(num_blocks * self.hot_fraction))
        while True:
            # Start a new chase from a random node, then follow "pointers"
            # (random nodes) for chase_length hops; hops within the hot region
            # model the reused core of the data structure.
            for hop in range(self.chase_length):
                if rng.random() < self.hot_probability:
                    block = rng.randrange(hot_blocks)
                else:
                    block = rng.randrange(num_blocks)
                address = base_address + block * self.block_size
                yield make_access(
                    address, pc=0x3000, rng=rng,
                    store_fraction=self.store_fraction,
                    dependent=hop > 0,
                    non_memory_instructions=self.non_memory_instructions,
                    thread_id=thread_id)


class StencilWorkload(Workload):
    """Multi-stream stencil/SpMV sweeps with neighbour reuse.

    Models grid codes: each point access touches the current plane plus
    neighbouring planes one row/plane behind and ahead, so L2/L3 capture the
    reuse when the plane fits, and behave like streaming otherwise.
    """

    def __init__(self, name: str, profile: Optional[WorkloadProfile] = None,
                 grid_bytes: int = 4 * 1024 * 1024, plane_bytes: int = 128 * 1024,
                 reuse_probability: float = 0.5, store_fraction: float = 0.2,
                 non_memory_instructions: int = 8,
                 gather_fraction: float = 0.1,
                 stride_bytes: int = 128,
                 accesses_per_element: int = 1) -> None:
        super().__init__(name, profile)
        self.grid_bytes = grid_bytes
        self.plane_bytes = plane_bytes
        self.reuse_probability = reuse_probability
        self.store_fraction = store_fraction
        self.non_memory_instructions = non_memory_instructions
        self.gather_fraction = gather_fraction
        # Number of (L1-hitting) accesses to consecutive fields of the same
        # grid point.  Real grid codes read several doubles per point, which
        # dilutes the miss rate per instruction without changing the per-level
        # miss profile.
        self.accesses_per_element = max(1, accesses_per_element)
        # Grid codes touch several fields per point, so the per-point sweep
        # stride is usually larger than one cache block; that keeps part of
        # the demand stream ahead of the simple next-line prefetchers, which
        # is what the measured prefetcher coverage (Figure 3) shows.
        self.stride_bytes = stride_bytes

    def _accesses(self, rng: random.Random, base_address: int,
                  thread_id: int) -> Iterator[MemoryAccess]:
        position = 0
        num_blocks = self.grid_bytes // self.block_size
        while True:
            address = base_address + position
            yield make_access(address, pc=0x4000, rng=rng,
                              store_fraction=self.store_fraction,
                              non_memory_instructions=self.non_memory_instructions,
                              thread_id=thread_id)
            for field in range(1, self.accesses_per_element):
                yield make_access(
                    address + 8 * field, pc=0x4000 + 8 * field, rng=rng,
                    store_fraction=0.0,
                    non_memory_instructions=self.non_memory_instructions,
                    thread_id=thread_id)
            if rng.random() < self.reuse_probability:
                # Neighbour access: one plane behind (already-seen data).
                neighbour = address - self.plane_bytes
                if neighbour >= base_address:
                    yield make_access(
                        neighbour, pc=0x4008, rng=rng, store_fraction=0.0,
                        non_memory_instructions=self.non_memory_instructions,
                        thread_id=thread_id)
            if self.gather_fraction and rng.random() < self.gather_fraction:
                # Indirect coefficient gather: the part of grid codes that
                # prefetchers do not cover.  Unlike pointer chasing, the index
                # is known well ahead of the load, so these gathers overlap
                # with other outstanding misses (not marked dependent).
                gather = base_address + rng.randrange(num_blocks) * self.block_size
                yield make_access(
                    gather, pc=0x4010, rng=rng, store_fraction=0.0,
                    non_memory_instructions=self.non_memory_instructions,
                    thread_id=thread_id)
            position = (position + self.stride_bytes) % self.grid_bytes


class ZipfWorkload(Workload):
    """Skewed (Zipf-like) reuse over a configurable footprint."""

    def __init__(self, name: str, profile: Optional[WorkloadProfile] = None,
                 footprint_bytes: int = 2 * 1024 * 1024, zipf_alpha: float = 0.8,
                 store_fraction: float = 0.2, dependent_fraction: float = 0.2,
                 non_memory_instructions: int = 6,
                 spatial_run_length: int = 2,
                 accesses_per_block: int = 1) -> None:
        super().__init__(name, profile)
        self.footprint_bytes = footprint_bytes
        self.zipf_alpha = zipf_alpha
        self.store_fraction = store_fraction
        self.dependent_fraction = dependent_fraction
        self.non_memory_instructions = non_memory_instructions
        self.spatial_run_length = max(1, spatial_run_length)
        # Intra-block reuse: additional accesses to fields of the same object,
        # which hit L1 and dilute the miss rate per instruction without
        # changing the per-level miss profile.
        self.accesses_per_block = max(1, accesses_per_block)

    def _zipf_block(self, rng: random.Random, num_blocks: int) -> int:
        """Draw a block index with a Zipf-like (power-law) popularity skew.

        The exponent grows with ``zipf_alpha``: low ranks (popular blocks) are
        drawn disproportionately often, and a higher alpha concentrates more
        of the accesses onto a smaller hot set.
        """
        u = rng.random()
        exponent = 1.0 + 2.0 * max(self.zipf_alpha, 0.0)
        rank = int(num_blocks * (u ** exponent))
        return min(rank, num_blocks - 1)

    def _accesses(self, rng: random.Random, base_address: int,
                  thread_id: int) -> Iterator[MemoryAccess]:
        num_blocks = self.footprint_bytes // self.block_size
        # A fixed random permutation decorrelates popularity from address.
        permutation_seed = rng.randrange(1 << 30)
        while True:
            rank = self._zipf_block(rng, num_blocks)
            block = (rank * 2654435761 + permutation_seed) % num_blocks
            dependent = rng.random() < self.dependent_fraction
            for run in range(self.spatial_run_length):
                address = base_address + ((block + run) % num_blocks) \
                    * self.block_size
                yield make_access(
                    address, pc=0x5000 + run * 8, rng=rng,
                    store_fraction=self.store_fraction,
                    dependent=dependent and run == 0,
                    non_memory_instructions=self.non_memory_instructions,
                    thread_id=thread_id)
                for field in range(1, self.accesses_per_block):
                    yield make_access(
                        address + 8 * field, pc=0x5800 + 8 * field, rng=rng,
                        store_fraction=0.0,
                        non_memory_instructions=self.non_memory_instructions,
                        thread_id=thread_id)


class PhasedWorkload(Workload):
    """Alternates between two sub-workloads to model phase behaviour (gcc)."""

    def __init__(self, name: str, phases: Sequence[Workload],
                 phase_length: int = 20_000,
                 profile: Optional[WorkloadProfile] = None) -> None:
        super().__init__(name, profile)
        if not phases:
            raise ValueError("PhasedWorkload needs at least one phase")
        self.phases = list(phases)
        self.phase_length = phase_length

    def _accesses(self, rng: random.Random, base_address: int,
                  thread_id: int) -> Iterator[MemoryAccess]:
        streams = [phase._accesses(random.Random(rng.randrange(1 << 30)),
                                   base_address, thread_id)
                   for phase in self.phases]
        phase_index = 0
        while True:
            stream = streams[phase_index % len(streams)]
            for _ in range(self.phase_length):
                yield next(stream)
            phase_index += 1
