"""LocMap: the in-memory location map and its on-chip metadata cache.

Section III.C of the paper.  The LocMap is a flat table in system-reserved
physical memory holding 2 bits of location metadata (L2, LLC, or MEM) per 64 B
cache block, so one 64 B LocMap block covers 256 data blocks and the memory
overhead is 2/512 = 0.39 %.  The address of the LocMap entry for a block is

    LocMap address = base + (physical address >> 14)

i.e. a one-to-one mapping.  Hot LocMap blocks are cached in a small per-core
**metadata cache** (2 KiB, 2-way in the paper); the level prediction consults
this cache on every L1 miss and the long-latency fetch of a LocMap block from
memory happens off the critical path after a metadata miss.

Update policy (what keeps the predictor cheap, at the cost of staleness):

* demand cache fills update the LocMap,
* dirty evictions update the LocMap,
* prefetch fills update it **only** when the metadata cache hits,
* clean evictions and coherence invalidations never update it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..memory.block import DEFAULT_BLOCK_SIZE, Level

#: Bits of location metadata per data block.
BITS_PER_BLOCK = 2

#: Data blocks whose metadata fits in one 64-byte LocMap block.
BLOCKS_PER_LOCMAP_ENTRY = (DEFAULT_BLOCK_SIZE * 8) // BITS_PER_BLOCK

#: Encoding of levels into the 2-bit metadata field.
_LEVEL_TO_CODE = {Level.L2: 1, Level.L3: 2, Level.MEM: 0}
_CODE_TO_LEVEL = {code: level for level, code in _LEVEL_TO_CODE.items()}
_MEM_CODE = _LEVEL_TO_CODE[Level.MEM]


def locmap_block_address(physical_address: int, base_address: int = 0) -> int:
    """Address of the LocMap block covering ``physical_address``.

    Implements the paper's mapping ``base + (PA >> 14)``: 64 B blocks, 2 bits
    each, 256 block descriptors per LocMap block.
    """
    return base_address + (physical_address >> 14)


@dataclass
class MetadataCacheStats:
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0


class MetadataCache:
    """Small set-associative cache of LocMap blocks.

    Keys are LocMap block addresses; each cached LocMap block covers 256 data
    blocks, which is why even a 2 KiB metadata cache reaches ~95 % hit ratio
    (Section V.A): 32 LocMap blocks cover 32 x 256 x 64 B = 512 KiB of data.
    """

    __slots__ = ("size_bytes", "associativity", "block_size", "num_sets",
                 "_sets", "stats")

    def __init__(self, size_bytes: int = 2048, associativity: int = 2,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if size_bytes < block_size * associativity:
            raise ValueError("metadata cache too small for its associativity")
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.block_size = block_size
        self.num_sets = size_bytes // (block_size * associativity)
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = MetadataCacheStats()

    @property
    def capacity_blocks(self) -> int:
        return self.num_sets * self.associativity

    def _set_for(self, locmap_block: int) -> OrderedDict:
        return self._sets[locmap_block % self.num_sets]

    def lookup(self, locmap_block: int) -> bool:
        """Probe for a LocMap block; True on hit (LRU updated)."""
        entries = self._set_for(locmap_block)
        if locmap_block in entries:
            entries.move_to_end(locmap_block)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def contains(self, locmap_block: int) -> bool:
        """Probe without affecting LRU state or statistics."""
        return locmap_block in self._set_for(locmap_block)

    def fill(self, locmap_block: int) -> None:
        """Install a LocMap block fetched from memory."""
        entries = self._set_for(locmap_block)
        if locmap_block in entries:
            entries.move_to_end(locmap_block)
            return
        if len(entries) >= self.associativity:
            entries.popitem(last=False)
            self.stats.evictions += 1
        entries[locmap_block] = True
        self.stats.fills += 1

    def reset_statistics(self) -> None:
        self.stats.reset()


class LocMap:
    """The flat in-memory location table plus its per-core metadata cache.

    The table itself is modelled as a sparse dictionary from block number to
    level code; entries default to MEM, which is also the paper's initial
    state (nothing is cached before first touch).

    Args:
        metadata_cache_bytes: Capacity of the on-chip metadata cache.
        metadata_associativity: Ways of the metadata cache.
        block_size: Data cache block size.
        base_address: Base physical address of the reserved LocMap region.
    """

    __slots__ = ("block_size", "base_address", "metadata_cache", "_table",
                 "updates_applied", "prefetch_updates_skipped",
                 "locmap_fetches_from_memory")

    def __init__(self, metadata_cache_bytes: int = 2048,
                 metadata_associativity: int = 2,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 base_address: int = 0) -> None:
        self.block_size = block_size
        self.base_address = base_address
        self.metadata_cache = MetadataCache(
            size_bytes=metadata_cache_bytes,
            associativity=metadata_associativity,
            block_size=block_size)
        self._table: Dict[int, int] = {}
        # Statistics on the update policy.
        self.updates_applied = 0
        self.prefetch_updates_skipped = 0
        self.locmap_fetches_from_memory = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def _block_number(self, address: int) -> int:
        return address // self.block_size

    def locmap_block_of(self, address: int) -> int:
        return locmap_block_address(address, self.base_address)

    # ------------------------------------------------------------------
    # Prediction-side access
    # ------------------------------------------------------------------
    def query(self, address: int) -> Optional[Level]:
        """Look up the location of a block through the metadata cache.

        Returns the stored level on a metadata cache hit, or ``None`` on a
        metadata cache miss.  A miss triggers a (long-latency, off the
        critical path) fetch of the LocMap block from memory so subsequent
        queries to the same region hit.  The metadata-cache probe is inlined:
        this runs on every L1 miss of the LP system.
        """
        locmap_block = self.base_address + (address >> 14)
        cache = self.metadata_cache
        entries = cache._sets[locmap_block % cache.num_sets]
        stats = cache.stats
        if locmap_block in entries:
            entries.move_to_end(locmap_block)
            stats.hits += 1
            code = self._table.get(address // self.block_size, _MEM_CODE)
            return _CODE_TO_LEVEL[code]
        stats.misses += 1
        # Metadata miss: fetch the LocMap block through the data hierarchy.
        self.locmap_fetches_from_memory += 1
        cache.fill(locmap_block)
        return None

    def peek(self, address: int) -> Level:
        """Return the stored level without touching the metadata cache."""
        return self._stored_level(address)

    def _stored_level(self, address: int) -> Level:
        code = self._table.get(self._block_number(address), _LEVEL_TO_CODE[Level.MEM])
        return _CODE_TO_LEVEL[code]

    # ------------------------------------------------------------------
    # Update side (driven by cache fill / eviction events)
    # ------------------------------------------------------------------
    def record_fill(self, address: int, level: Level,
                    from_prefetch: bool = False) -> bool:
        """Record that a block now resides at ``level``.

        Demand fills always update the LocMap.  Prefetch fills update it only
        when the metadata cache already holds the covering LocMap block
        (Section III.C), to avoid the off-chip traffic aggressive prefetchers
        would otherwise generate.  Returns True when the update was applied.
        """
        code = _LEVEL_TO_CODE.get(level)
        if code is None:
            raise ValueError(f"LocMap cannot record level {level}")
        locmap_block = self.base_address + (address >> 14)
        cache = self.metadata_cache
        if from_prefetch:
            if locmap_block not in cache._sets[locmap_block % cache.num_sets]:
                self.prefetch_updates_skipped += 1
                return False
            self._table[address // self.block_size] = code
            self.updates_applied += 1
            return True
        self._table[address // self.block_size] = code
        self.updates_applied += 1
        # Demand updates also warm the metadata cache for the region.
        cache.fill(locmap_block)
        return True

    def record_eviction(self, address: int, from_level: Level,
                        dirty: bool) -> bool:
        """Record an eviction.

        Only dirty evictions update the LocMap (clean evictions are ignored,
        Section III.C): a dirty L2 victim moves to the LLC and a dirty LLC
        victim moves to main memory.
        """
        if not dirty:
            return False
        if from_level is Level.L2:
            self._apply(address, Level.L3)
        elif from_level is Level.L3:
            self._apply(address, Level.MEM)
        else:
            return False
        return True

    def _apply(self, address: int, level: Level) -> None:
        self._table[self._block_number(address)] = _LEVEL_TO_CODE[level]
        self.updates_applied += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def storage_bits_on_chip(self) -> int:
        """On-chip storage: just the metadata cache (the table is in DRAM)."""
        return self.metadata_cache.size_bytes * 8

    def memory_overhead_fraction(self) -> float:
        """Fraction of physical memory consumed by the LocMap (0.39 %)."""
        return BITS_PER_BLOCK / (self.block_size * 8)

    def reset_statistics(self) -> None:
        self.metadata_cache.reset_statistics()
        self.updates_applied = 0
        self.prefetch_updates_skipped = 0
        self.locmap_fetches_from_memory = 0
