"""TAGE-style address+history predictors extended to level prediction.

The paper's main comparison points (Section IV.C) are 2 KB and 8 KB variants
of the address+history miss predictor of Sim et al. [29], which is built on
TAGE [28]: a base (tagless) table plus several tagged tables indexed by the
block address hashed with geometrically increasing history lengths.  To turn a
*miss* predictor into a *level* predictor the paper replaces each entry's
counter with **three counters**, one per level (L2, L3, MEM), and applies the
Popular-Levels heuristic to the counters of the providing entry
(Section III.A, "Level Prediction Approach").

Two well-known properties the paper reports are reproduced by construction:

* the 2 KB variant has the same access energy as the proposed LP but much
  lower accuracy (entries are scarce and prefetch-induced history noise
  evicts them quickly);
* the 8 KB variant approaches LP's accuracy but costs far more energy per
  access, erasing the benefit (Figure 10).

Prefetch fills can optionally update the tables ("coordinating the prefetcher
and level predictor", Section III.A); the paper finds this still does not
close the gap because the extra updates crowd the small tables — enabling
``update_on_prefetch`` reproduces that crowding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..energy.model import EnergyParameters
from ..memory.block import Level, PREDICTABLE_LEVELS
from .base import LevelPredictor, Prediction

#: 2-bit level-outcome encoding pushed into the global history register.
_HISTORY_CODES = {Level.L2: 0b01, Level.L3: 0b10, Level.MEM: 0b11}

#: Shared tuple for the no-information fallback (sequential traversal).
_SEQUENTIAL_LEVELS = (Level.L2,)


@dataclass
class TAGEConfig:
    """Geometry of the TAGE level predictor.

    The storage budget is split evenly across the tagged tables plus a base
    table.  Entry cost: tag bits + 3 level counters + a useful bit.
    """

    storage_bytes: int = 2048
    num_tagged_tables: int = 4
    min_history: int = 4
    max_history: int = 64
    tag_bits: int = 10
    counter_bits: int = 3
    useful_bits: int = 1
    confidence_threshold: float = 0.6
    update_on_prefetch: bool = True
    #: When no tagged entry matches, fall back to TAGE's (tagless) base table,
    #: whose three counters behave like a popularity predictor.  Setting this
    #: to False reproduces the stricter reading of the paper's description
    #: ("If an entry is not found in any TAGE table, we follow a level-by-level
    #: traversal"), which performs notably worse on traces with little
    #: block-level temporal reuse; the ablation benchmark covers both.
    base_table_fallback: bool = True

    @property
    def entry_bits(self) -> int:
        return self.tag_bits + 3 * self.counter_bits + self.useful_bits

    @property
    def entries_per_table(self) -> int:
        total_tables = self.num_tagged_tables + 1
        table_bytes = self.storage_bytes / total_tables
        entries = int((table_bytes * 8) // self.entry_bits)
        return max(entries, 16)

    def history_lengths(self) -> List[int]:
        """Geometric history-length series (TAGE's defining feature)."""
        lengths = []
        if self.num_tagged_tables == 1:
            return [self.min_history]
        ratio = (self.max_history / self.min_history) ** (
            1.0 / (self.num_tagged_tables - 1))
        value = float(self.min_history)
        for _ in range(self.num_tagged_tables):
            lengths.append(max(1, int(round(value))))
            value *= ratio
        return lengths


@dataclass(slots=True)
class _TAGEEntry:
    tag: int
    counters: Dict[Level, int] = field(
        default_factory=lambda: {level: 0 for level in PREDICTABLE_LEVELS})
    useful: int = 0


#: Memoized results of :meth:`TAGELevelPredictor._counters_to_levels`,
#: keyed by a bitmask of the selected levels (the value space is tiny).
_LEVEL_SETS: Dict[int, Tuple[Level, ...]] = {}


def _levels_from_mask(mask: int) -> Tuple[Level, ...]:
    levels = _LEVEL_SETS.get(mask)
    if levels is None:
        levels = tuple(level for level in PREDICTABLE_LEVELS
                       if mask & (1 << int(level)))
        _LEVEL_SETS[mask] = levels
    return levels


class TAGELevelPredictor(LevelPredictor):
    """Address + level-history TAGE predictor with three counters per entry."""

    def __init__(self, config: Optional[TAGEConfig] = None,
                 energy_params: Optional[EnergyParameters] = None) -> None:
        super().__init__()
        self.config = config or TAGEConfig()
        self.prediction_latency = 1
        self._energy_params = energy_params or EnergyParameters()
        self._access_energy = self._energy_params.sram_access_energy(
            self.config.storage_bytes)
        entries = self.config.entries_per_table
        self._base_table: List[Dict[Level, int]] = [
            {level: 0 for level in PREDICTABLE_LEVELS} for _ in range(entries)
        ]
        self._tables: List[List[Optional[_TAGEEntry]]] = [
            [None] * entries for _ in range(self.config.num_tagged_tables)
        ]
        self._history_lengths = self.config.history_lengths()
        self._history = 0  # Global level-outcome history register.
        self._history_bits = 2 * max(self._history_lengths)
        # Folded-history values per length, recomputed only when the global
        # history register changes (predict/on_fill hash with the same
        # history many times between pushes).
        self._folded_cache: Dict[int, int] = {}
        self._folded_per_table: Optional[List[int]] = None
        self._tag_mask = (1 << self.config.tag_bits) - 1
        self._entries = entries
        # Bookkeeping for training: which table/index provided the prediction.
        self._last_provider: Dict[int, Tuple[int, int]] = {}
        self.allocations = 0
        self.provider_hits = 0
        self.base_predictions = 0

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def _folded_history(self, length: int) -> int:
        cached = self._folded_cache.get(length)
        if cached is not None:
            return cached
        mask = (1 << (2 * length)) - 1
        history = self._history & mask
        folded = 0
        while history:
            folded ^= history & 0xFFFF
            history >>= 16
        self._folded_cache[length] = folded
        return folded

    def _folded_all(self) -> List[int]:
        """Folded history per tagged table, cached until the history moves."""
        folded = self._folded_per_table
        if folded is None:
            folded = [self._folded_history(length)
                      for length in self._history_lengths]
            self._folded_per_table = folded
        return folded

    def _index(self, block_addr: int, table: int) -> int:
        block = block_addr >> 6
        folded = self._folded_history(self._history_lengths[table])
        return (block ^ (block >> 7) ^ (folded * 0x9E3779B1)) % self._entries

    def _tag(self, block_addr: int, table: int) -> int:
        block = block_addr >> 6
        folded = self._folded_history(self._history_lengths[table])
        value = (block >> 3) ^ (folded >> 2) ^ (table * 0x5BD1)
        return value & ((1 << self.config.tag_bits) - 1)

    def _base_index(self, block_addr: int) -> int:
        block = block_addr >> 6
        return (block ^ (block >> 11)) % self._entries

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _counters_to_levels(self, counters: Dict[Level, int]) -> Tuple[Level, ...]:
        """The Popular-Levels heuristic applied to one entry's counters."""
        # Rank the three counters descending (level order breaks ties) using
        # plain tuple comparison — no lambda and no second sort; the selected
        # set is returned as a memoized tuple keyed by its level bitmask.
        l2 = counters[Level.L2]
        l3 = counters[Level.L3]
        mem = counters[Level.MEM]
        total = l2 + l3 + mem
        if total == 0:
            return _SEQUENTIAL_LEVELS
        ranked = sorted(((-l2, 2, Level.L2), (-l3, 3, Level.L3),
                         (-mem, 4, Level.MEM)))
        threshold = self.config.confidence_threshold * total
        mask = 0
        accumulated = 0
        for negated_count, _, level in ranked:
            mask |= 1 << int(level)
            accumulated -= negated_count
            if accumulated >= threshold:
                break
        return _levels_from_mask(mask)

    def predict(self, block_addr: int, pc: int = 0) -> Prediction:
        provider: Optional[Tuple[int, int]] = None
        counters: Optional[Dict[Level, int]] = None
        # Longest-history matching table provides the prediction.  The index
        # and tag hashes are inlined (this loop runs on every L1 miss).
        folded_all = self._folded_all()
        tables = self._tables
        entries = self._entries
        tag_mask = self._tag_mask
        block = block_addr >> 6
        block_hash = block ^ (block >> 7)
        for table in range(self.config.num_tagged_tables - 1, -1, -1):
            folded = folded_all[table]
            index = (block_hash ^ (folded * 0x9E3779B1)) % entries
            entry = tables[table][index]
            if entry is not None and entry.tag == (
                    (block >> 3) ^ (folded >> 2) ^ (table * 0x5BD1)) & tag_mask:
                provider = (table, index)
                counters = entry.counters
                break
        source = "tage"
        if counters is None:
            self.base_predictions += 1
            if not self.config.base_table_fallback:
                # No matching entry: follow the sequential level-by-level
                # traversal, exactly as the paper's TAGE baseline does.
                self._last_provider[block_addr] = None
                return Prediction(levels=(Level.L2,), source="tage-miss")
            base_index = self._base_index(block_addr)
            counters = self._base_table[base_index]
            provider = (-1, base_index)
            source = "tage-base"
        else:
            self.provider_hits += 1
        self._last_provider[block_addr] = provider
        levels = self._counters_to_levels(counters)
        return Prediction(levels=levels, source=source)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _learn(self, block_addr: int, pc: int, prediction: Prediction,
               actual: Level) -> None:
        self._update_entry(block_addr, actual,
                           correct=actual in (prediction.levels or ()))
        self._push_history(actual)

    def _push_history(self, actual: Level) -> None:
        code = _HISTORY_CODES[actual]
        self._history = ((self._history << 2) | code) & (
            (1 << self._history_bits) - 1)
        self._folded_cache.clear()
        self._folded_per_table = None

    def _update_entry(self, block_addr: int, actual: Level,
                      correct: bool) -> None:
        provider = self._last_provider.pop(block_addr, None)
        max_counter = (1 << self.config.counter_bits) - 1
        if provider is not None:
            table, index = provider
            counters = (self._base_table[index] if table < 0
                        else self._tables[table][index].counters
                        if self._tables[table][index] is not None
                        else None)
            if counters is not None:
                for level in counters:
                    if level is actual:
                        counters[level] = min(counters[level] + 1, max_counter)
                    elif counters[level] > 0:
                        counters[level] -= 1
                if table >= 0:
                    entry = self._tables[table][index]
                    entry.useful = min(entry.useful + (1 if correct else 0), 3)
        if not correct:
            self._allocate(block_addr, actual,
                           from_table=(provider[0] if provider else -1))

    def _allocate(self, block_addr: int, actual: Level, from_table: int) -> None:
        """Allocate a new entry in a longer-history table on a misprediction."""
        for table in range(max(from_table + 1, 0), self.config.num_tagged_tables):
            index = self._index(block_addr, table)
            existing = self._tables[table][index]
            if existing is not None and existing.useful > 0:
                existing.useful -= 1
                continue
            entry = _TAGEEntry(tag=self._tag(block_addr, table))
            entry.counters[actual] = 2
            self._tables[table][index] = entry
            self.allocations += 1
            return

    # ------------------------------------------------------------------
    # Cache-event updates (prefetcher coordination)
    # ------------------------------------------------------------------
    def on_fill(self, block_addr: int, level: Level,
                from_prefetch: bool = False) -> None:
        if level is Level.L1:
            return
        if from_prefetch and not self.config.update_on_prefetch:
            return
        # Data moved to `level`; nudge the matching tagged entries toward it.
        # This is the prefetcher/level-predictor coordination the paper
        # evaluates; it only helps blocks that already have tagged history,
        # and for small tables the extra allocations from mispredictions that
        # follow still crowd out demand history.
        max_counter = (1 << self.config.counter_bits) - 1
        updated = False
        folded_all = self._folded_all()
        tables = self._tables
        entries = self._entries
        tag_mask = self._tag_mask
        block = block_addr >> 6
        block_hash = block ^ (block >> 7)
        for table in range(self.config.num_tagged_tables):
            folded = folded_all[table]
            index = (block_hash ^ (folded * 0x9E3779B1)) % entries
            entry = tables[table][index]
            if entry is None or entry.tag != (
                    (block >> 3) ^ (folded >> 2) ^ (table * 0x5BD1)) & tag_mask:
                continue
            counters = entry.counters
            for tracked in counters:
                if tracked is level:
                    counters[tracked] = min(counters[tracked] + 1, max_counter)
                elif counters[tracked] > 0:
                    counters[tracked] -= 1
            updated = True
        if updated:
            self.stats.updates += 1

    def on_eviction(self, block_addr: int, level: Level, dirty: bool) -> None:
        if not dirty:
            return
        destination = Level.L3 if level is Level.L2 else Level.MEM
        self.on_fill(block_addr, destination)

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        return self.config.storage_bytes * 8

    def energy_per_prediction_nj(self) -> float:
        return self._access_energy

    @property
    def name(self) -> str:
        return f"TAGE-{self.config.storage_bytes // 1024}KB"


def make_tage_2kb(**overrides) -> TAGELevelPredictor:
    """The paper's 2 KB TAGE variant (energy competitor)."""
    config = TAGEConfig(storage_bytes=2048, **overrides)
    return TAGELevelPredictor(config)


def make_tage_8kb(**overrides) -> TAGELevelPredictor:
    """The paper's 8 KB TAGE variant (accuracy competitor)."""
    config = TAGEConfig(storage_bytes=8192, **overrides)
    return TAGELevelPredictor(config)
