"""The proposed cache level predictor: LocMap metadata cache + PLD.

This is the paper's main contribution (Section III.B).  On every L1 miss the
predictor is consulted:

1. the LocMap metadata cache is probed with the block's physical address;
2. on a **metadata hit**, the stored 2-bit location (L2, LLC or MEM) is the
   (single-way) prediction;
3. on a **metadata miss**, the Popular Levels Detector supplies a single- or
   multi-way prediction while the LocMap block is fetched from memory in the
   background.

The predictor is updated by cache events reported by the hierarchy: demand
fills, dirty evictions, and prefetch fills that hit in the metadata cache
(Section III.C), plus per-level hit signals that train the PLD counters.

The whole structure costs one cycle on the L1 miss path, a 2 KiB metadata
cache and three 32-bit counters per core, and 0.39 % of physical memory for
the LocMap itself (Section V.F).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..energy.model import EnergyParameters
from ..memory.block import Level, PREDICTABLE_LEVELS
from .base import LevelPredictor, Prediction
from .locmap import LocMap
from .pld import PLDConfig, PopularLevelsDetector

#: Shared frozen predictions for the metadata-hit path (one per stored level)
#: and a memo for PLD level combinations — predict() runs on every L1 miss
#: and the Prediction value space is tiny, so nothing is allocated per call.
_LOCMAP_PREDICTIONS = {
    level: Prediction(levels=(level,), metadata_hit=True, source="locmap")
    for level in PREDICTABLE_LEVELS
}
_LOCMAP_MEM_WITH_L3 = Prediction(levels=(Level.L3, Level.MEM),
                                 metadata_hit=True, source="locmap")
_PLD_PREDICTIONS: dict = {}


@dataclass
class LevelPredictorConfig:
    """Configuration of the proposed level predictor.

    Attributes:
        metadata_cache_bytes: Metadata cache capacity (2 KiB in the paper;
            Figure 5 sweeps 1-8 KiB).
        metadata_associativity: Metadata cache ways (2 in the paper).
        pld: Popular Levels Detector configuration.
        prediction_latency: Cycles added to the L1 miss path (1 in the paper).
        predict_l3_and_mem_from_locmap_mem: When the LocMap says MEM, also
            include L3 in the prediction if True.  The paper predicts exactly
            the stored level (False); the knob exists for ablations.
    """

    metadata_cache_bytes: int = 2048
    metadata_associativity: int = 2
    pld: PLDConfig = None
    prediction_latency: int = 1
    predict_l3_and_mem_from_locmap_mem: bool = False

    def __post_init__(self) -> None:
        if self.pld is None:
            self.pld = PLDConfig()


class CacheLevelPredictor(LevelPredictor):
    """LocMap + Popular Levels Detector level predictor (the paper's LP)."""

    def __init__(self, config: Optional[LevelPredictorConfig] = None,
                 energy_params: Optional[EnergyParameters] = None) -> None:
        super().__init__()
        self.config = config or LevelPredictorConfig()
        self.prediction_latency = self.config.prediction_latency
        self.locmap = LocMap(
            metadata_cache_bytes=self.config.metadata_cache_bytes,
            metadata_associativity=self.config.metadata_associativity)
        self.pld = PopularLevelsDetector(self.config.pld)
        self._energy_params = energy_params or EnergyParameters()
        self._metadata_access_energy = self._energy_params.sram_access_energy(
            self.config.metadata_cache_bytes)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, block_addr: int, pc: int = 0) -> Prediction:
        stored = self.locmap.query(block_addr)
        if stored is not None:
            if (stored is Level.MEM
                    and self.config.predict_l3_and_mem_from_locmap_mem):
                return _LOCMAP_MEM_WITH_L3
            return _LOCMAP_PREDICTIONS[stored]
        levels = self.pld.predict()
        prediction = _PLD_PREDICTIONS.get(levels)
        if prediction is None:
            prediction = Prediction(levels=levels, used_pld=True,
                                    metadata_hit=False, source="pld")
            _PLD_PREDICTIONS[levels] = prediction
        return prediction

    # ------------------------------------------------------------------
    # Updates from the hierarchy
    # ------------------------------------------------------------------
    def on_fill(self, block_addr: int, level: Level,
                from_prefetch: bool = False) -> None:
        if level is Level.L1:
            # L1 is not a prediction target; its contents are covered by the
            # inclusive L2, which is tracked.
            return
        self.locmap.record_fill(block_addr, level, from_prefetch=from_prefetch)
        self.stats.updates += 1

    def on_eviction(self, block_addr: int, level: Level, dirty: bool) -> None:
        self.locmap.record_eviction(block_addr, level, dirty)
        if dirty:
            self.stats.updates += 1

    def on_hit(self, level: Level) -> None:
        self.pld.record_hit(level)

    # ------------------------------------------------------------------
    # Costs and overhead (Section V.F)
    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        return self.locmap.storage_bits_on_chip() + self.pld.storage_bits()

    def energy_per_prediction_nj(self) -> float:
        return self._metadata_access_energy

    def overhead_report(self) -> Dict[str, float]:
        """The quantities reported in the paper's overhead analysis."""
        return {
            "metadata_cache_bytes": float(self.config.metadata_cache_bytes),
            "pld_counter_bits": float(self.pld.storage_bits()),
            "on_chip_storage_bits": float(self.storage_bits()),
            "memory_overhead_fraction": self.locmap.memory_overhead_fraction(),
            "prediction_latency_cycles": float(self.prediction_latency),
        }

    def reset_statistics(self) -> None:
        super().reset_statistics()
        self.locmap.reset_statistics()
        self.pld.reset()
