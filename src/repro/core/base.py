"""Level-predictor interfaces and shared prediction types.

Every predictor evaluated by the paper (the proposed LocMap+PLD level
predictor, the TAGE-based miss predictors extended to level prediction, the
D2D precise scheme and the Ideal oracle) implements the
:class:`LevelPredictor` interface defined here.  The memory hierarchy is
written against this interface, so swapping predictors is a one-line change in
the system configuration — exactly how the paper's comparison experiments are
structured.

The module also defines :class:`PredictionOutcome`, the four-way
classification used in Figure 7 (sequential / skip / lost opportunity /
harmful), and :class:`PredictorStats` which accumulates the breakdown.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..memory.block import Level

#: Levels of a degenerate (sequential) prediction, shared on the hot path.
_SEQUENTIAL_LEVELS = (Level.L2,)


class PredictionOutcome(enum.Enum):
    """Classification of one level prediction against the actual location.

    Mirrors Section V.A of the paper:

    * ``SEQUENTIAL`` — correctly predicted sequential: the predictor targeted
      L2 (the next level anyway) and the block was indeed in L2.
    * ``SKIP`` — correctly predicted skip: at least one level was bypassed and
      no recovery was required.
    * ``LOST_OPPORTUNITY`` — wrongly predicted sequential: the predictor
      targeted a level closer than the block's actual location, so lookups
      that could have been avoided were performed (safe, but no gain).
    * ``HARMFUL`` — wrongly predicted skip: a level holding the data was
      bypassed and the directory had to re-issue the request (recovery).
    """

    SEQUENTIAL = "sequential"
    SKIP = "skip"
    LOST_OPPORTUNITY = "lost_opportunity"
    HARMFUL = "harmful"


@dataclass(frozen=True)
class Prediction:
    """The set of levels a predictor asks the hierarchy to look up.

    Attributes:
        levels: Predicted lookup targets, ordered from closest to furthest.
            An empty tuple means "no prediction, fall back to sequential
            lookup" (the hierarchy then behaves exactly like the baseline).
        used_pld: True when the Popular Levels Detector produced the
            prediction (i.e. the LocMap metadata cache missed).
        metadata_hit: True when the LocMap metadata cache supplied the
            location.
        source: Free-form tag identifying which internal structure produced
            the prediction (useful for debugging and for the TAGE baseline's
            table-provider statistics).
    """

    levels: Tuple[Level, ...]
    used_pld: bool = False
    metadata_hit: bool = False
    source: str = ""

    @property
    def is_sequential(self) -> bool:
        """True when the prediction degenerates to the sequential baseline."""
        return not self.levels or self.levels[0] is Level.L2

    @property
    def is_multi_way(self) -> bool:
        return len(self.levels) > 1

    @property
    def nearest(self) -> Optional[Level]:
        return self.levels[0] if self.levels else None

    def targets(self, level: Level) -> bool:
        return level in self.levels

    @staticmethod
    def sequential() -> "Prediction":
        """A prediction equivalent to the baseline level-by-level lookup.

        Returns a shared immutable instance: the baseline consults it on
        every L1 miss and the object never varies.
        """
        return _SEQUENTIAL_PREDICTION


#: Shared frozen instance returned by :meth:`Prediction.sequential`.
_SEQUENTIAL_PREDICTION = Prediction(levels=(Level.L2,), source="sequential")


def classify_prediction(prediction: Prediction, actual: Level) -> PredictionOutcome:
    """Classify a prediction against the level where the block was found.

    ``actual`` is the level at which the data was actually found after the L1
    miss (L2, L3, or MEM; blocks supplied by another core's private cache are
    classified as L3 since the directory, collocated with the LLC tags,
    services them).
    """
    if actual is Level.L1:
        raise ValueError("level prediction is only consulted on L1 misses")
    levels = prediction.levels or (Level.L2,)
    skipped_l2 = Level.L2 not in levels

    if actual is Level.L2:
        if skipped_l2:
            return PredictionOutcome.HARMFUL
        return PredictionOutcome.SEQUENTIAL

    # Block is in L3 or memory.
    if skipped_l2:
        return PredictionOutcome.SKIP
    return PredictionOutcome.LOST_OPPORTUNITY


@dataclass
class PredictorStats:
    """Accuracy bookkeeping shared by all predictors.

    The counters map directly onto Figures 7, 8, 9 and 13 of the paper.
    """

    predictions: int = 0
    outcomes: Dict[PredictionOutcome, int] = field(
        default_factory=lambda: {outcome: 0 for outcome in PredictionOutcome}
    )
    multi_way_predictions: int = 0
    pld_predictions: int = 0
    pld_mispredictions: int = 0
    metadata_hits: int = 0
    metadata_misses: int = 0
    level_histogram: Dict[Tuple[Level, ...], int] = field(default_factory=dict)
    updates: int = 0

    def record(self, prediction: Prediction, outcome: PredictionOutcome,
               actual: Level) -> None:
        levels = prediction.levels
        used_pld = prediction.used_pld
        self.predictions += 1
        self.outcomes[outcome] += 1
        if len(levels) > 1:
            self.multi_way_predictions += 1
        if used_pld:
            self.pld_predictions += 1
            if actual not in levels:
                self.pld_mispredictions += 1
        if prediction.metadata_hit:
            self.metadata_hits += 1
        elif used_pld:
            self.metadata_misses += 1
        histogram = self.level_histogram
        histogram[levels] = histogram.get(levels, 0) + 1

    # ------------------------------------------------------------------
    # Derived ratios (Figure 7 / 8 style)
    # ------------------------------------------------------------------
    def fraction(self, outcome: PredictionOutcome) -> float:
        if not self.predictions:
            return 0.0
        return self.outcomes[outcome] / self.predictions

    @property
    def accuracy(self) -> float:
        """Fraction of predictions that did not require recovery."""
        if not self.predictions:
            return 1.0
        harmful = self.outcomes[PredictionOutcome.HARMFUL]
        return 1.0 - harmful / self.predictions

    @property
    def useful_fraction(self) -> float:
        """Fraction of predictions that correctly skipped at least one level."""
        return self.fraction(PredictionOutcome.SKIP)

    @property
    def metadata_miss_ratio(self) -> float:
        total = self.metadata_hits + self.metadata_misses
        return self.metadata_misses / total if total else 0.0

    @property
    def pld_misprediction_ratio(self) -> float:
        if not self.pld_predictions:
            return 0.0
        return self.pld_mispredictions / self.pld_predictions

    def breakdown(self) -> Dict[str, float]:
        """Return the Figure-7 breakdown as fractions summing to one."""
        return {outcome.value: self.fraction(outcome) for outcome in
                PredictionOutcome}

    def reset(self) -> None:
        self.predictions = 0
        self.outcomes = {outcome: 0 for outcome in PredictionOutcome}
        self.multi_way_predictions = 0
        self.pld_predictions = 0
        self.pld_mispredictions = 0
        self.metadata_hits = 0
        self.metadata_misses = 0
        self.level_histogram = {}
        self.updates = 0


class LevelPredictor(ABC):
    """Interface implemented by every level predictor.

    The hierarchy queries :meth:`predict` on every L1 miss, feeds the actual
    outcome back through :meth:`train`, and notifies the predictor of cache
    events (fills, dirty evictions, prefetch fills) through :meth:`on_fill`
    and :meth:`on_eviction` so location metadata can be maintained.
    """

    #: Extra cycles the predictor adds to the L1 miss path.
    prediction_latency: int = 1

    def __init__(self) -> None:
        self.stats = PredictorStats()

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    @abstractmethod
    def predict(self, block_addr: int, pc: int = 0) -> Prediction:
        """Predict the level(s) holding ``block_addr`` on an L1 miss."""

    def train(self, block_addr: int, pc: int, prediction: Prediction,
              actual: Level) -> PredictionOutcome:
        """Record the actual location and return the outcome classification."""
        # Inline classify_prediction (one call per L1 miss).
        if actual is Level.L1:
            raise ValueError("level prediction is only consulted on L1 misses")
        levels = prediction.levels or _SEQUENTIAL_LEVELS
        if Level.L2 in levels:
            outcome = (PredictionOutcome.SEQUENTIAL if actual is Level.L2
                       else PredictionOutcome.LOST_OPPORTUNITY)
        else:
            outcome = (PredictionOutcome.HARMFUL if actual is Level.L2
                       else PredictionOutcome.SKIP)
        self.stats.record(prediction, outcome, actual)
        self._learn(block_addr, pc, prediction, actual)
        return outcome

    def _learn(self, block_addr: int, pc: int, prediction: Prediction,
               actual: Level) -> None:
        """Hook for subclasses that learn from demand outcomes."""

    # ------------------------------------------------------------------
    # Cache-event notifications
    # ------------------------------------------------------------------
    def on_fill(self, block_addr: int, level: Level,
                from_prefetch: bool = False) -> None:
        """A block was filled into ``level``."""

    def on_eviction(self, block_addr: int, level: Level, dirty: bool) -> None:
        """A block was evicted from ``level`` (dirty evictions matter most)."""

    def on_hit(self, level: Level) -> None:
        """A demand access hit at ``level`` (drives the PLD counters)."""

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return type(self).__name__

    def storage_bits(self) -> int:
        """Total predictor storage in bits (for the overhead analysis)."""
        return 0

    def energy_per_prediction_nj(self) -> float:
        """Access energy charged per prediction, in nanojoules."""
        return 0.0

    def reset_statistics(self) -> None:
        self.stats.reset()


class SequentialPredictor(LevelPredictor):
    """Baseline behaviour: always look up the next level (no bypassing).

    Used to model the baseline system within the same code path, so baseline
    and level-predicted runs share every other piece of machinery.
    """

    prediction_latency = 0

    def predict(self, block_addr: int, pc: int = 0) -> Prediction:
        return Prediction.sequential()

    def storage_bits(self) -> int:
        return 0
