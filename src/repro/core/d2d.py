"""Direct-to-Data (D2D / D2M) baseline: precise single-lookup location.

Sembrant, Hagersten and Black-Schaffer's D2D [26] and D2M [27] navigate the
cache hierarchy with a single lookup by keeping *precise* location pointers in
an extended TLB (eTLB) and a "Hub" structure, at the cost of enlarging TLB
entries, adding a new metadata hierarchy and changing the coherence scheme.
The paper uses D2D/D2M as the high-implementation-cost comparison point
(Section IV.C): it never mispredicts, but it pays

* a Hub modelled as an 8-way, 4 KB cache, and
* 10 % higher energy per TLB access because of the longer entries,

and applications with high TLB miss rates (e.g. nas.is) access the Hub more
often, raising its energy.

Because D2D is precise *by construction*, this reproduction implements it as a
tracker that mirrors every fill and eviction event exactly (including clean
evictions, which the paper's LP deliberately ignores) and therefore always
reports the true level.  The cost side — Hub and eTLB energy, Hub miss
traffic — is modelled explicitly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..energy.model import EnergyParameters
from ..memory.block import Level
from .base import LevelPredictor, Prediction


@dataclass
class D2DConfig:
    """Cost parameters of the D2D baseline (Section IV.C)."""

    hub_bytes: int = 4096
    hub_associativity: int = 8
    etlb_energy_overhead: float = 0.10
    prediction_latency: int = 0


class DirectToDataPredictor(LevelPredictor):
    """Precise location tracker with D2D's cost model.

    The tracker maintains an exact block -> level map driven by the fill and
    eviction events the hierarchy reports.  Unlike the LocMap it also applies
    clean evictions, so it never goes stale: a block evicted (clean) from L2
    is known to live wherever its next copy is — in this functional model the
    destination is main memory unless the LLC also holds it, which the
    hierarchy communicates by reporting LLC fills separately.
    """

    def __init__(self, config: Optional[D2DConfig] = None,
                 energy_params: Optional[EnergyParameters] = None) -> None:
        super().__init__()
        self.config = config or D2DConfig()
        self.prediction_latency = self.config.prediction_latency
        self._energy_params = energy_params or EnergyParameters()
        self._hub_access_energy = self._energy_params.sram_access_energy(
            self.config.hub_bytes)
        self._etlb_overhead = (self._energy_params.tlb_access_nj
                               * self.config.etlb_energy_overhead)
        # Precise location state: which levels currently hold each block.
        self._in_l2: Dict[int, bool] = {}
        self._in_l3: Dict[int, bool] = {}
        # Hub: a small cache of per-page location groups; misses cost energy.
        self._hub: "OrderedDict[int, bool]" = OrderedDict()
        self._hub_entries = self.config.hub_bytes // 8
        self.hub_hits = 0
        self.hub_misses = 0

    # ------------------------------------------------------------------
    # Prediction (always exact)
    # ------------------------------------------------------------------
    def predict(self, block_addr: int, pc: int = 0) -> Prediction:
        self._touch_hub(block_addr)
        if self._in_l2.get(block_addr, False):
            level = Level.L2
        elif self._in_l3.get(block_addr, False):
            level = Level.L3
        else:
            level = Level.MEM
        return Prediction(levels=(level,), source="d2d")

    def _touch_hub(self, block_addr: int) -> None:
        """Model Hub locality: one entry per 4 KiB page of tracked blocks."""
        page = block_addr >> 12
        if page in self._hub:
            self._hub.move_to_end(page)
            self.hub_hits += 1
            return
        self.hub_misses += 1
        if len(self._hub) >= self._hub_entries:
            self._hub.popitem(last=False)
        self._hub[page] = True

    # ------------------------------------------------------------------
    # Precise tracking of fills and evictions
    # ------------------------------------------------------------------
    def on_fill(self, block_addr: int, level: Level,
                from_prefetch: bool = False) -> None:
        if level is Level.L2:
            self._in_l2[block_addr] = True
        elif level is Level.L3:
            self._in_l3[block_addr] = True
        self.stats.updates += 1

    def on_eviction(self, block_addr: int, level: Level, dirty: bool) -> None:
        # Precise: clean evictions are tracked too (unlike the LocMap).
        if level is Level.L2:
            self._in_l2.pop(block_addr, None)
            if dirty:
                self._in_l3[block_addr] = True
        elif level is Level.L3:
            self._in_l3.pop(block_addr, None)
        self.stats.updates += 1

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        return self.config.hub_bytes * 8

    def energy_per_prediction_nj(self) -> float:
        # Every prediction accesses the eTLB (10 % longer entries) and the
        # Hub; Hub misses require an additional fill access.
        hub_miss_ratio = 0.0
        total = self.hub_hits + self.hub_misses
        if total:
            hub_miss_ratio = self.hub_misses / total
        return (self._hub_access_energy * (1.0 + hub_miss_ratio)
                + self._etlb_overhead)

    @property
    def name(self) -> str:
        return "D2D"


class IdealPredictor(LevelPredictor):
    """Placeholder predictor used with the Ideal system configuration.

    The paper's Ideal system gives every L1 miss a perfect, zero-cost level
    prediction; the hierarchy implements that with its ``ideal_miss_latency``
    configuration flag (the oracle needs the actual block location, which only
    the hierarchy knows).  This predictor therefore adds no latency and no
    energy of its own; its statistics still record the (always correct)
    outcomes so Figure 10's "Ideal is L2+L3 cache energy only" reference holds.
    """

    prediction_latency = 0

    def predict(self, block_addr: int, pc: int = 0) -> Prediction:
        return Prediction.sequential()

    @property
    def name(self) -> str:
        return "Ideal"
