"""Misprediction detection and recovery accounting (Section III.E).

The mechanics of recovery live in the hierarchy and directory models: the
collocated directory detects a bypassed private level during the LLC tag
access, a recovery transaction re-issues the request to the correct level, and
MSHR entries past the actual level are deallocated.  This module provides the
*accounting* view of that machinery — the cost model used in the paper's
discussion ("on average only 1 % of the cache-hierarchy energy is spent on
recovery") and the per-run recovery summaries the benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..energy.model import EnergyAccount
from ..memory.hierarchy import CoreMemoryHierarchy


@dataclass
class RecoverySummary:
    """Recovery behaviour of one simulation run.

    Attributes:
        predictions: Level predictions made (one per L1 miss).
        recoveries: Harmful mispredictions that required directory recovery.
        recovery_rate: Recoveries per prediction.
        recovery_energy_nj: Energy charged to the recovery category.
        recovery_energy_fraction: Recovery energy as a fraction of the total
            cache-hierarchy energy (the paper reports ~1 % on average).
        forced_mshr_deallocations: MSHR entries deallocated by recovery.
    """

    predictions: int
    recoveries: int
    recovery_rate: float
    recovery_energy_nj: float
    recovery_energy_fraction: float
    forced_mshr_deallocations: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "predictions": float(self.predictions),
            "recoveries": float(self.recoveries),
            "recovery_rate": self.recovery_rate,
            "recovery_energy_nj": self.recovery_energy_nj,
            "recovery_energy_fraction": self.recovery_energy_fraction,
            "forced_mshr_deallocations": float(self.forced_mshr_deallocations),
        }


def summarize_recovery(hierarchy: CoreMemoryHierarchy) -> RecoverySummary:
    """Build a :class:`RecoverySummary` from a finished hierarchy run."""
    stats = hierarchy.stats
    energy: EnergyAccount = hierarchy.energy
    recovery_energy = energy.breakdown().get("recovery", 0.0)
    hierarchy_energy = energy.cache_hierarchy_energy()
    return RecoverySummary(
        predictions=stats.predictions,
        recoveries=stats.recoveries,
        recovery_rate=(stats.recoveries / stats.predictions
                       if stats.predictions else 0.0),
        recovery_energy_nj=recovery_energy,
        recovery_energy_fraction=(recovery_energy / hierarchy_energy
                                  if hierarchy_energy else 0.0),
        forced_mshr_deallocations=(
            hierarchy.shared.l3.mshrs.forced_deallocations),
    )
