"""The paper's contribution: cache level prediction and its baselines."""

from .base import (
    LevelPredictor,
    Prediction,
    PredictionOutcome,
    PredictorStats,
    SequentialPredictor,
    classify_prediction,
)
from .d2d import D2DConfig, DirectToDataPredictor, IdealPredictor
from .level_predictor import CacheLevelPredictor, LevelPredictorConfig
from .locmap import LocMap, MetadataCache, locmap_block_address
from .pld import PLDConfig, PopularLevelsDetector
from .recovery import RecoverySummary, summarize_recovery
from .tage import TAGEConfig, TAGELevelPredictor, make_tage_2kb, make_tage_8kb

__all__ = [
    "CacheLevelPredictor",
    "D2DConfig",
    "DirectToDataPredictor",
    "IdealPredictor",
    "LevelPredictor",
    "LevelPredictorConfig",
    "LocMap",
    "MetadataCache",
    "PLDConfig",
    "PopularLevelsDetector",
    "Prediction",
    "PredictionOutcome",
    "PredictorStats",
    "RecoverySummary",
    "SequentialPredictor",
    "TAGEConfig",
    "TAGELevelPredictor",
    "classify_prediction",
    "locmap_block_address",
    "make_tage_2kb",
    "make_tage_8kb",
    "summarize_recovery",
]
