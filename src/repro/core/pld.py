"""Popular Levels Detector (PLD).

Section III.D of the paper.  When the LocMap metadata cache misses, waiting
for the LocMap block to arrive from memory would take longer than the lookup
the prediction is meant to accelerate, so a tiny history-based predictor
supplies the level instead.

The PLD keeps one 32-bit counter per predictable level (L2, L3, MEM).  On a
hit to a level, that level's counter is incremented and the others are
decremented (never below zero), which makes the counters track the *recently*
popular levels and prevents saturation.  When a prediction is needed the
counters are sorted:

* the top level is always a target;
* if its counter alone does not reach a confidence threshold, the second level
  is added (two-way parallel lookup);
* if the top two together still do not reach the threshold, all three levels
  are predicted (three-way).

Single-way predictions are the common case; multi-way predictions trade a
little lookup overhead for accuracy when the counters are not strongly biased
toward one level (Section V.A, Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..memory.block import Level


@dataclass
class PLDConfig:
    """Tuning knobs of the Popular Levels Detector.

    Attributes:
        counter_bits: Width of each counter (32 in the paper; the width only
            matters for the storage report since the update rule prevents
            saturation in practice).
        confidence_threshold: Fraction of the total counter mass the selected
            level(s) must reach before the prediction stops adding levels.
        decrement_on_other: How much the non-hitting counters are decremented
            per update (1 in the paper).
    """

    counter_bits: int = 32
    confidence_threshold: float = 0.6
    decrement_on_other: int = 1


#: Shared result tuples for every level subset predict() can return,
#: already in hierarchy (closest-to-furthest) order.
_L2_ONLY = (Level.L2,)
_L3_ONLY = (Level.L3,)
_MEM_ONLY = (Level.MEM,)
_L2_L3 = (Level.L2, Level.L3)
_L2_MEM = (Level.L2, Level.MEM)
_L3_MEM = (Level.L3, Level.MEM)
_ALL = (Level.L2, Level.L3, Level.MEM)


class PopularLevelsDetector:
    """Counter-based popular-level predictor used on metadata cache misses.

    The three counters live as plain integer attributes (not a dict):
    :meth:`record_hit` runs on every L1 miss of the LP system, and the dict
    iteration showed up in simulation profiles.
    """

    __slots__ = ("config", "_max_value", "_decrement", "_l2", "_l3", "_mem",
                 "updates", "predictions", "multi_way_predictions")

    def __init__(self, config: PLDConfig | None = None) -> None:
        self.config = config or PLDConfig()
        self._max_value = (1 << self.config.counter_bits) - 1
        self._decrement = self.config.decrement_on_other
        self._l2 = 0
        self._l3 = 0
        self._mem = 0
        self.updates = 0
        self.predictions = 0
        self.multi_way_predictions = 0

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def record_hit(self, level: Level) -> None:
        """Update the counters after a demand access resolved at ``level``."""
        if level is Level.L1:
            return
        decrement = self._decrement
        if level is Level.L2:
            self._l2 = min(self._l2 + 1, self._max_value)
            self._l3 = l3 if (l3 := self._l3 - decrement) > 0 else 0
            self._mem = mem if (mem := self._mem - decrement) > 0 else 0
        elif level is Level.L3:
            self._l3 = min(self._l3 + 1, self._max_value)
            self._l2 = l2 if (l2 := self._l2 - decrement) > 0 else 0
            self._mem = mem if (mem := self._mem - decrement) > 0 else 0
        elif level is Level.MEM:
            self._mem = min(self._mem + 1, self._max_value)
            self._l2 = l2 if (l2 := self._l2 - decrement) > 0 else 0
            self._l3 = l3 if (l3 := self._l3 - decrement) > 0 else 0
        else:  # pragma: no cover - Level has no other members
            raise ValueError(f"PLD does not track level {level}")
        self.updates += 1

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self) -> Tuple[Level, ...]:
        """Return the predicted level(s), ordered closest-to-furthest.

        With no history at all (all counters zero) the detector falls back to
        the conservative sequential choice, L2.
        """
        self.predictions += 1
        l2, l3, mem = self._l2, self._l3, self._mem
        total = l2 + l3 + mem
        if total == 0:
            return _L2_ONLY

        # Rank descending by count, ties broken toward the closer level
        # (plain tuple comparison, no lambda).
        ranked = sorted(((-l2, 2, _L2_ONLY), (-l3, 3, _L3_ONLY),
                         (-mem, 4, _MEM_ONLY)))
        threshold = self.config.confidence_threshold * total

        mask = 0
        accumulated = 0
        for negated, order, _ in ranked:
            mask |= 1 << order
            accumulated -= negated
            if accumulated >= threshold:
                break
        if mask == 1 << ranked[0][1]:
            return ranked[0][2]
        self.multi_way_predictions += 1
        # Report targets in hierarchy order so the hierarchy knows which
        # levels are being probed in parallel.
        if mask == 0b01100:
            return _L2_L3
        if mask == 0b10100:
            return _L2_MEM
        if mask == 0b11000:
            return _L3_MEM
        return _ALL

    # ------------------------------------------------------------------
    # Introspection / reporting
    # ------------------------------------------------------------------
    def counters(self) -> Dict[Level, int]:
        """A copy of the current counter values."""
        return {Level.L2: self._l2, Level.L3: self._l3, Level.MEM: self._mem}

    def storage_bits(self) -> int:
        """Three counters of ``counter_bits`` bits each (96 bits total)."""
        return self.config.counter_bits * 3

    @property
    def multi_way_fraction(self) -> float:
        if not self.predictions:
            return 0.0
        return self.multi_way_predictions / self.predictions

    def reset(self) -> None:
        self._l2 = 0
        self._l3 = 0
        self._mem = 0
        self.updates = 0
        self.predictions = 0
        self.multi_way_predictions = 0
