"""Popular Levels Detector (PLD).

Section III.D of the paper.  When the LocMap metadata cache misses, waiting
for the LocMap block to arrive from memory would take longer than the lookup
the prediction is meant to accelerate, so a tiny history-based predictor
supplies the level instead.

The PLD keeps one 32-bit counter per predictable level (L2, L3, MEM).  On a
hit to a level, that level's counter is incremented and the others are
decremented (never below zero), which makes the counters track the *recently*
popular levels and prevents saturation.  When a prediction is needed the
counters are sorted:

* the top level is always a target;
* if its counter alone does not reach a confidence threshold, the second level
  is added (two-way parallel lookup);
* if the top two together still do not reach the threshold, all three levels
  are predicted (three-way).

Single-way predictions are the common case; multi-way predictions trade a
little lookup overhead for accuracy when the counters are not strongly biased
toward one level (Section V.A, Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..memory.block import Level, PREDICTABLE_LEVELS


@dataclass
class PLDConfig:
    """Tuning knobs of the Popular Levels Detector.

    Attributes:
        counter_bits: Width of each counter (32 in the paper; the width only
            matters for the storage report since the update rule prevents
            saturation in practice).
        confidence_threshold: Fraction of the total counter mass the selected
            level(s) must reach before the prediction stops adding levels.
        decrement_on_other: How much the non-hitting counters are decremented
            per update (1 in the paper).
    """

    counter_bits: int = 32
    confidence_threshold: float = 0.6
    decrement_on_other: int = 1


class PopularLevelsDetector:
    """Counter-based popular-level predictor used on metadata cache misses."""

    def __init__(self, config: PLDConfig | None = None) -> None:
        self.config = config or PLDConfig()
        self._max_value = (1 << self.config.counter_bits) - 1
        self._counters: Dict[Level, int] = {level: 0 for level in PREDICTABLE_LEVELS}
        self.updates = 0
        self.predictions = 0
        self.multi_way_predictions = 0

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def record_hit(self, level: Level) -> None:
        """Update the counters after a demand access resolved at ``level``."""
        if level is Level.L1:
            return
        if level not in self._counters:
            raise ValueError(f"PLD does not track level {level}")
        self.updates += 1
        for tracked in self._counters:
            if tracked is level:
                self._counters[tracked] = min(self._counters[tracked] + 1,
                                              self._max_value)
            else:
                self._counters[tracked] = max(
                    self._counters[tracked] - self.config.decrement_on_other, 0)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self) -> Tuple[Level, ...]:
        """Return the predicted level(s), ordered closest-to-furthest.

        With no history at all (all counters zero) the detector falls back to
        the conservative sequential choice, L2.
        """
        self.predictions += 1
        total = sum(self._counters.values())
        if total == 0:
            return (Level.L2,)

        ranked: List[Tuple[Level, int]] = sorted(
            self._counters.items(), key=lambda item: (-item[1], int(item[0])))
        threshold = self.config.confidence_threshold * total

        selected: List[Level] = []
        accumulated = 0
        for level, count in ranked:
            selected.append(level)
            accumulated += count
            if accumulated >= threshold:
                break
        if len(selected) > 1:
            self.multi_way_predictions += 1
        # Report targets in hierarchy order so the hierarchy knows which
        # levels are being probed in parallel.
        return tuple(sorted(selected, key=int))

    # ------------------------------------------------------------------
    # Introspection / reporting
    # ------------------------------------------------------------------
    def counters(self) -> Dict[Level, int]:
        """A copy of the current counter values."""
        return dict(self._counters)

    def storage_bits(self) -> int:
        """Three counters of ``counter_bits`` bits each (96 bits total)."""
        return self.config.counter_bits * len(self._counters)

    @property
    def multi_way_fraction(self) -> float:
        if not self.predictions:
            return 0.0
        return self.multi_way_predictions / self.predictions

    def reset(self) -> None:
        for level in self._counters:
            self._counters[level] = 0
        self.updates = 0
        self.predictions = 0
        self.multi_way_predictions = 0
