"""The stable public facade: the blessed entry points, in one module.

External callers used to reach directly into ``repro.sim.engine``,
``repro.sim.store`` and ``repro.service`` internals, which pinned those
modules' layouts forever.  ``repro.api`` re-exports (and thinly wraps)
the supported surface; everything else under ``repro.sim``/
``repro.service`` is internal and may move without notice.  The
migration map:

======================================  ===============================
old import                               blessed replacement
======================================  ===============================
``repro.sim.engine.SimulationEngine``   :func:`run_job` / :func:`run_figure`
                                        (or ``repro.api.SimulationEngine``)
``repro.sim.engine.SimulationJob``      ``repro.api.SimulationJob``
``repro.sim.engine.MixJob``             ``repro.api.MixJob``
``repro.sim.store.ResultStore(path)``   :func:`open_store`
``repro.sim.store.default_store``       :func:`open_store` (no argument)
``repro.service.ServiceClient``         :func:`connect`
``repro.cli.run_experiment``            :func:`run_figure`
``repro.sim.kernels.resolve_kernel``    ``repro.api.resolve_kernel``
======================================  ===============================

Execution knobs travel as an :class:`EngineOptions` (or its
``kernel``/``jobs`` shorthand arguments); environment variables are
resolved in exactly one place, :meth:`EngineOptions.from_env`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Union

from .experiments import EXPERIMENTS, Scale
from .memory.spec import (
    HierarchySpec,
    InterconnectSpec,
    LevelSpec,
    MemorySpec,
    TLBSpec,
    load_hierarchy,
)
from .service import FleetClient, ServiceClient
from .sim.engine import MixJob, SimulationEngine, SimulationJob, \
    apply_hierarchy
from .sim.kernels import DEFAULT_KERNEL, kernel_names, resolve_kernel
from .sim.options import EngineOptions
from .sim.store import ResultStore, open_store

__all__ = [
    "DEFAULT_KERNEL",
    "EngineOptions",
    "FleetClient",
    "HierarchySpec",
    "InterconnectSpec",
    "LevelSpec",
    "MemorySpec",
    "MixJob",
    "ResultStore",
    "Scale",
    "ServiceClient",
    "SimulationEngine",
    "SimulationJob",
    "TLBSpec",
    "apply_hierarchy",
    "connect",
    "kernel_names",
    "load_hierarchy",
    "open_store",
    "resolve_kernel",
    "run_figure",
    "run_job",
]


def run_job(job: Union[SimulationJob, MixJob],
            options: Optional[EngineOptions] = None,
            kernel: Optional[str] = None,
            store: Union[None, bool, str, Path, ResultStore] = None,
            force: bool = False) -> Any:
    """Run one simulation job and return its result object.

    Reads through the results store when one is configured (``store``
    argument, ``options.store``, or ``REPRO_STORE``): previously computed
    jobs are served from disk, fresh ones are simulated and persisted.
    Pass ``store=False`` to force a from-scratch in-process simulation.
    """
    engine = SimulationEngine(store=store, kernel=kernel, options=options)
    return engine.run([job], force=force)[0]


def run_figure(name: str,
               scale: Optional[Scale] = None,
               store: Union[str, Path, ResultStore, None] = None,
               options: Optional[EngineOptions] = None,
               jobs: Optional[int] = None,
               kernel: Optional[str] = None,
               shards: Optional[int] = None,
               sharding: Optional[str] = None,
               hierarchy: Union[str, Path, HierarchySpec, None] = None,
               force: bool = False):
    """Run one named figure/table experiment grid; returns its RunReport.

    ``name`` is a key of :data:`repro.experiments.EXPERIMENTS` (e.g.
    ``"figure2"``, ``"golden"``).  ``store`` defaults to the configured
    results store (``REPRO_STORE``) or ``./results``; stats are written
    under ``<store>/stats/<name>.json`` exactly like ``repro run``.
    ``shards``/``sharding`` select within-job trace sharding (exact mode
    is bit-identical; approx mode bypasses the store — see
    :mod:`repro.sim.options`).  ``hierarchy`` substitutes a declarative
    hierarchy spec (a :class:`HierarchySpec` or a path to its JSON file)
    into every job of the grid, like ``repro run --hierarchy``.
    """
    # Imported lazily: the CLI imports this module's siblings freely and
    # the facade must stay importable without argparse side effects.
    from .cli import run_experiment

    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(f"unknown experiment {name!r}; known: {known}")
    if options is None:
        options = EngineOptions.from_env(kernel=kernel, jobs=jobs,
                                         shards=shards, sharding=sharding)
    else:
        options = options.with_overrides(kernel=kernel, jobs=jobs,
                                         shards=shards, sharding=sharding)
    if hierarchy is None:
        hierarchy = options.hierarchy
    if store is None:
        store = open_store(options.store) or ResultStore("results")
    elif not isinstance(store, ResultStore):
        store = ResultStore(store)
    return run_experiment(name, store, scale or Scale(),
                          jobs=options.jobs, force=force,
                          kernel=options.kernel, shards=options.shards,
                          sharding=options.sharding,
                          hierarchy=hierarchy)


def connect(address: Union[str, int]) -> Union[ServiceClient, FleetClient]:
    """Connect to a running simulation daemon (see ``repro serve``).

    ``address`` is a TCP port, ``host:port``, or a unix socket path —
    the same forms the CLI's ``--remote`` flag accepts.  A
    comma-separated list of those returns a :class:`FleetClient`
    instead: requests route across the fleet members by job-key hash
    and fail over on connection/timeout/overloaded errors.
    """
    text = str(address)
    if "," in text:
        return FleetClient(text)
    return ServiceClient(text)
