"""MOESI coherence-protocol helpers.

The directory-based MOESI protocol used by the paper (Table I: "MOESI
directory; L1 and L2 are inclusive, L3 is non-inclusive") is modelled at the
granularity the level-prediction study needs: which cores hold a block, which
single core (if any) owns a dirty copy, and what state transitions a read or
write from a given core implies.  Data movement itself is functional — the
hierarchy moves blocks between cache objects — so this module concentrates on
the state machine and on deciding when invalidations and ownership transfers
happen, which is what affects the LocMap staleness the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, Optional, Set, Tuple

from .block import CoherenceState


class BusRequest(Enum):
    """Coherence request types observed by the directory."""

    GET_SHARED = "GetS"      # read miss
    GET_MODIFIED = "GetM"    # write miss / upgrade
    PUT_MODIFIED = "PutM"    # dirty writeback
    PUT_SHARED = "PutS"      # clean eviction notification


@dataclass(frozen=True)
class CoherenceDecision:
    """Directory decision for one request.

    Attributes:
        sharers_to_invalidate: Cores whose copies must be invalidated.
        owner_to_downgrade: Core that must supply data and downgrade (M/O->S/I),
            or None if memory/LLC supplies the data.
        new_requestor_state: State the requesting core installs the block in.
        data_from_owner: True when another core's private cache forwards the
            data (cache-to-cache transfer), which has different latency/energy
            than an LLC or memory fill.
    """

    sharers_to_invalidate: FrozenSet[int]
    owner_to_downgrade: Optional[int]
    new_requestor_state: CoherenceState
    data_from_owner: bool


def decide_read(
    requestor: int, sharers: Set[int], owner: Optional[int]
) -> CoherenceDecision:
    """Directory decision for a read (GetS) request.

    If a core owns a dirty copy, it forwards the data and transitions to
    Owned (MOESI allows dirty sharing); the requestor installs Shared.  If the
    block is unshared, the requestor installs Exclusive.
    """
    if owner is not None and owner != requestor:
        return CoherenceDecision(
            sharers_to_invalidate=frozenset(),
            owner_to_downgrade=owner,
            new_requestor_state=CoherenceState.SHARED,
            data_from_owner=True,
        )
    if sharers - {requestor}:
        return CoherenceDecision(
            sharers_to_invalidate=frozenset(),
            owner_to_downgrade=None,
            new_requestor_state=CoherenceState.SHARED,
            data_from_owner=False,
        )
    return CoherenceDecision(
        sharers_to_invalidate=frozenset(),
        owner_to_downgrade=None,
        new_requestor_state=CoherenceState.EXCLUSIVE,
        data_from_owner=False,
    )


def decide_write(
    requestor: int, sharers: Set[int], owner: Optional[int]
) -> CoherenceDecision:
    """Directory decision for a write (GetM) request.

    All other sharers are invalidated; a dirty owner forwards data and
    invalidates its copy.  The requestor installs Modified.
    """
    others = frozenset(core for core in sharers if core != requestor)
    forwarding_owner = owner if owner is not None and owner != requestor else None
    return CoherenceDecision(
        sharers_to_invalidate=others,
        owner_to_downgrade=forwarding_owner,
        new_requestor_state=CoherenceState.MODIFIED,
        data_from_owner=forwarding_owner is not None,
    )


def merge_state_on_fill(
    requested_write: bool, decision: CoherenceDecision
) -> CoherenceState:
    """State to install in the requesting core's private caches."""
    if requested_write:
        return CoherenceState.MODIFIED
    return decision.new_requestor_state


VALID_TRANSITIONS: Tuple[Tuple[CoherenceState, CoherenceState], ...] = (
    (CoherenceState.INVALID, CoherenceState.SHARED),
    (CoherenceState.INVALID, CoherenceState.EXCLUSIVE),
    (CoherenceState.INVALID, CoherenceState.MODIFIED),
    (CoherenceState.SHARED, CoherenceState.MODIFIED),
    (CoherenceState.SHARED, CoherenceState.INVALID),
    (CoherenceState.EXCLUSIVE, CoherenceState.MODIFIED),
    (CoherenceState.EXCLUSIVE, CoherenceState.SHARED),
    (CoherenceState.EXCLUSIVE, CoherenceState.INVALID),
    (CoherenceState.MODIFIED, CoherenceState.OWNED),
    (CoherenceState.MODIFIED, CoherenceState.INVALID),
    (CoherenceState.OWNED, CoherenceState.INVALID),
    (CoherenceState.OWNED, CoherenceState.MODIFIED),
)


def is_valid_transition(old: CoherenceState, new: CoherenceState) -> bool:
    """True when ``old -> new`` is a legal MOESI transition (or a no-op)."""
    if old == new:
        return True
    return (old, new) in VALID_TRANSITIONS
