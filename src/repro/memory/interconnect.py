"""On-chip interconnect latency and contention model.

The private L1/L2 caches talk to the shared LLC and the memory controller over
a shared bus (the paper describes the level predictor as "attached to the L2
bus" and misprediction recovery as "a new transaction over the shared bus").
This module provides a small latency model for those hops plus a utilisation-
based contention penalty for multi-core runs, where LLC contention is one of
the reasons multi-core prediction accuracy and speedup differ from single-core
(Section V.D).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class InterconnectConfig:
    """Per-hop latencies in core cycles.

    Attributes:
        l1_to_l2: Latency from the L1 miss path to the L2 controller.
        l2_to_llc: Latency from L2 (or the bypass path) to the shared LLC.
        llc_to_memory: Latency from the LLC/directory to the memory controller.
        recovery_transaction: Extra latency of the misprediction-recovery
            transaction the directory issues to the correct level.
        contention_per_extra_core: Additional average cycles added to every
            shared-resource hop per active core beyond the first, a simple
            stand-in for queueing at the LLC and bus arbitration.
    """

    l1_to_l2: int = 2
    l2_to_llc: int = 4
    llc_to_memory: int = 6
    recovery_transaction: int = 8
    contention_per_extra_core: float = 1.5


class Interconnect:
    """Latency calculator for hops between hierarchy levels."""

    __slots__ = ("config", "active_cores", "transfers",
                 "recovery_transactions")

    def __init__(self, config: InterconnectConfig | None = None,
                 active_cores: int = 1) -> None:
        self.config = config or InterconnectConfig()
        self.active_cores = max(1, active_cores)
        self.transfers = 0
        self.recovery_transactions = 0

    def _contention(self) -> float:
        extra_cores = self.active_cores - 1
        return extra_cores * self.config.contention_per_extra_core

    def l1_to_l2_latency(self) -> float:
        self.transfers += 1
        return float(self.config.l1_to_l2)

    def l2_to_llc_latency(self) -> float:
        self.transfers += 1
        return self.config.l2_to_llc + self._contention()

    def llc_to_memory_latency(self) -> float:
        self.transfers += 1
        return self.config.llc_to_memory + self._contention()

    def recovery_latency(self) -> float:
        """Latency of the directory-issued recovery transaction."""
        self.recovery_transactions += 1
        return self.config.recovery_transaction + self._contention()

    def cache_to_cache_latency(self) -> float:
        """Latency of a cache-to-cache forward between private caches."""
        self.transfers += 1
        return (
            self.config.l2_to_llc + self.config.l1_to_l2 + self._contention()
        )

    def reset_statistics(self) -> None:
        self.transfers = 0
        self.recovery_transactions = 0
