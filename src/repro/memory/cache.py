"""Set-associative cache model.

Each cache level in the simulated hierarchy is an instance of :class:`Cache`.
The model is functional (it tracks exactly which blocks are resident) with
per-access latency constants, which is what the level-prediction study needs:
the paper's results depend on *where* a block is found and *how many lookups*
were performed on the way, not on bank conflicts or port arbitration.

Features modelled, matching Table I of the paper:

* parallel caches (tag and data accessed together, a single latency) for L1
  and L2, and sequential caches (tag first, then data) for L3, where a tag
  lookup costs ``tag_latency`` and a hit costs ``tag_latency + data_latency``;
* write-back, write-allocate;
* a prefetched bit per line so prefetcher accuracy can be measured;
* an MSHR file per cache with demand reservation for prefetch throttling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .block import (
    AccessType,
    CacheLine,
    CoherenceState,
    DEFAULT_BLOCK_SIZE,
    Level,
    block_address,
)
from .mshr import MSHRFile
from .replacement import ReplacementPolicy, make_replacement_policy


@dataclass
class CacheConfig:
    """Geometry and timing of one cache level.

    Attributes:
        level: Which hierarchy level this cache implements.
        size_bytes: Total capacity.
        associativity: Ways per set.
        block_size: Line size in bytes.
        tag_latency: Cycles to access the tag array.
        data_latency: Additional cycles to access the data array.  For a
            parallel cache the hit latency is ``tag_latency`` alone and
            ``data_latency`` should be zero; for a sequential cache the hit
            latency is ``tag_latency + data_latency``.
        sequential_tag_data: True for a sequential (tag-then-data) cache.
        mshr_entries: Number of MSHR entries.
        mshr_demand_reserve: Fraction of MSHR entries reserved for demand
            accesses (prefetch throttling, Section IV.A).
        replacement: Replacement policy name (see ``repro.memory.replacement``).
        writeback: True for a write-back cache (the only mode the paper uses).
    """

    level: Level
    size_bytes: int
    associativity: int
    block_size: int = DEFAULT_BLOCK_SIZE
    tag_latency: int = 1
    data_latency: int = 0
    sequential_tag_data: bool = False
    mshr_entries: int = 16
    mshr_demand_reserve: float = 0.25
    replacement: str = "lru"
    writeback: bool = True

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.block_size * self.associativity)
        if sets <= 0:
            raise ValueError("cache too small for its associativity/block size")
        return sets

    @property
    def hit_latency(self) -> int:
        """Latency of a hit (tag plus data for sequential caches)."""
        if self.sequential_tag_data:
            return self.tag_latency + self.data_latency
        return self.tag_latency

    @property
    def miss_detect_latency(self) -> int:
        """Latency to discover a miss (always just the tag lookup)."""
        return self.tag_latency


@dataclass(slots=True)
class EvictionInfo:
    """Describes a line pushed out of the cache by a fill or invalidation."""

    block_addr: int
    dirty: bool
    prefetched_unused: bool
    state: CoherenceState


@dataclass
class CacheStats:
    """Per-cache hit/miss counters, split by demand and prefetch traffic."""

    demand_hits: int = 0
    demand_misses: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    writebacks_received: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    prefetch_fills: int = 0
    prefetched_lines_used: int = 0
    prefetched_lines_evicted_unused: int = 0
    invalidations: int = 0

    @property
    def demand_accesses(self) -> int:
        return self.demand_hits + self.demand_misses

    @property
    def accesses(self) -> int:
        return self.demand_accesses + self.prefetch_hits + self.prefetch_misses

    @property
    def demand_miss_ratio(self) -> float:
        total = self.demand_accesses
        return self.demand_misses / total if total else 0.0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


class Cache:
    """A single set-associative cache level.

    The cache exposes a small functional API used by the hierarchy:

    * :meth:`lookup` — probe the tag array, update replacement state on a hit.
    * :meth:`fill` — install a block, returning the eviction it caused.
    * :meth:`invalidate` — remove a block (coherence or inclusion victims).
    * :meth:`contains` — probe without side effects (used by the directory and
      by the oracle/ideal predictors).
    """

    def __init__(self, config: CacheConfig, name: Optional[str] = None) -> None:
        self.config = config
        self.name = name or config.level.name
        self._num_sets = config.num_sets
        self._lines: List[List[Optional[CacheLine]]] = [
            [None] * config.associativity for _ in range(self._num_sets)
        ]
        # Per-set index from tag to way for O(1) lookups; kept in sync by
        # fill() and invalidate().  Purely an implementation accelerator —
        # real hardware compares all tags in parallel.
        self._tag_to_way: List[Dict[int, int]] = [
            {} for _ in range(self._num_sets)
        ]
        # Shared all-valid flag list used on the common fast path where every
        # way in the set already holds a valid line.
        self._all_valid = [True] * config.associativity
        self._policy: ReplacementPolicy = make_replacement_policy(
            config.replacement, self._num_sets, config.associativity
        )
        self.mshrs = MSHRFile(
            config.mshr_entries, demand_reserve_fraction=config.mshr_demand_reserve
        )
        self.stats = CacheStats()
        self._clock = 0

    # ------------------------------------------------------------------
    # Address decomposition
    # ------------------------------------------------------------------
    def set_index(self, block_addr: int) -> int:
        return (block_addr // self.config.block_size) % self._num_sets

    def tag_of(self, block_addr: int) -> int:
        return block_addr // (self.config.block_size * self._num_sets)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def _find(self, block_addr: int) -> Tuple[int, Optional[int]]:
        """Return (set_index, way) of the block, way is None on a miss."""
        set_index = self.set_index(block_addr)
        tag = self.tag_of(block_addr)
        return set_index, self._tag_to_way[set_index].get(tag)

    def contains(self, address: int) -> bool:
        """Probe for a block without updating replacement state."""
        block_addr = block_address(address, self.config.block_size)
        _, way = self._find(block_addr)
        return way is not None

    def get_line(self, address: int) -> Optional[CacheLine]:
        """Return the resident line for ``address`` (no side effects)."""
        block_addr = block_address(address, self.config.block_size)
        set_index, way = self._find(block_addr)
        if way is None:
            return None
        return self._lines[set_index][way]

    # ------------------------------------------------------------------
    # Main operations
    # ------------------------------------------------------------------
    def lookup(
        self, address: int, access_type: AccessType = AccessType.LOAD
    ) -> bool:
        """Probe the cache for a demand or prefetch access.

        Returns True on a hit.  A hit updates replacement state, marks the
        line dirty for stores, and clears the prefetched bit (the prefetch has
        proven useful).
        """
        self._clock += 1
        block_addr = block_address(address, self.config.block_size)
        set_index, way = self._find(block_addr)
        hit = way is not None
        if hit:
            line = self._lines[set_index][way]
            line.last_touch = self._clock
            self._policy.on_access(set_index, way)
            if access_type is AccessType.STORE:
                line.dirty = True
                line.state = CoherenceState.MODIFIED
            if line.prefetched and access_type.is_demand:
                line.prefetched = False
                self.stats.prefetched_lines_used += 1
        self._record_lookup(access_type, hit)
        return hit

    def _record_lookup(self, access_type: AccessType, hit: bool) -> None:
        if access_type is AccessType.PREFETCH:
            if hit:
                self.stats.prefetch_hits += 1
            else:
                self.stats.prefetch_misses += 1
        else:
            if hit:
                self.stats.demand_hits += 1
            else:
                self.stats.demand_misses += 1

    def fill(
        self,
        address: int,
        access_type: AccessType = AccessType.LOAD,
        dirty: bool = False,
        state: CoherenceState = CoherenceState.EXCLUSIVE,
    ) -> Optional[EvictionInfo]:
        """Install a block, evicting a victim if the set is full.

        Returns information about the evicted line (or ``None`` when an
        invalid way was available or the block was already resident).
        """
        self._clock += 1
        block_addr = block_address(address, self.config.block_size)
        set_index, way = self._find(block_addr)
        if way is not None:
            # Already resident (e.g. a prefetch raced a demand fill); refresh.
            line = self._lines[set_index][way]
            line.dirty = line.dirty or dirty
            line.last_touch = self._clock
            self._policy.on_access(set_index, way)
            return None

        lines = self._lines[set_index]
        if len(self._tag_to_way[set_index]) == self.config.associativity:
            valid_flags = self._all_valid
        else:
            valid_flags = [line is not None and line.valid for line in lines]
        victim_way = self._policy.victim(set_index, valid_flags)
        victim = lines[victim_way]
        eviction: Optional[EvictionInfo] = None
        if victim is not None and victim.valid:
            eviction = EvictionInfo(
                block_addr=victim.block_addr,
                dirty=victim.dirty,
                prefetched_unused=victim.prefetched,
                state=victim.state,
            )
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
            if victim.prefetched:
                self.stats.prefetched_lines_evicted_unused += 1
            self._tag_to_way[set_index].pop(victim.tag, None)

        new_line = CacheLine(
            tag=self.tag_of(block_addr),
            block_addr=block_addr,
            state=state,
            dirty=dirty,
            prefetched=access_type is AccessType.PREFETCH,
            last_touch=self._clock,
            inserted_at=self._clock,
        )
        lines[victim_way] = new_line
        self._tag_to_way[set_index][new_line.tag] = victim_way
        self._policy.on_fill(set_index, victim_way)
        self.stats.fills += 1
        if access_type is AccessType.PREFETCH:
            self.stats.prefetch_fills += 1
        return eviction

    def invalidate(self, address: int) -> Optional[EvictionInfo]:
        """Remove a block (coherence invalidation or inclusion victim)."""
        block_addr = block_address(address, self.config.block_size)
        set_index, way = self._find(block_addr)
        if way is None:
            return None
        line = self._lines[set_index][way]
        info = EvictionInfo(
            block_addr=line.block_addr,
            dirty=line.dirty,
            prefetched_unused=line.prefetched,
            state=line.state,
        )
        self._lines[set_index][way] = None
        self._tag_to_way[set_index].pop(line.tag, None)
        self._policy.on_invalidate(set_index, way)
        self.stats.invalidations += 1
        return info

    def mark_dirty(self, address: int) -> bool:
        """Mark a resident block dirty (used when a store hits)."""
        line = self.get_line(address)
        if line is None:
            return False
        line.dirty = True
        line.state = CoherenceState.MODIFIED
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def resident_blocks(self) -> List[int]:
        """Block addresses of every valid line (used by tests and D2D)."""
        blocks = []
        for cache_set in self._lines:
            for line in cache_set:
                if line is not None and line.valid:
                    blocks.append(line.block_addr)
        return blocks

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return len(self.resident_blocks())

    @property
    def capacity_blocks(self) -> int:
        return self._num_sets * self.config.associativity

    def reset_statistics(self) -> None:
        self.stats.reset()
        self.mshrs.reset_statistics()
