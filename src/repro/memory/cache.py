"""Set-associative cache model.

Each cache level in the simulated hierarchy is an instance of :class:`Cache`.
The model is functional (it tracks exactly which blocks are resident) with
per-access latency constants, which is what the level-prediction study needs:
the paper's results depend on *where* a block is found and *how many lookups*
were performed on the way, not on bank conflicts or port arbitration.

Features modelled, matching Table I of the paper:

* parallel caches (tag and data accessed together, a single latency) for L1
  and L2, and sequential caches (tag first, then data) for L3, where a tag
  lookup costs ``tag_latency`` and a hit costs ``tag_latency + data_latency``;
* write-back, write-allocate;
* a prefetched bit per line so prefetcher accuracy can be measured;
* an MSHR file per cache with demand reservation for prefetch throttling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .block import (
    AccessType,
    CacheLine,
    CoherenceState,
    DEFAULT_BLOCK_SIZE,
    Level,
    block_address,
)
from .mshr import MSHRFile
from .replacement import ReplacementPolicy, make_replacement_policy


@dataclass
class CacheConfig:
    """Geometry and timing of one cache level.

    Attributes:
        level: Which hierarchy level this cache implements.
        size_bytes: Total capacity.
        associativity: Ways per set.
        block_size: Line size in bytes.
        tag_latency: Cycles to access the tag array.
        data_latency: Additional cycles to access the data array.  For a
            parallel cache the hit latency is ``tag_latency`` alone and
            ``data_latency`` should be zero; for a sequential cache the hit
            latency is ``tag_latency + data_latency``.
        sequential_tag_data: True for a sequential (tag-then-data) cache.
        mshr_entries: Number of MSHR entries.
        mshr_demand_reserve: Fraction of MSHR entries reserved for demand
            accesses (prefetch throttling, Section IV.A).
        replacement: Replacement policy name (see ``repro.memory.replacement``).
        writeback: True for a write-back cache (the only mode the paper uses).
    """

    level: Level
    size_bytes: int
    associativity: int
    block_size: int = DEFAULT_BLOCK_SIZE
    tag_latency: int = 1
    data_latency: int = 0
    sequential_tag_data: bool = False
    mshr_entries: int = 16
    mshr_demand_reserve: float = 0.25
    replacement: str = "lru"
    writeback: bool = True

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.block_size * self.associativity)
        if sets <= 0:
            raise ValueError("cache too small for its associativity/block size")
        return sets

    @property
    def hit_latency(self) -> int:
        """Latency of a hit (tag plus data for sequential caches)."""
        if self.sequential_tag_data:
            return self.tag_latency + self.data_latency
        return self.tag_latency

    @property
    def miss_detect_latency(self) -> int:
        """Latency to discover a miss (always just the tag lookup)."""
        return self.tag_latency


@dataclass(slots=True)
class EvictionInfo:
    """Describes a line pushed out of the cache by a fill or invalidation."""

    block_addr: int
    dirty: bool
    prefetched_unused: bool
    state: CoherenceState


@dataclass(slots=True)
class CacheStats:
    """Per-cache hit/miss counters, split by demand and prefetch traffic."""

    demand_hits: int = 0
    demand_misses: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    writebacks_received: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    prefetch_fills: int = 0
    prefetched_lines_used: int = 0
    prefetched_lines_evicted_unused: int = 0
    invalidations: int = 0

    @property
    def demand_accesses(self) -> int:
        return self.demand_hits + self.demand_misses

    @property
    def accesses(self) -> int:
        return self.demand_accesses + self.prefetch_hits + self.prefetch_misses

    @property
    def demand_miss_ratio(self) -> float:
        total = self.demand_accesses
        return self.demand_misses / total if total else 0.0

    def reset(self) -> None:
        for f in self.__dataclass_fields__:
            setattr(self, f, 0)


class Cache:
    """A single set-associative cache level.

    The cache exposes a small functional API used by the hierarchy:

    * :meth:`lookup` — probe the tag array, update replacement state on a hit.
    * :meth:`fill` — install a block, returning the eviction it caused.
    * :meth:`invalidate` — remove a block (coherence or inclusion victims).
    * :meth:`contains` — probe without side effects (used by the directory and
      by the oracle/ideal predictors).
    """

    __slots__ = ("config", "name", "_num_sets", "_associativity", "_lines",
                 "_tag_to_way", "_all_valid", "_block_shift", "_set_mask",
                 "_tag_shift", "_addr_mask", "_policy", "_lru_timestamps",
                 "mshrs", "stats", "_clock")

    def __init__(self, config: CacheConfig, name: Optional[str] = None) -> None:
        self.config = config
        self.name = name or config.level.name
        self._num_sets = config.num_sets
        self._associativity = config.associativity
        self._lines: List[List[Optional[CacheLine]]] = [
            [None] * config.associativity for _ in range(self._num_sets)
        ]
        # Per-set index from tag to way for O(1) lookups; kept in sync by
        # fill() and invalidate().  Purely an implementation accelerator —
        # real hardware compares all tags in parallel.
        self._tag_to_way: List[Dict[int, int]] = [
            {} for _ in range(self._num_sets)
        ]
        # Shared all-valid flag list used on the common fast path where every
        # way in the set already holds a valid line.
        self._all_valid = [True] * config.associativity
        # Precomputed shift/mask address decomposition for the (universal in
        # practice) power-of-two geometries; ``_block_shift < 0`` selects the
        # general divide/modulo fallback.
        block_size = config.block_size
        if (block_size & (block_size - 1)) == 0 \
                and (self._num_sets & (self._num_sets - 1)) == 0:
            self._block_shift = block_size.bit_length() - 1
            self._set_mask = self._num_sets - 1
            self._tag_shift = self._block_shift + self._num_sets.bit_length() - 1
            self._addr_mask = ~(block_size - 1)
        else:  # pragma: no cover - no paper configuration is non-power-of-two
            self._block_shift = -1
            self._set_mask = 0
            self._tag_shift = 0
            self._addr_mask = 0
        self._policy: ReplacementPolicy = make_replacement_policy(
            config.replacement, self._num_sets, config.associativity
        )
        # LRU (the paper's policy everywhere) is special-cased on the hot
        # paths: its timestamp update is two list indexings, far cheaper
        # inlined than as a method call per touch.
        from .replacement import LRUPolicy
        self._lru_timestamps = (self._policy._timestamps
                                if type(self._policy) is LRUPolicy else None)
        self.mshrs = MSHRFile(
            config.mshr_entries, demand_reserve_fraction=config.mshr_demand_reserve
        )
        self.stats = CacheStats()
        self._clock = 0

    # ------------------------------------------------------------------
    # Address decomposition
    # ------------------------------------------------------------------
    def set_index(self, block_addr: int) -> int:
        if self._block_shift >= 0:
            return (block_addr >> self._block_shift) & self._set_mask
        return (block_addr // self.config.block_size) % self._num_sets

    def tag_of(self, block_addr: int) -> int:
        if self._block_shift >= 0:
            return block_addr >> self._tag_shift
        return block_addr // (self.config.block_size * self._num_sets)

    def block_of(self, address: int) -> int:
        """Block-aligned address of ``address`` (precomputed mask)."""
        if self._block_shift >= 0:
            return address & self._addr_mask
        return block_address(address, self.config.block_size)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def _find(self, block_addr: int) -> Tuple[int, Optional[int]]:
        """Return (set_index, way) of the block, way is None on a miss."""
        set_index = self.set_index(block_addr)
        tag = self.tag_of(block_addr)
        return set_index, self._tag_to_way[set_index].get(tag)

    def contains(self, address: int) -> bool:
        """Probe for a block without updating replacement state."""
        return self.contains_block(self.block_of(address))

    def contains_block(self, block_addr: int) -> bool:
        """:meth:`contains` for a pre-aligned block address (hot path)."""
        if self._block_shift >= 0:
            return (block_addr >> self._tag_shift) in self._tag_to_way[
                (block_addr >> self._block_shift) & self._set_mask]
        set_index, way = self._find(block_addr)
        return way is not None

    def get_line(self, address: int) -> Optional[CacheLine]:
        """Return the resident line for ``address`` (no side effects)."""
        return self.peek_line(self.block_of(address))

    def peek_line(self, block_addr: int) -> Optional[CacheLine]:
        """:meth:`get_line` for a pre-aligned block address (hot path)."""
        set_index, way = self._find(block_addr)
        if way is None:
            return None
        return self._lines[set_index][way]

    # ------------------------------------------------------------------
    # Main operations
    # ------------------------------------------------------------------
    def lookup(
        self, address: int, access_type: AccessType = AccessType.LOAD
    ) -> bool:
        """Probe the cache for a demand or prefetch access.

        Returns True on a hit.  A hit updates replacement state, marks the
        line dirty for stores, and clears the prefetched bit (the prefetch has
        proven useful).
        """
        hit, _ = self.access_block(self.block_of(address), access_type)
        return hit

    def access_block(
        self, block_addr: int, access_type: AccessType = AccessType.LOAD
    ) -> Tuple[bool, bool]:
        """:meth:`lookup` for a pre-aligned block address (hot path).

        Returns ``(hit, was_prefetched)`` where ``was_prefetched`` reports
        whether the line's prefetched bit was set *before* this access cleared
        it — the signal the hierarchy feeds back to the prefetcher's accuracy
        accounting.
        """
        self._clock += 1
        stats = self.stats
        if self._block_shift >= 0:
            set_index = (block_addr >> self._block_shift) & self._set_mask
            way = self._tag_to_way[set_index].get(block_addr >> self._tag_shift)
        else:
            set_index, way = self._find(block_addr)
        was_prefetched = False
        if way is not None:
            line = self._lines[set_index][way]
            line.last_touch = self._clock
            lru = self._lru_timestamps
            if lru is not None:
                policy = self._policy
                policy._clock += 1
                lru[set_index][way] = policy._clock
            else:
                self._policy.on_access(set_index, way)
            if access_type is AccessType.STORE:
                line.dirty = True
                line.state = CoherenceState.MODIFIED
            if line.prefetched:
                was_prefetched = True
                if (access_type is AccessType.LOAD
                        or access_type is AccessType.STORE):
                    line.prefetched = False
                    stats.prefetched_lines_used += 1
            if access_type is AccessType.PREFETCH:
                stats.prefetch_hits += 1
            else:
                stats.demand_hits += 1
            return True, was_prefetched
        if access_type is AccessType.PREFETCH:
            stats.prefetch_misses += 1
        else:
            stats.demand_misses += 1
        return False, False

    def fill(
        self,
        address: int,
        access_type: AccessType = AccessType.LOAD,
        dirty: bool = False,
        state: CoherenceState = CoherenceState.EXCLUSIVE,
    ) -> Optional[EvictionInfo]:
        """Install a block, evicting a victim if the set is full.

        Returns information about the evicted line (or ``None`` when an
        invalid way was available or the block was already resident).
        """
        return self.fill_block(self.block_of(address), access_type,
                               dirty=dirty, state=state)

    def fill_block(
        self,
        block_addr: int,
        access_type: AccessType = AccessType.LOAD,
        dirty: bool = False,
        state: CoherenceState = CoherenceState.EXCLUSIVE,
    ) -> Optional[EvictionInfo]:
        """:meth:`fill` for a pre-aligned block address (hot path).

        Evicted :class:`CacheLine` objects are recycled in place for the new
        block — per-access allocation on the fill path is limited to the
        :class:`EvictionInfo` snapshot of the victim.
        """
        self._clock += 1
        clock = self._clock
        if self._block_shift >= 0:
            set_index = (block_addr >> self._block_shift) & self._set_mask
            tag = block_addr >> self._tag_shift
        else:
            set_index = self.set_index(block_addr)
            tag = self.tag_of(block_addr)
        tag_to_way = self._tag_to_way[set_index]
        lines = self._lines[set_index]
        way = tag_to_way.get(tag)
        lru = self._lru_timestamps
        if way is not None:
            # Already resident (e.g. a prefetch raced a demand fill); refresh.
            line = lines[way]
            line.dirty = line.dirty or dirty
            line.last_touch = clock
            if lru is not None:
                policy = self._policy
                policy._clock += 1
                lru[set_index][way] = policy._clock
            else:
                self._policy.on_access(set_index, way)
            return None

        stats = self.stats
        if len(tag_to_way) == self._associativity:
            if lru is not None:
                stamps = lru[set_index]
                victim_way = stamps.index(min(stamps))
            else:
                victim_way = self._policy.victim(set_index, self._all_valid)
        else:
            # At least one way is invalid and every policy prefers the first
            # invalid way, so skip the policy (and the flag-list allocation).
            victim_way = 0
            for way, line in enumerate(lines):
                if line is None or line.state is CoherenceState.INVALID:
                    victim_way = way
                    break
        victim = lines[victim_way]
        eviction: Optional[EvictionInfo] = None
        if victim is not None and victim.state is not CoherenceState.INVALID:
            eviction = EvictionInfo(
                block_addr=victim.block_addr,
                dirty=victim.dirty,
                prefetched_unused=victim.prefetched,
                state=victim.state,
            )
            stats.evictions += 1
            if victim.dirty:
                stats.dirty_evictions += 1
            if victim.prefetched:
                stats.prefetched_lines_evicted_unused += 1
            tag_to_way.pop(victim.tag, None)
            # Recycle the victim line object for the incoming block.
            victim.tag = tag
            victim.block_addr = block_addr
            victim.state = state
            victim.dirty = dirty
            victim.prefetched = access_type is AccessType.PREFETCH
            victim.last_touch = clock
            victim.inserted_at = clock
        else:
            lines[victim_way] = CacheLine(
                tag=tag,
                block_addr=block_addr,
                state=state,
                dirty=dirty,
                prefetched=access_type is AccessType.PREFETCH,
                last_touch=clock,
                inserted_at=clock,
            )
        tag_to_way[tag] = victim_way
        if lru is not None:
            policy = self._policy
            policy._clock += 1
            lru[set_index][victim_way] = policy._clock
        else:
            self._policy.on_fill(set_index, victim_way)
        stats.fills += 1
        if access_type is AccessType.PREFETCH:
            stats.prefetch_fills += 1
        return eviction

    def prefetch_install(self, block_addr: int
                         ) -> Tuple[bool, Optional[EvictionInfo]]:
        """Install a prefetched block unless it is already resident.

        Unlike :meth:`fill_block` with ``AccessType.PREFETCH``, a resident
        block is left completely untouched (no replacement-state refresh), the
        behaviour the hierarchy's prefetch-issue path requires.  Returns
        ``(installed, eviction)``.
        """
        if self._block_shift >= 0:
            set_index = (block_addr >> self._block_shift) & self._set_mask
            tag = block_addr >> self._tag_shift
        else:
            set_index = self.set_index(block_addr)
            tag = self.tag_of(block_addr)
        if tag in self._tag_to_way[set_index]:
            return False, None
        return True, self.fill_block(block_addr, AccessType.PREFETCH)

    def invalidate(self, address: int) -> Optional[EvictionInfo]:
        """Remove a block (coherence invalidation or inclusion victim)."""
        block_addr = self.block_of(address)
        set_index, way = self._find(block_addr)
        if way is None:
            return None
        line = self._lines[set_index][way]
        info = EvictionInfo(
            block_addr=line.block_addr,
            dirty=line.dirty,
            prefetched_unused=line.prefetched,
            state=line.state,
        )
        self._lines[set_index][way] = None
        self._tag_to_way[set_index].pop(line.tag, None)
        self._policy.on_invalidate(set_index, way)
        self.stats.invalidations += 1
        return info

    def mark_dirty(self, address: int) -> bool:
        """Mark a resident block dirty (used when a store hits)."""
        line = self.get_line(address)
        if line is None:
            return False
        line.dirty = True
        line.state = CoherenceState.MODIFIED
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def resident_blocks(self) -> List[int]:
        """Block addresses of every valid line (used by tests and D2D)."""
        blocks = []
        for cache_set in self._lines:
            for line in cache_set:
                if line is not None and line.valid:
                    blocks.append(line.block_addr)
        return blocks

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return len(self.resident_blocks())

    @property
    def capacity_blocks(self) -> int:
        return self._num_sets * self.config.associativity

    def reset_statistics(self) -> None:
        self.stats.reset()
        self.mshrs.reset_statistics()
