"""DDR4-like main-memory timing model.

The paper's system uses a single DDR4-2400 x64 channel with Micron
MT40A1G8-style timings in an 8x8 configuration (Table I).  The level-prediction
results only need main-memory latency that (a) is substantially larger than the
LLC latency and (b) varies plausibly with row-buffer locality and bank-level
parallelism, so this model captures:

* address mapping to channel/rank/bank/row/column,
* open-page row-buffer policy with row hits, misses and conflicts,
* a simple bank busy model that adds queueing delay when a bank is reused
  before its previous access completes,
* refresh-interval overhead folded into an average penalty.

Timings are expressed in memory-controller cycles and converted to core cycles
with the core-to-memory frequency ratio (4 GHz core vs 1200 MHz DRAM clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class DRAMConfig:
    """Timing and geometry of the memory channel.

    The defaults correspond to DDR4-2400 (tCK = 0.833 ns) with CL=17,
    tRCD=17, tRP=17, tRAS=39 memory cycles, a 64-byte burst (BL8 on a x64
    channel = 4 memory clocks), 16 banks, and a 4 GHz core clock.
    """

    core_frequency_ghz: float = 4.0
    dram_frequency_mhz: float = 1200.0
    cas_latency: int = 17
    trcd: int = 17
    trp: int = 17
    tras: int = 39
    burst_cycles: int = 4
    num_banks: int = 16
    num_ranks: int = 1
    row_size_bytes: int = 8192
    channel_capacity_gb: int = 16
    controller_latency_core_cycles: int = 15
    refresh_penalty_core_cycles: float = 1.0
    #: Bank queueing delay is bounded to this fraction of one bank occupancy
    #: (the functional front end has no issue backpressure, see access()).
    max_queue_fraction: float = 0.5

    @property
    def core_cycles_per_dram_cycle(self) -> float:
        return (self.core_frequency_ghz * 1000.0) / self.dram_frequency_mhz


@dataclass
class DRAMStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    total_latency_core_cycles: float = 0.0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_ratio(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0

    @property
    def average_latency(self) -> float:
        return (
            self.total_latency_core_cycles / self.accesses if self.accesses else 0.0
        )

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.total_latency_core_cycles = 0.0


class DRAMModel:
    """Open-page DRAM channel with per-bank row-buffer state."""

    __slots__ = ("config", "_ratio", "_num_banks", "_open_row",
                 "_bank_free_at", "stats", "_now")

    def __init__(self, config: DRAMConfig | None = None) -> None:
        self.config = config or DRAMConfig()
        self._ratio = self.config.core_cycles_per_dram_cycle
        self._num_banks = self.config.num_banks * self.config.num_ranks
        # Per-bank open row and the core-cycle time the bank becomes free,
        # indexed by bank id (lists beat dicts for this dense, small space).
        self._open_row: List[Optional[int]] = [None] * self._num_banks
        self._bank_free_at: List[float] = [0.0] * self._num_banks
        self.stats = DRAMStats()
        self._now = 0.0

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def map_address(self, address: int) -> Tuple[int, int]:
        """Map a physical address to (bank, row)."""
        cfg = self.config
        row_index = address // cfg.row_size_bytes
        bank = row_index % (cfg.num_banks * cfg.num_ranks)
        row = row_index // (cfg.num_banks * cfg.num_ranks)
        return bank, row

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def access(self, address: int, is_write: bool = False,
               current_cycle: float | None = None) -> float:
        """Service one 64-byte access and return its latency in core cycles.

        Args:
            address: Physical byte address.
            is_write: True for writebacks.
            current_cycle: Core-cycle timestamp of the request; when omitted an
                internal monotonically advancing clock is used.
        """
        cfg = self.config
        ratio = self._ratio
        if current_cycle is None:
            # Without an external clock, requests are assumed to arrive at the
            # channel's peak burst rate (one 64 B transfer per burst window),
            # which is the densest request stream a real core could sustain.
            self._now += cfg.burst_cycles * ratio
            current_cycle = self._now
        else:
            self._now = max(self._now, current_cycle)

        row_index = address // cfg.row_size_bytes
        banks = self._num_banks
        bank = row_index % banks
        row = row_index // banks

        stats = self.stats
        open_row = self._open_row[bank]
        if open_row is None:
            # Bank closed: activate then read/write.
            dram_cycles = cfg.trcd + cfg.cas_latency + cfg.burst_cycles
            stats.row_misses += 1
        elif open_row == row:
            dram_cycles = cfg.cas_latency + cfg.burst_cycles
            stats.row_hits += 1
        else:
            # Row conflict: precharge, activate, access.
            dram_cycles = cfg.trp + cfg.trcd + cfg.cas_latency + cfg.burst_cycles
            stats.row_conflicts += 1
        self._open_row[bank] = row

        access_core_cycles = dram_cycles * ratio

        # Bank-level contention: back-to-back accesses to the same bank wait
        # for it to free up.  The wait is bounded by one full bank occupancy
        # because the functional front end has no issue backpressure — without
        # the bound a memory-bound trace would accumulate unbounded queueing
        # delay that no real (ROB-limited) core could generate.
        free_at = self._bank_free_at[bank]
        queue_delay = min(max(0.0, free_at - current_cycle),
                          access_core_cycles * cfg.max_queue_fraction)
        finish = current_cycle + queue_delay + access_core_cycles
        self._bank_free_at[bank] = finish

        latency = (
            cfg.controller_latency_core_cycles
            + queue_delay
            + access_core_cycles
            + cfg.refresh_penalty_core_cycles
        )

        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        stats.total_latency_core_cycles += latency
        return latency

    def idle_latency(self) -> float:
        """Latency of an access to an idle, closed bank (used for reporting)."""
        cfg = self.config
        dram_cycles = cfg.trcd + cfg.cas_latency + cfg.burst_cycles
        return (
            cfg.controller_latency_core_cycles
            + dram_cycles * cfg.core_cycles_per_dram_cycle
            + cfg.refresh_penalty_core_cycles
        )

    def reset_statistics(self) -> None:
        self.stats.reset()
