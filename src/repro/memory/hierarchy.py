"""Three-level memory hierarchy with sequential and level-predicted lookup.

This is the central substrate of the reproduction: a functional model of the
paper's simulated system (Table I) — private L1 and L2, a shared non-inclusive
L3 with a collocated directory, a DDR4 channel, per-level prefetchers with
throttling, TLBs — plus the *level-predicted* lookup path that the paper adds
on the L1 miss path.

The model is trace driven: :meth:`CoreMemoryHierarchy.access` services one
memory reference, returning an :class:`AccessResult` with the load latency,
the levels looked up (for energy), the predicted levels and the misprediction
outcome.  The out-of-order core model (``repro.cpu``) converts these per-access
latencies into cycles and IPC.

Timing model
============

For a block found at level ``A`` with prediction set ``P``:

* Levels closer than ``A`` that appear in ``P`` are looked up (energy + port
  pressure) but, because predicted levels are probed in parallel, they do not
  serialise the path unless the prediction *is* the sequential fallback.
* Levels closer than ``A`` that are *not* in ``P`` are skipped entirely: no tag
  energy, no added latency beyond the bus hop (an MSHR entry is still
  allocated on the way, as the paper requires for the fill path).
* Bypassing the private L2 when it actually holds the block is the *harmful*
  case: the collocated directory detects it during the LLC tag access and a
  recovery transaction re-issues the request to L2 (Section III.E).
* Predicting main memory launches the DRAM access as soon as the request
  reaches the LLC/directory (Figure 6(c)); the directory check overlaps with
  the DRAM access, so a correct MEM prediction hides the LLC tag latency.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from ..energy.model import EnergyAccount, EnergyParameters
from ..prefetch.base import NullPrefetcher, PrefetchAccess, Prefetcher
from .block import (
    AccessResult,
    AccessType,
    CoherenceState,
    Level,
    MemoryAccess,
    block_address,
)
from .cache import Cache, CacheConfig, EvictionInfo
from .directory import Directory
from .dram import DRAMConfig, DRAMModel
from .interconnect import Interconnect, InterconnectConfig
from .tlb import TLBHierarchy

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from ..core.base import LevelPredictor, Prediction


@dataclass
class HierarchyConfig:
    """Configuration of the full hierarchy (Table I defaults).

    Attributes:
        l1 / l2 / l3: Per-level cache geometries and latencies.
        dram: DRAM channel configuration.
        interconnect: Hop latencies between levels.
        memory_speculative_launch: When True, a prediction that includes MEM
            launches the DRAM access in parallel with the LLC tag/directory
            check (the paper's design); when False the directory check is
            serialised before memory (conservative ablation).
        parallel_port_penalty: Extra cycles charged when a multi-way
            prediction probes more than one on-chip cache in parallel,
            modelling tag-port pressure (the nas.is effect in Section V.C).
        prefetch_inflight_window: Number of recent demand accesses used to
            approximate MSHR occupancy for prefetch throttling.
        ideal_miss_latency: The paper's "Ideal" system: every L1 miss gets a
            perfect, zero-cost level prediction, so no cycle is ever spent on
            a lookup that does not hold the block (Section IV.C).  Data
            movement, energy and statistics behave exactly like the baseline.
    """

    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        level=Level.L1, size_bytes=32 * 1024, associativity=4,
        tag_latency=4, data_latency=0, sequential_tag_data=False,
        mshr_entries=16, mshr_demand_reserve=0.25))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        level=Level.L2, size_bytes=256 * 1024, associativity=8,
        tag_latency=12, data_latency=0, sequential_tag_data=False,
        mshr_entries=32, mshr_demand_reserve=0.25))
    l3: CacheConfig = field(default_factory=lambda: CacheConfig(
        level=Level.L3, size_bytes=2 * 1024 * 1024, associativity=16,
        tag_latency=20, data_latency=35, sequential_tag_data=True,
        mshr_entries=64, mshr_demand_reserve=0.25))
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    memory_speculative_launch: bool = True
    parallel_port_penalty: float = 2.0
    prefetch_inflight_window: int = 32
    ideal_miss_latency: bool = False

    @staticmethod
    def paper_single_core() -> "HierarchyConfig":
        """The single-core configuration of Table I (2 MB LLC)."""
        return HierarchyConfig()

    @staticmethod
    def paper_multi_core() -> "HierarchyConfig":
        """The quad-core configuration of Table I (8 MB shared LLC)."""
        config = HierarchyConfig()
        config.l3 = CacheConfig(
            level=Level.L3, size_bytes=8 * 1024 * 1024, associativity=16,
            tag_latency=20, data_latency=35, sequential_tag_data=True,
            mshr_entries=64, mshr_demand_reserve=0.25)
        return config


@dataclass
class HierarchyStats:
    """Per-core counters for latency, misses and prediction behaviour."""

    demand_accesses: int = 0
    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    memory_accesses: int = 0
    remote_cache_hits: int = 0
    total_demand_latency: float = 0.0
    miss_latency: float = 0.0
    predictions: int = 0
    recoveries: int = 0
    parallel_cache_probes: int = 0
    speculative_dram_launches: int = 0
    cancelled_dram_launches: int = 0
    prefetches_issued: int = 0
    prefetches_dropped_mshr: int = 0

    @property
    def l1_misses(self) -> int:
        return self.demand_accesses - self.l1_hits

    @property
    def l2_misses(self) -> int:
        """Demand accesses that missed both L1 and L2."""
        return self.l1_misses - self.l2_hits

    @property
    def l3_misses(self) -> int:
        return self.memory_accesses

    @property
    def average_memory_access_latency(self) -> float:
        if not self.demand_accesses:
            return 0.0
        return self.total_demand_latency / self.demand_accesses

    @property
    def average_miss_latency(self) -> float:
        misses = self.l1_misses
        return self.miss_latency / misses if misses else 0.0

    def reset(self) -> None:
        for name, value in vars(self).items():
            setattr(self, name, 0.0 if isinstance(value, float) else 0)


class SharedMemorySystem:
    """Resources shared by every core: the LLC, directory, DRAM and the
    LLC prefetcher."""

    def __init__(self, config: HierarchyConfig, num_cores: int = 1,
                 llc_prefetcher: Optional[Prefetcher] = None,
                 energy_params: Optional[EnergyParameters] = None) -> None:
        self.config = config
        self.num_cores = num_cores
        self.l3 = Cache(config.l3, name="L3")
        self.directory = Directory(num_cores=num_cores)
        self.dram = DRAMModel(config.dram)
        self.llc_prefetcher = llc_prefetcher or NullPrefetcher()
        self.energy_params = energy_params or EnergyParameters()
        self.dram_writebacks = 0

    def l3_eviction_to_memory(self, eviction: EvictionInfo,
                              account: EnergyAccount) -> None:
        """Handle an LLC eviction: dirty lines are written back to DRAM."""
        if eviction.dirty:
            self.dram.access(eviction.block_addr, is_write=True)
            account.charge("dram", self.energy_params.dram_access_nj)
            self.dram_writebacks += 1
        if eviction.prefetched_unused:
            self.llc_prefetcher.record_useless()


class CoreMemoryHierarchy:
    """The per-core view of the memory system (private L1/L2 + shared LLC).

    Args:
        config: Hierarchy configuration.
        shared: The shared LLC/directory/DRAM; construct one
            :class:`SharedMemorySystem` and pass it to every core.
        predictor: The level predictor on the L1 miss path.  Defaults to the
            :class:`SequentialPredictor`, which reproduces the baseline.
        l1_prefetcher / l2_prefetcher: Prefetchers attached to the private
            levels (tagged next-line in the paper's baseline).
        core_id: This core's index in the directory.
    """

    def __init__(
        self,
        config: Optional[HierarchyConfig] = None,
        shared: Optional[SharedMemorySystem] = None,
        predictor: Optional[LevelPredictor] = None,
        l1_prefetcher: Optional[Prefetcher] = None,
        l2_prefetcher: Optional[Prefetcher] = None,
        core_id: int = 0,
        active_cores: int = 1,
    ) -> None:
        # Imported here (not at module scope) to avoid a circular import:
        # the predictor interface needs Level from this package.
        from ..core.base import SequentialPredictor

        self.config = config or HierarchyConfig.paper_single_core()
        self.shared = shared or SharedMemorySystem(self.config, num_cores=1)
        self.predictor = predictor or SequentialPredictor()
        self.l1 = Cache(self.config.l1, name=f"L1.{core_id}")
        self.l2 = Cache(self.config.l2, name=f"L2.{core_id}")
        self.tlb = TLBHierarchy()
        self.l1_prefetcher = l1_prefetcher or NullPrefetcher()
        self.l2_prefetcher = l2_prefetcher or NullPrefetcher()
        self.interconnect = Interconnect(self.config.interconnect,
                                         active_cores=active_cores)
        self.energy = EnergyAccount(params=self.shared.energy_params)
        self.stats = HierarchyStats()
        self.core_id = core_id
        self._block_size = self.config.l1.block_size
        self._inflight_misses: Deque[bool] = deque(
            maxlen=self.config.prefetch_inflight_window)
        self._inflight_miss_count = 0
        # Prefetches issued per recent demand access (same sliding window),
        # used to bound the prefetch issue rate to the non-reserved MSHR share.
        self._recent_prefetches: Deque[int] = deque(
            maxlen=self.config.prefetch_inflight_window)
        self._recent_prefetch_count = 0
        self._prefetches_this_access = 0

    # ==================================================================
    # Public API
    # ==================================================================
    def access(self, access: MemoryAccess) -> AccessResult:
        """Service one demand memory access and return its outcome."""
        from ..core.base import PredictionOutcome

        if not access.access_type.is_demand:
            raise ValueError("access() only services demand loads and stores")
        self.stats.demand_accesses += 1
        if access.is_load:
            self.stats.loads += 1
        else:
            self.stats.stores += 1

        block = block_address(access.address, self._block_size)
        translation = self.tlb.translate(access.address)
        self.energy.charge("hierarchy", self.shared.energy_params.tlb_access_nj)

        # ------------------------------------------------------------------
        # L1 lookup (the level predictor never targets L1).
        # ------------------------------------------------------------------
        l1_was_prefetched = self._line_is_prefetched(self.l1, block)
        l1_hit = self.l1.lookup(access.address, access.access_type)
        self.energy.charge_cache_lookup(Level.L1)
        self._train_l1_prefetcher(access, l1_hit)

        if l1_hit:
            if l1_was_prefetched:
                self.l1_prefetcher.record_useful()
            latency = float(self.config.l1.hit_latency) + translation.latency
            self.stats.l1_hits += 1
            self.stats.total_demand_latency += latency
            self._note_inflight(False)
            return AccessResult(hit_level=Level.L1, latency=latency,
                                levels_looked_up=(Level.L1,))
        self._note_inflight(True)

        # ------------------------------------------------------------------
        # L1 miss: consult the level predictor, find the block, time the path.
        # ------------------------------------------------------------------
        latency = float(self.config.l1.miss_detect_latency) + translation.latency
        self.l1.mshrs.allocate(block, access.access_type)

        actual, remote_core = self._locate(block)
        if self.config.ideal_miss_latency:
            # The paper's Ideal system: a perfect, zero-cost level prediction
            # on every L1 miss — the request goes straight to the level that
            # holds the block with no predictor latency and no wasted lookups.
            from ..core.base import Prediction
            prediction = Prediction(levels=(actual,), source="ideal")
        else:
            prediction = self.predictor.predict(block, access.pc)
            latency += self.predictor.prediction_latency
            self.energy.charge_predictor(
                self.predictor.energy_per_prediction_nj())
        self.stats.predictions += 1

        outcome = self.predictor.train(block, access.pc, prediction, actual)
        self.predictor.on_hit(actual)

        path_latency, looked_up, recovered = self._timed_path(
            prediction, actual, access, remote_core)
        latency += path_latency
        if recovered:
            self.stats.recoveries += 1

        self._account_hit_level(actual, remote_core)
        self._fill_on_response(block, access, actual)
        self.l1.mshrs.release(block)

        self.stats.total_demand_latency += latency
        self.stats.miss_latency += latency
        return AccessResult(
            hit_level=actual,
            latency=latency,
            levels_looked_up=tuple(looked_up),
            bypassed_levels=self._bypassed(prediction, actual),
            predicted_levels=tuple(prediction.levels),
            misprediction=outcome is PredictionOutcome.HARMFUL,
            used_pld=prediction.used_pld,
        )

    def run_trace(self, accesses) -> List[AccessResult]:
        """Convenience helper: service an iterable of accesses."""
        return [self.access(access) for access in accesses]

    # ==================================================================
    # Location and classification helpers
    # ==================================================================
    def _locate(self, block: int) -> Tuple[Level, Optional[int]]:
        """Find where the block currently resides (after the L1 miss)."""
        if self.l2.contains(block):
            return Level.L2, None
        if self.shared.l3.contains(block):
            return Level.L3, None
        remote_holders = self.shared.directory.holders(block) - {self.core_id}
        if remote_holders:
            # Supplied by another core's private cache through the directory;
            # classified as an LLC-level hit for prediction purposes.
            return Level.L3, min(remote_holders)
        return Level.MEM, None

    def _account_hit_level(self, actual: Level, remote_core: Optional[int]) -> None:
        if actual is Level.L2:
            self.stats.l2_hits += 1
        elif actual is Level.L3:
            self.stats.l3_hits += 1
            if remote_core is not None:
                self.stats.remote_cache_hits += 1
        else:
            self.stats.memory_accesses += 1

    @staticmethod
    def _bypassed(prediction: Prediction, actual: Level) -> Tuple[Level, ...]:
        bypassed = []
        levels = prediction.levels or (Level.L2,)
        for level in (Level.L2, Level.L3):
            if level not in levels and level.closer_than(actual):
                bypassed.append(level)
        return tuple(bypassed)

    # ==================================================================
    # Timing
    # ==================================================================
    def _timed_path(
        self,
        prediction: Prediction,
        actual: Level,
        access: MemoryAccess,
        remote_core: Optional[int],
    ) -> Tuple[float, List[Level], bool]:
        """Latency of the L2-and-beyond path, levels probed, recovery flag."""
        cfg = self.config
        levels = prediction.levels or (Level.L2,)
        probe_l2 = Level.L2 in levels
        probe_l3 = Level.L3 in levels
        probe_mem = Level.MEM in levels
        looked_up: List[Level] = []
        recovered = False

        # Port-pressure penalty when more than one on-chip cache is probed in
        # parallel (multi-way predictions, Section V.A / V.C).
        cache_probes = sum(1 for lvl in levels if lvl.is_cache)
        port_penalty = cfg.parallel_port_penalty * max(0, cache_probes - 1)
        if cache_probes > 1:
            self.stats.parallel_cache_probes += 1

        latency = self.interconnect.l1_to_l2_latency()
        self.energy.charge_bus()
        # An MSHR entry is allocated at L2 even when it is bypassed, so the
        # fill path can deposit the block on the way back (Section III.E).
        self.l2.mshrs.allocate(block_address(access.address, self._block_size),
                               access.access_type)

        # ---------------- L2 stage ----------------
        if probe_l2:
            looked_up.append(Level.L2)
            self.l2.lookup(access.address, access.access_type)
            self.energy.charge_cache_lookup(Level.L2)
            if actual is Level.L2:
                latency += cfg.l2.hit_latency + port_penalty
                self._train_l2_prefetcher(access, hit=True)
                self._release_l2_mshr(access)
                return latency, looked_up, recovered
            if not (probe_l3 or probe_mem):
                # Sequential fallback: wait for the L2 miss before forwarding.
                latency += cfg.l2.miss_detect_latency
        else:
            if actual is Level.L2:
                # Harmful misprediction: L2 held the block but was bypassed.
                latency += self._recover_to_l2(access, looked_up)
                latency += port_penalty
                self._train_l2_prefetcher(access, hit=True)
                self._release_l2_mshr(access)
                return latency, looked_up, True

        # ---------------- LLC / directory stage ----------------
        latency += self.interconnect.l2_to_llc_latency()
        self.energy.charge_bus()
        looked_up.append(Level.L3)
        self.energy.charge_directory()

        if actual is Level.L3:
            self.shared.l3.lookup(access.address, access.access_type)
            self.energy.charge_cache_lookup(Level.L3)
            llc_latency = float(cfg.l3.hit_latency)
            if remote_core is not None:
                # Data forwarded from another core's private cache.
                llc_latency = (cfg.l3.tag_latency
                               + self.interconnect.cache_to_cache_latency())
            if probe_mem and cfg.memory_speculative_launch:
                # A speculative DRAM access was launched and must be cancelled
                # by the return-path address-matching logic: energy, no time.
                self.energy.charge("dram",
                                   self.shared.energy_params.dram_access_nj)
                self.stats.cancelled_dram_launches += 1
            latency += llc_latency + port_penalty
            self._train_llc_prefetcher(access, hit=True)
            self._release_l2_mshr(access)
            return latency, looked_up, recovered

        # Block is in main memory.
        self.shared.l3.lookup(access.address, access.access_type)
        self.energy.charge_cache_lookup(Level.L3, tag_only=True)
        self._train_llc_prefetcher(access, hit=False)
        looked_up.append(Level.MEM)
        dram_latency = self.shared.dram.access(access.address)
        self.energy.charge("dram", self.shared.energy_params.dram_access_nj)
        hop_to_memory = self.interconnect.llc_to_memory_latency()

        if probe_mem and cfg.memory_speculative_launch:
            # DRAM access launched in parallel with the directory/tag check;
            # the response is released once the check confirms the block is
            # uncached, so the tag latency is hidden behind DRAM.
            self.stats.speculative_dram_launches += 1
            latency += max(float(cfg.l3.tag_latency),
                           hop_to_memory + dram_latency)
        else:
            latency += cfg.l3.tag_latency + hop_to_memory + dram_latency
        latency += port_penalty
        self._release_l2_mshr(access)
        return latency, looked_up, recovered

    def _recover_to_l2(self, access: MemoryAccess,
                       looked_up: List[Level]) -> float:
        """Misprediction recovery: directory re-issues the request to L2."""
        latency = self.interconnect.l2_to_llc_latency()
        self.energy.charge_bus()
        looked_up.append(Level.L3)
        # The collocated directory is consulted during the LLC tag access.
        latency += self.config.l3.tag_latency
        self.energy.charge_cache_lookup(Level.L3, tag_only=True)
        self.energy.charge_directory()
        self.shared.directory.detect_bypass_misprediction(
            block_address(access.address, self._block_size), self.core_id)
        # Recovery transaction back to L2, then the L2 access itself.
        latency += self.interconnect.recovery_latency()
        self.energy.charge_recovery(
            self.shared.energy_params.bus_transfer_nj
            + self.shared.energy_params.directory_access_nj)
        looked_up.append(Level.L2)
        self.l2.lookup(access.address, access.access_type)
        self.energy.charge_cache_lookup(Level.L2)
        latency += self.config.l2.hit_latency
        # Deallocate MSHR entries allocated past the actual level.
        self.shared.l3.mshrs.force_release(
            block_address(access.address, self._block_size))
        return latency

    def _release_l2_mshr(self, access: MemoryAccess) -> None:
        self.l2.mshrs.release(block_address(access.address, self._block_size))

    # ==================================================================
    # Data movement (fills, evictions, writebacks)
    # ==================================================================
    def _fill_on_response(self, block: int, access: MemoryAccess,
                          actual: Level) -> None:
        """Move the block up the hierarchy after the response returns."""
        dirty = access.is_store
        state = CoherenceState.MODIFIED if dirty else CoherenceState.EXCLUSIVE

        if actual is Level.MEM:
            # Memory fills also populate the (non-inclusive) LLC.
            l3_eviction = self.shared.l3.fill(block, access.access_type,
                                              dirty=False, state=state)
            self._handle_l3_eviction(l3_eviction)
            self.predictor.on_fill(block, Level.L3)

        if actual in (Level.MEM, Level.L3):
            l2_eviction = self.l2.fill(block, access.access_type,
                                       dirty=dirty, state=state)
            self._handle_l2_eviction(l2_eviction)
            self.predictor.on_fill(block, Level.L2)
            self.shared.directory.record_private_fill(block, self.core_id,
                                                      dirty=dirty)
        elif actual is Level.L2:
            # The L1 fill from L2 is a demand fill observed on the L2 bus, so
            # the predictor's location metadata is refreshed with the truth
            # (this is what repairs stale LocMap entries left by unrecorded
            # prefetch fills).
            self.predictor.on_fill(block, Level.L2)
            if dirty:
                self.l2.mark_dirty(block)

        l1_eviction = self.l1.fill(access.address, access.access_type,
                                   dirty=dirty, state=state)
        self._handle_l1_eviction(l1_eviction)

    def _handle_l1_eviction(self, eviction: Optional[EvictionInfo]) -> None:
        if eviction is None:
            return
        if eviction.prefetched_unused:
            self.l1_prefetcher.record_useless()
        if eviction.dirty:
            # L2 is inclusive of L1, so a dirty L1 victim merges into L2.
            self.l2.mark_dirty(eviction.block_addr)

    def _handle_l2_eviction(self, eviction: Optional[EvictionInfo]) -> None:
        if eviction is None:
            return
        if eviction.prefetched_unused:
            self.l2_prefetcher.record_useless()
        # Inclusion: a block leaving L2 must leave L1 as well.
        self.l1.invalidate(eviction.block_addr)
        self.shared.directory.record_private_eviction(eviction.block_addr,
                                                      self.core_id)
        self.predictor.on_eviction(eviction.block_addr, Level.L2,
                                   dirty=eviction.dirty)
        if eviction.dirty:
            # Dirty victims are written back into the non-inclusive LLC.
            l3_eviction = self.shared.l3.fill(
                eviction.block_addr, AccessType.WRITEBACK, dirty=True,
                state=CoherenceState.MODIFIED)
            self.energy.charge_cache_lookup(Level.L3)
            self._handle_l3_eviction(l3_eviction)

    def _handle_l3_eviction(self, eviction: Optional[EvictionInfo]) -> None:
        if eviction is None:
            return
        self.shared.l3_eviction_to_memory(eviction, self.energy)
        self.predictor.on_eviction(eviction.block_addr, Level.L3,
                                   dirty=eviction.dirty)

    # ==================================================================
    # Prefetching
    # ==================================================================
    def _line_is_prefetched(self, cache: Cache, block: int) -> bool:
        line = cache.get_line(block)
        return line is not None and line.prefetched

    def _note_inflight(self, missed: bool) -> None:
        """Track recent demand-miss density (MSHR-pressure approximation)."""
        if len(self._inflight_misses) == self._inflight_misses.maxlen:
            if self._inflight_misses[0]:
                self._inflight_miss_count -= 1
        self._inflight_misses.append(missed)
        if missed:
            self._inflight_miss_count += 1
        if len(self._recent_prefetches) == self._recent_prefetches.maxlen:
            self._recent_prefetch_count -= self._recent_prefetches[0]
        self._recent_prefetches.append(self._prefetches_this_access)
        self._recent_prefetch_count += self._prefetches_this_access
        self._prefetches_this_access = 0

    def _prefetch_mshr_pressure(self) -> bool:
        """Approximate the 25 %-MSHR-reservation throttle (Section IV.A).

        The functional model retires each access before the next begins, so
        true MSHR occupancy is not observable.  Instead the prefetch *issue
        rate* over the last ``prefetch_inflight_window`` demand accesses is
        bounded by the non-reserved share of the L2 MSHR entries: once that
        many prefetches are outstanding in the window, further prefetches are
        dropped, exactly the behaviour the reservation produces under load.
        """
        prefetch_budget = (1.0 - self.config.l2.mshr_demand_reserve) \
            * self.config.l2.mshr_entries
        return (self._recent_prefetch_count + self._prefetches_this_access
                >= prefetch_budget)

    def _train_l1_prefetcher(self, access: MemoryAccess, hit: bool) -> None:
        candidates = self.l1_prefetcher.observe(PrefetchAccess(
            address=access.address, pc=access.pc, hit=hit,
            is_load=access.is_load))
        for address in candidates:
            self._issue_prefetch(address, Level.L1)

    def _train_l2_prefetcher(self, access: MemoryAccess, hit: bool) -> None:
        candidates = self.l2_prefetcher.observe(PrefetchAccess(
            address=access.address, pc=access.pc, hit=hit,
            is_load=access.is_load))
        for address in candidates:
            self._issue_prefetch(address, Level.L2)

    def _train_llc_prefetcher(self, access: MemoryAccess, hit: bool) -> None:
        # The L2 prefetcher trains on L1 misses (accesses that reach L2) and
        # the LLC prefetcher on L2 misses; an access that gets here missed L2.
        self._train_l2_prefetcher(access, hit=False)
        candidates = self.shared.llc_prefetcher.observe(PrefetchAccess(
            address=access.address, pc=access.pc, hit=hit,
            is_load=access.is_load))
        for address in candidates:
            self._issue_prefetch(address, Level.L3)

    def _issue_prefetch(self, address: int, level: Level) -> None:
        """Install a prefetched block at ``level`` (and maintain inclusion)."""
        if self._prefetch_mshr_pressure():
            self.stats.prefetches_dropped_mshr += 1
            return
        block = block_address(address, self._block_size)
        self.stats.prefetches_issued += 1
        self._prefetches_this_access += 1
        if level is Level.L1:
            if self.l1.contains(block):
                return
            # L1/L2 are inclusive: the prefetched block is installed in both.
            l2_eviction = self.l2.fill(block, AccessType.PREFETCH)
            self._handle_l2_eviction(l2_eviction)
            l1_eviction = self.l1.fill(block, AccessType.PREFETCH)
            self._handle_l1_eviction(l1_eviction)
            self.predictor.on_fill(block, Level.L2, from_prefetch=True)
            self.shared.directory.record_private_fill(block, self.core_id)
        elif level is Level.L2:
            if self.l2.contains(block):
                return
            l2_eviction = self.l2.fill(block, AccessType.PREFETCH)
            self._handle_l2_eviction(l2_eviction)
            self.predictor.on_fill(block, Level.L2, from_prefetch=True)
            self.shared.directory.record_private_fill(block, self.core_id)
        else:
            if self.shared.l3.contains(block):
                return
            l3_eviction = self.shared.l3.fill(block, AccessType.PREFETCH)
            self._handle_l3_eviction(l3_eviction)
            self.predictor.on_fill(block, Level.L3, from_prefetch=True)
        self.energy.charge_cache_lookup(level if level.is_cache else Level.L3)

    # ==================================================================
    # Reporting
    # ==================================================================
    def miss_counts(self) -> Dict[str, int]:
        """Demand miss counts per level (the quantities behind Figures 1-2)."""
        return {
            "l1_misses": self.stats.l1_misses,
            "l2_misses": self.stats.l2_misses,
            "l3_misses": self.stats.l3_misses,
        }

    def reset_statistics(self) -> None:
        self.stats.reset()
        self.energy.reset()
        self.l1.reset_statistics()
        self.l2.reset_statistics()
        self.predictor.reset_statistics()
        self.tlb.reset_statistics()
        self.interconnect.reset_statistics()
