"""N-level memory hierarchy with sequential and level-predicted lookup.

This is the central substrate of the reproduction: a functional model of the
paper's simulated system (Table I) — private L1 and L2, a shared non-inclusive
L3 with a collocated directory, a DDR4 channel, per-level prefetchers with
throttling, TLBs — plus the *level-predicted* lookup path that the paper adds
on the L1 miss path.

The hierarchy is no longer fixed to that triple: construct a
:class:`CoreMemoryHierarchy` from a declarative
:class:`~repro.memory.spec.HierarchySpec` and any chain of two or more
cache levels runs through the same scalar and batch kernels.  The level
predictor's target space stays the paper's — the whole private
intermediate group is classified as ``Level.L2`` and the shared LLC as
``Level.L3`` — so predictors, statistics and stored results keep their
exact shapes at any depth.  Three-level hierarchies (legacy
:class:`HierarchyConfig` or an equivalent spec) run the original
specialised path bit-for-bit; other depths take the generalised chain
walkers (``_locate_chain`` / ``_timed_path_chain`` /
``_fill_on_response_chain``), which are selected by one flag test on the
miss path only — the L1-hit fast path is depth-agnostic.

The model is trace driven: :meth:`CoreMemoryHierarchy.access` services one
memory reference, returning an :class:`AccessResult` with the load latency,
the levels looked up (for energy), the predicted levels and the misprediction
outcome.  The out-of-order core model (``repro.cpu``) converts these per-access
latencies into cycles and IPC.

Timing model
============

For a block found at level ``A`` with prediction set ``P``:

* Levels closer than ``A`` that appear in ``P`` are looked up (energy + port
  pressure) but, because predicted levels are probed in parallel, they do not
  serialise the path unless the prediction *is* the sequential fallback.
* Levels closer than ``A`` that are *not* in ``P`` are skipped entirely: no tag
  energy, no added latency beyond the bus hop (an MSHR entry is still
  allocated on the way, as the paper requires for the fill path).
* Bypassing the private L2 when it actually holds the block is the *harmful*
  case: the collocated directory detects it during the LLC tag access and a
  recovery transaction re-issues the request to L2 (Section III.E).
* Predicting main memory launches the DRAM access as soon as the request
  reaches the LLC/directory (Figure 6(c)); the directory check overlaps with
  the DRAM access, so a correct MEM prediction hides the LLC tag latency.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice, repeat
from typing import Deque, Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from ..energy.model import EnergyAccount, EnergyParameters
from ..prefetch.base import NullPrefetcher, PrefetchAccess, Prefetcher
from ..prefetch.nextline import TaggedNextLinePrefetcher
from .block import (
    AccessResult,
    AccessType,
    CoherenceState,
    Level,
    MemoryAccess,
    block_address,
)
from .cache import Cache, CacheConfig, EvictionInfo
from .directory import Directory
from .dram import DRAMConfig, DRAMModel
from .interconnect import Interconnect, InterconnectConfig
from .spec import HierarchySpec
from .tlb import TLBHierarchy

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from ..core.base import LevelPredictor, Prediction

# Lazily bound references to repro.core.base types (a module-scope import
# would be circular: repro.core imports Level from this package).  Bound once
# by the first CoreMemoryHierarchy construction instead of re-importing on
# every access() call, which showed up in profiles.
_Prediction = None
_HARMFUL = None
#: Per-level singletons for the Ideal system's oracle predictions.
_IDEAL_PREDICTIONS: Dict[Level, "Prediction"] = {}

#: Module-level bindings of the hot enum members (LOAD_GLOBAL is cheaper
#: than the two-step attribute chain in the per-access paths).
_LOAD = AccessType.LOAD
_STORE = AccessType.STORE
_L1 = Level.L1
_L2 = Level.L2
_L3 = Level.L3
_MEM = Level.MEM

#: Shared per-access tuples (avoid re-allocating on every access).
_LOOKED_L1 = (Level.L1,)
_NO_LEVELS: tuple = ()
_BYPASSED_L2 = (Level.L2,)
_BYPASSED_L3 = (Level.L3,)
_BYPASSED_L2_L3 = (Level.L2, Level.L3)
#: The six fixed shapes of the post-L1 lookup path (see _timed_path).
_PATH_L2 = (Level.L2,)
_PATH_L3 = (Level.L3,)
_PATH_L2_L3 = (Level.L2, Level.L3)
_PATH_L3_MEM = (Level.L3, Level.MEM)
_PATH_L2_L3_MEM = (Level.L2, Level.L3, Level.MEM)
_PATH_RECOVERY = (Level.L3, Level.L2)


def _bind_core_types() -> None:
    global _Prediction, _HARMFUL
    if _Prediction is None:
        from ..core.base import Prediction, PredictionOutcome

        _Prediction = Prediction
        _HARMFUL = PredictionOutcome.HARMFUL
        for level in (Level.L2, Level.L3, Level.MEM):
            _IDEAL_PREDICTIONS[level] = Prediction(levels=(level,),
                                                   source="ideal")


@dataclass
class HierarchyConfig:
    """Configuration of the full hierarchy (Table I defaults).

    Attributes:
        l1 / l2 / l3: Per-level cache geometries and latencies.
        dram: DRAM channel configuration.
        interconnect: Hop latencies between levels.
        memory_speculative_launch: When True, a prediction that includes MEM
            launches the DRAM access in parallel with the LLC tag/directory
            check (the paper's design); when False the directory check is
            serialised before memory (conservative ablation).
        parallel_port_penalty: Extra cycles charged when a multi-way
            prediction probes more than one on-chip cache in parallel,
            modelling tag-port pressure (the nas.is effect in Section V.C).
        prefetch_inflight_window: Number of recent demand accesses used to
            approximate MSHR occupancy for prefetch throttling.
        ideal_miss_latency: The paper's "Ideal" system: every L1 miss gets a
            perfect, zero-cost level prediction, so no cycle is ever spent on
            a lookup that does not hold the block (Section IV.C).  Data
            movement, energy and statistics behave exactly like the baseline.
    """

    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        level=Level.L1, size_bytes=32 * 1024, associativity=4,
        tag_latency=4, data_latency=0, sequential_tag_data=False,
        mshr_entries=16, mshr_demand_reserve=0.25))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        level=Level.L2, size_bytes=256 * 1024, associativity=8,
        tag_latency=12, data_latency=0, sequential_tag_data=False,
        mshr_entries=32, mshr_demand_reserve=0.25))
    l3: CacheConfig = field(default_factory=lambda: CacheConfig(
        level=Level.L3, size_bytes=2 * 1024 * 1024, associativity=16,
        tag_latency=20, data_latency=35, sequential_tag_data=True,
        mshr_entries=64, mshr_demand_reserve=0.25))
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    memory_speculative_launch: bool = True
    parallel_port_penalty: float = 2.0
    prefetch_inflight_window: int = 32
    ideal_miss_latency: bool = False

    @staticmethod
    def paper_single_core() -> "HierarchyConfig":
        """The single-core configuration of Table I (2 MB LLC)."""
        return HierarchyConfig()

    @staticmethod
    def paper_multi_core() -> "HierarchyConfig":
        """The quad-core configuration of Table I (8 MB shared LLC)."""
        config = HierarchyConfig()
        config.l3 = CacheConfig(
            level=Level.L3, size_bytes=8 * 1024 * 1024, associativity=16,
            tag_latency=20, data_latency=35, sequential_tag_data=True,
            mshr_entries=64, mshr_demand_reserve=0.25)
        return config


@dataclass(slots=True)
class HierarchyStats:
    """Per-core counters for latency, misses and prediction behaviour."""

    demand_accesses: int = 0
    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    memory_accesses: int = 0
    remote_cache_hits: int = 0
    total_demand_latency: float = 0.0
    miss_latency: float = 0.0
    predictions: int = 0
    recoveries: int = 0
    parallel_cache_probes: int = 0
    speculative_dram_launches: int = 0
    cancelled_dram_launches: int = 0
    prefetches_issued: int = 0
    prefetches_dropped_mshr: int = 0

    @property
    def l1_misses(self) -> int:
        return self.demand_accesses - self.l1_hits

    @property
    def l2_misses(self) -> int:
        """Demand accesses that missed both L1 and L2."""
        return self.l1_misses - self.l2_hits

    @property
    def l3_misses(self) -> int:
        return self.memory_accesses

    @property
    def average_memory_access_latency(self) -> float:
        if not self.demand_accesses:
            return 0.0
        return self.total_demand_latency / self.demand_accesses

    @property
    def average_miss_latency(self) -> float:
        misses = self.l1_misses
        return self.miss_latency / misses if misses else 0.0

    def reset(self) -> None:
        for name, f in self.__dataclass_fields__.items():
            setattr(self, name, 0.0 if isinstance(f.default, float) else 0)


class SharedMemorySystem:
    """Resources shared by every core: the LLC, directory, DRAM and the
    LLC prefetcher."""

    def __init__(self, config, num_cores: int = 1,
                 llc_prefetcher: Optional[Prefetcher] = None,
                 energy_params: Optional[EnergyParameters] = None) -> None:
        self.config = config
        self.num_cores = num_cores
        if isinstance(config, HierarchySpec):
            self.spec: Optional[HierarchySpec] = config
            self.l3 = Cache(config.llc.cache_config(Level.L3),
                            name=config.llc.name)
            self.dram = DRAMModel(config.memory.dram_config())
        else:
            self.spec = None
            self.l3 = Cache(config.l3, name="L3")
            self.dram = DRAMModel(config.dram)
        self.directory = Directory(num_cores=num_cores)
        self.llc_prefetcher = llc_prefetcher or NullPrefetcher()
        self.energy_params = energy_params or EnergyParameters()
        self.dram_writebacks = 0

    def l3_eviction_to_memory(self, eviction: EvictionInfo,
                              account: EnergyAccount) -> None:
        """Handle an LLC eviction: dirty lines are written back to DRAM."""
        if eviction.dirty:
            self.dram.access(eviction.block_addr, is_write=True)
            account.charge("dram", self.energy_params.dram_access_nj)
            self.dram_writebacks += 1
        if eviction.prefetched_unused:
            self.llc_prefetcher.record_useless()


class CoreMemoryHierarchy:
    """The per-core view of the memory system (private levels + shared LLC).

    Args:
        config: Hierarchy configuration — a legacy 3-level
            :class:`HierarchyConfig` or a declarative
            :class:`~repro.memory.spec.HierarchySpec` of any depth ≥ 2.
        shared: The shared LLC/directory/DRAM; construct one
            :class:`SharedMemorySystem` (from the same config) and pass it
            to every core.
        predictor: The level predictor on the L1 miss path.  Defaults to the
            :class:`SequentialPredictor`, which reproduces the baseline.
        l1_prefetcher / l2_prefetcher: Prefetchers attached to the private
            levels (tagged next-line in the paper's baseline).  The L2
            prefetcher trains for the first private intermediate; deeper
            intermediates carry no prefetcher.
        core_id: This core's index in the directory.
    """

    __slots__ = (
        "config", "spec", "shared", "predictor", "l1", "l2", "tlb",
        "l1_prefetcher", "l2_prefetcher", "interconnect", "energy", "stats",
        "core_id", "_block_size", "_block_mask", "_page_shift",
        "_l1_page_size",
        "_general", "_intermediates",
        "_chain_hit_latency", "_chain_miss_detect", "_chain_nj",
        "_l1_hit_latency", "_l1_miss_detect", "_l2_hit_latency",
        "_l2_miss_detect", "_l3_hit_latency", "_l3_tag_latency",
        "_port_penalty", "_memory_speculative", "_ideal_miss_latency",
        "_ic_l1_l2", "_ic_l2_llc", "_ic_llc_mem",
        "_tlb_nj", "_l1_nj", "_tlb_l1_nj", "_l2_nj", "_l3_nj", "_l3_tag_nj",
        "_l3_wb_nj",
        "_dram_nj", "_bus_nj", "_directory_nj", "_prefetch_budget",
        "_l1_hit_result", "_pf_access",
        "_inflight_misses", "_inflight_miss_count", "_recent_prefetches",
        "_recent_prefetch_count", "_prefetches_this_access",
    )

    def __init__(
        self,
        config=None,
        shared: Optional[SharedMemorySystem] = None,
        predictor: Optional[LevelPredictor] = None,
        l1_prefetcher: Optional[Prefetcher] = None,
        l2_prefetcher: Optional[Prefetcher] = None,
        core_id: int = 0,
        active_cores: int = 1,
    ) -> None:
        # Imported here (not at module scope) to avoid a circular import:
        # the predictor interface needs Level from this package.
        from ..core.base import SequentialPredictor

        _bind_core_types()
        self.config = config or HierarchyConfig.paper_single_core()
        cfg = self.config
        spec = cfg if isinstance(cfg, HierarchySpec) else None
        self.spec = spec
        self.shared = shared or SharedMemorySystem(cfg, num_cores=1)
        self.predictor = predictor or SequentialPredictor()
        if spec is None:
            level_names = ("L1", "L2", "L3")
            l1_cfg = cfg.l1
            inter_cfgs: Tuple[CacheConfig, ...] = (cfg.l2,)
            llc_cfg = cfg.l3
            self.tlb = TLBHierarchy()
        else:
            level_names = tuple(level.name for level in spec.levels)
            l1_cfg = spec.l1.cache_config(Level.L1)
            inter_cfgs = tuple(level.cache_config(Level.L2)
                               for level in spec.intermediates)
            llc_cfg = spec.llc.cache_config(Level.L3)
            self.tlb = spec.tlb.build()
        self.l1 = Cache(l1_cfg, name=f"{level_names[0]}.{core_id}")
        self._intermediates = tuple(
            Cache(inter_cfg, name=f"{level_names[1 + index]}.{core_id}")
            for index, inter_cfg in enumerate(inter_cfgs))
        # Compat alias: the first private intermediate (the paper's L2), or
        # None in a 2-level hierarchy.
        self.l2 = self._intermediates[0] if self._intermediates else None
        # Three-level chains — legacy configs and equivalent specs — run the
        # original specialised path; other depths take the chain walkers.
        self._general = len(inter_cfgs) != 1
        self.l1_prefetcher = l1_prefetcher or NullPrefetcher()
        self.l2_prefetcher = l2_prefetcher or NullPrefetcher()
        ic_config = cfg.interconnect if spec is None \
            else spec.interconnect.interconnect_config()
        self.interconnect = Interconnect(ic_config,
                                         active_cores=active_cores)
        self.energy = EnergyAccount(params=self.shared.energy_params)
        self.stats = HierarchyStats()
        self.core_id = core_id
        self._block_size = l1_cfg.block_size
        # Hot-path precomputation: block mask (power-of-two line sizes),
        # per-level latencies as floats and per-structure energies, so
        # access() performs no repeated config/dataclass attribute chains.
        bs = self._block_size
        self._block_mask = ~(bs - 1) if (bs & (bs - 1)) == 0 else None
        # Page decomposition parameters of the first-level TLB, so access()
        # and the columnar replay path compute identical page numbers.
        self._l1_page_size = self.tlb.l1.config.page_size
        self._page_shift = self.tlb.l1._page_shift
        self._l1_hit_latency = float(l1_cfg.hit_latency)
        self._l1_miss_detect = float(l1_cfg.miss_detect_latency)
        self._chain_hit_latency = tuple(float(c.hit_latency)
                                        for c in inter_cfgs)
        self._chain_miss_detect = tuple(float(c.miss_detect_latency)
                                        for c in inter_cfgs)
        self._l2_hit_latency = self._chain_hit_latency[0] \
            if inter_cfgs else 0.0
        self._l2_miss_detect = self._chain_miss_detect[0] \
            if inter_cfgs else 0.0
        self._l3_hit_latency = float(llc_cfg.hit_latency)
        self._l3_tag_latency = float(llc_cfg.tag_latency)
        self._port_penalty = cfg.parallel_port_penalty
        self._memory_speculative = cfg.memory_speculative_launch
        self._ideal_miss_latency = cfg.ideal_miss_latency
        # Interconnect hop latencies are constant per instance (contention
        # depends only on active_cores); precompute them and bump the
        # transfer counters inline instead of calling per hop.
        ic_cfg = self.interconnect.config
        contention = (self.interconnect.active_cores - 1) \
            * ic_cfg.contention_per_extra_core
        self._ic_l1_l2 = float(ic_cfg.l1_to_l2)
        self._ic_l2_llc = ic_cfg.l2_to_llc + contention
        self._ic_llc_mem = ic_cfg.llc_to_memory + contention
        params = self.shared.energy_params
        self._tlb_nj = params.tlb_access_nj
        # Spec-level read_energy_nj overrides replace the role-based default
        # for the full per-access energy of that level (for the LLC it also
        # stands in for the tag-only probe — a documented simplification);
        # write_energy_nj prices the dirty-writeback deposit into the LLC.
        l1_read = spec.l1.read_energy_nj if spec is not None else None
        self._l1_nj = params.l1_access_nj if l1_read is None else l1_read
        self._tlb_l1_nj = params.tlb_access_nj + self._l1_nj
        if spec is None:
            self._chain_nj = (params.l2_access_nj,)
        else:
            self._chain_nj = tuple(
                params.l2_access_nj if level.read_energy_nj is None
                else level.read_energy_nj
                for level in spec.intermediates)
        self._l2_nj = self._chain_nj[0] if self._chain_nj \
            else params.l2_access_nj
        llc_read = spec.llc.read_energy_nj if spec is not None else None
        if llc_read is None:
            self._l3_nj = params.llc_tag_access_nj \
                + params.llc_data_access_nj
            self._l3_tag_nj = params.llc_tag_access_nj
        else:
            self._l3_nj = llc_read
            self._l3_tag_nj = llc_read
        llc_write = spec.llc.write_energy_nj if spec is not None else None
        self._l3_wb_nj = self._l3_nj if llc_write is None else llc_write
        self._dram_nj = params.dram_access_nj
        self._bus_nj = params.bus_transfer_nj
        self._directory_nj = params.directory_access_nj
        budget_cfg = inter_cfgs[-1] if inter_cfgs else l1_cfg
        self._prefetch_budget = (1.0 - budget_cfg.mshr_demand_reserve) \
            * budget_cfg.mshr_entries
        # Shared result object for the overwhelmingly common outcome: an L1
        # hit with a first-level TLB hit (translation latency 0).  The object
        # is read-only by every consumer (the core model reads .latency).
        self._l1_hit_result = AccessResult(Level.L1, self._l1_hit_latency,
                                           _LOOKED_L1)
        # One mutable PrefetchAccess record reused for every prefetcher
        # observation; no prefetcher retains the record past _generate().
        self._pf_access = PrefetchAccess(0, 0, False, True)
        self._inflight_misses: Deque[bool] = deque(
            maxlen=self.config.prefetch_inflight_window)
        self._inflight_miss_count = 0
        # Prefetches issued per recent demand access (same sliding window),
        # used to bound the prefetch issue rate to the non-reserved MSHR share.
        self._recent_prefetches: Deque[int] = deque(
            maxlen=self.config.prefetch_inflight_window)
        self._recent_prefetch_count = 0
        self._prefetches_this_access = 0

    # ==================================================================
    # Public API
    # ==================================================================
    def access(self, access: MemoryAccess) -> AccessResult:
        """Service one demand :class:`MemoryAccess` record and return its
        outcome.

        Record-level entry point: validates the access type, decomposes the
        address into its block/page components once, and delegates to
        :meth:`access_decomposed` — the single exact scalar path that every
        kernel in :mod:`repro.sim.kernels` also bottoms out in.  Because the
        record path and the buffer replay path share that seam, they cannot
        drift: :meth:`run_buffer` over a :class:`~repro.trace.TraceBuffer`
        and :meth:`access` over the equivalent record list produce
        bit-identical results.
        """
        atype = access.access_type
        if atype is not _LOAD and atype is not _STORE:
            raise ValueError("access() only services demand loads and stores")
        address = access.address
        mask = self._block_mask
        block = (address & mask) if mask is not None \
            else block_address(address, self._block_size)
        shift = self._page_shift
        page = (address >> shift) if shift >= 0 \
            else address // self._l1_page_size
        return self.access_decomposed(address, block, page, atype, access.pc)

    def access_decomposed(self, address: int, block: int, page: int,
                          atype: AccessType, pc: int) -> AccessResult:
        """Service one demand access from its pre-decomposed components.

        Args:
            address: Full byte address.
            block: Block-aligned address (``address`` masked to the line).
            page: Page number under the first-level TLB's page size.
            atype: ``AccessType.LOAD`` or ``AccessType.STORE`` (not checked
                here — :meth:`access` and the buffer replay validate).
            pc: Program counter of the issuing instruction.
        """
        stats = self.stats
        stats.demand_accesses += 1
        if atype is _LOAD:
            stats.loads += 1
        else:
            stats.stores += 1

        translation_latency = self.tlb.translate_latency_page(page, address)

        # ------------------------------------------------------------------
        # L1 lookup (the level predictor never targets L1).
        # ------------------------------------------------------------------
        l1 = self.l1
        l1_hit, l1_was_prefetched = l1.access_block(block, atype)
        self.energy.charge("hierarchy", self._tlb_l1_nj)
        self._train_l1_prefetcher(address, pc, atype is _LOAD, l1_hit)

        # Inlined _note_inflight (once per access, both branches).
        inflight = self._inflight_misses
        if len(inflight) == inflight.maxlen and inflight[0]:
            self._inflight_miss_count -= 1
        inflight.append(not l1_hit)
        if not l1_hit:
            self._inflight_miss_count += 1
        recent = self._recent_prefetches
        prefetches = self._prefetches_this_access
        if len(recent) == recent.maxlen:
            self._recent_prefetch_count -= recent[0]
        recent.append(prefetches)
        if prefetches:
            self._recent_prefetch_count += prefetches
            self._prefetches_this_access = 0

        if l1_hit:
            if l1_was_prefetched:
                self.l1_prefetcher.record_useful()
            stats.l1_hits += 1
            if translation_latency == 0:
                stats.total_demand_latency += self._l1_hit_latency
                return self._l1_hit_result
            latency = self._l1_hit_latency + translation_latency
            stats.total_demand_latency += latency
            return AccessResult(_L1, latency, _LOOKED_L1)

        # ------------------------------------------------------------------
        # L1 miss: consult the level predictor, find the block, time the path.
        # ------------------------------------------------------------------
        latency = self._l1_miss_detect + translation_latency
        l1.mshrs.allocate(block, atype)

        predictor = self.predictor
        general = self._general
        if general:
            actual, remote_core, holder = self._locate_chain(block)
        else:
            actual, remote_core = self._locate(block)
        if self._ideal_miss_latency:
            # The paper's Ideal system: a perfect, zero-cost level prediction
            # on every L1 miss — the request goes straight to the level that
            # holds the block with no predictor latency and no wasted lookups.
            prediction = _IDEAL_PREDICTIONS[actual]
        else:
            prediction = predictor.predict(block, pc)
            latency += predictor.prediction_latency
            self.energy.charge_predictor(
                predictor.energy_per_prediction_nj())
        stats.predictions += 1

        outcome = predictor.train(block, pc, prediction, actual)
        predictor.on_hit(actual)

        if general:
            path_latency, looked_up, recovered = self._timed_path_chain(
                prediction, actual, address, pc, atype, remote_core, block,
                holder)
        else:
            path_latency, looked_up, recovered = self._timed_path(
                prediction, actual, address, pc, atype, remote_core, block)
        latency += path_latency
        if recovered:
            stats.recoveries += 1

        # Inlined _account_hit_level (once per miss).
        if actual is _L2:
            stats.l2_hits += 1
        elif actual is _L3:
            stats.l3_hits += 1
            if remote_core is not None:
                stats.remote_cache_hits += 1
        else:
            stats.memory_accesses += 1
        if general:
            self._fill_on_response_chain(block, atype, actual, holder)
        else:
            self._fill_on_response(block, atype, actual)
        l1.mshrs.release(block)

        stats.total_demand_latency += latency
        stats.miss_latency += latency
        return AccessResult(
            actual,
            latency,
            looked_up,
            self._bypassed(prediction, actual),
            prediction.levels,
            outcome is _HARMFUL,
            prediction.used_pld,
        )

    def run_trace(self, accesses, kernel=None) -> List[AccessResult]:
        """Convenience helper: service a trace buffer or access iterable.

        Buffers delegate to :meth:`run_buffer` (and its kernel seam);
        legacy record iterables are serviced one :meth:`access` at a time,
        which is the scalar path by definition — both representations
        produce bit-identical results.
        """
        from ..trace import TraceBuffer

        if isinstance(accesses, TraceBuffer):
            return self.run_buffer(accesses, kernel=kernel)
        service = self.access
        return [service(access) for access in accesses]

    def run_buffer(self, buffer, kernel=None) -> List[AccessResult]:
        """Service a whole columnar trace buffer through a kernel.

        This is the engine's replay path and the simulator's single trace
        execution seam: the selected kernel (see :mod:`repro.sim.kernels`)
        owns the replay loop.  The scalar kernel services every access
        through :meth:`access_decomposed`; the batch kernel resolves
        repeat-block L1-hit runs in bulk via :meth:`bulk_repeat_hits` and
        falls back to the same scalar path everywhere else, so every
        kernel produces bit-identical results.

        Args:
            buffer: The :class:`~repro.trace.TraceBuffer` to replay.
            kernel: A kernel name (``"scalar"``/``"batch"``), a
                :class:`~repro.sim.kernels.Kernel` instance, or ``None``
                to resolve ``REPRO_KERNEL`` from the environment (default
                ``"batch"``).
        """
        # Imported lazily: repro.sim.kernels imports from this package.
        from ..sim.kernels import resolve_kernel

        return resolve_kernel(kernel).run(self, buffer)

    def bulk_repeat_hits(self, block: int, page: int, count: int,
                         store_count: int) -> bool:
        """Apply the exact side effects of ``count`` repeat L1 hits at once.

        The batch kernel calls this for the tail of a same-block run: the
        head access (serviced through the exact scalar path immediately
        before) either hit L1 or filled it on response, so the line should
        be resident and most-recently-used and the TLB page warm.  Every
        precondition is verified against the live model state; when one
        fails — the L1 is not LRU-managed, the line is absent or still
        carries its prefetched bit, the line's prefetch tag would trigger
        on the next hit, the L1 prefetcher is not a guaranteed no-op for
        untagged hits, or the page left the first-level TLB — this returns
        ``False`` without touching any state and the kernel services the
        next access through the scalar path before retrying.

        On success every side effect the scalar path would perform for
        these ``count`` accesses (``store_count`` of them stores) is
        replayed: integer counters advance in one add, float accumulators
        (demand latency, hierarchy energy) fold left one addition per
        access so the rounding is bit-identical, replacement and TLB
        recency state collapse to their final values, and the prefetch
        window deques age element-exactly.
        """
        l1 = self.l1
        lru = l1._lru_timestamps
        if lru is None:
            # Non-LRU replacement advances per access (and may consume
            # RNG state); only the scalar path is exact.
            return False
        if l1._block_shift >= 0:
            set_index = (block >> l1._block_shift) & l1._set_mask
            way = l1._tag_to_way[set_index].get(block >> l1._tag_shift)
        else:
            set_index, way = l1._find(block)
        if way is None:
            return False
        line = l1._lines[set_index][way]
        if line.prefetched:
            # The scalar path would clear the bit and credit the
            # prefetcher's accuracy accounting.
            return False
        prefetcher = self.l1_prefetcher
        prefetcher_type = type(prefetcher)
        if prefetcher_type is TaggedNextLinePrefetcher:
            if block in prefetcher._tagged:
                # A hit on a tagged block triggers the next prefetch; one
                # scalar access consumes the tag, then the rest can bulk.
                return False
        elif prefetcher_type is not NullPrefetcher:
            # Unknown prefetchers (stride, subclasses) may train on every
            # access; no untagged-hit no-op guarantee.
            return False
        tlb_l1 = self.tlb.l1
        entries = tlb_l1._sets[page % tlb_l1._num_sets]
        if page not in entries:
            return False

        # All preconditions hold: replay the side effects of `count`
        # translate + L1-hit iterations of access_decomposed.
        stats = self.stats
        stats.demand_accesses += count
        stats.loads += count - store_count
        stats.stores += store_count
        stats.l1_hits += count

        entries.move_to_end(page)
        tlb_l1.stats.hits += count

        l1._clock += count
        line.last_touch = l1._clock
        policy = l1._policy
        policy._clock += count
        lru[set_index][way] = policy._clock
        l1.stats.demand_hits += count
        if store_count:
            line.dirty = True
            line.state = CoherenceState.MODIFIED

        # Float accumulators fold left — one addition per access, in the
        # scalar path's order, so the rounding is bit-identical.
        by_category = self.energy.by_category
        energy = by_category.get("hierarchy", 0.0)
        step_nj = self._tlb_l1_nj
        total_latency = stats.total_demand_latency
        step_latency = self._l1_hit_latency
        for _ in range(count):
            energy += step_nj
            total_latency += step_latency
        by_category["hierarchy"] = energy
        stats.total_demand_latency = total_latency

        # Window bookkeeping: each hit appends False to the inflight-miss
        # window; the first repeat access appends (and publishes) the
        # prefetch count the head access accumulated after its own window
        # update, every later access appends zero.  The deques age
        # element-exactly; the running counts subtract what falls off.
        inflight = self._inflight_misses
        window = inflight.maxlen
        dropped = len(inflight) + count - window
        if dropped > 0:
            if dropped >= len(inflight):
                self._inflight_miss_count = 0
            else:
                self._inflight_miss_count -= sum(islice(inflight, dropped))
        inflight.extend(repeat(False, count))

        recent = self._recent_prefetches
        pending = self._prefetches_this_access
        dropped = len(recent) + count - window
        if dropped > 0:
            if dropped >= len(recent):
                self._recent_prefetch_count = \
                    pending if count <= window else 0
            else:
                self._recent_prefetch_count += \
                    pending - sum(islice(recent, dropped))
        else:
            self._recent_prefetch_count += pending
        recent.append(pending)
        if count > 1:
            recent.extend(repeat(0, count - 1))
        if pending:
            self._prefetches_this_access = 0
        return True

    # ==================================================================
    # Location and classification helpers
    # ==================================================================
    def _locate(self, block: int) -> Tuple[Level, Optional[int]]:
        """Find where the block currently resides (after the L1 miss)."""
        if self.l2.contains_block(block):
            return Level.L2, None
        if self.shared.l3.contains_block(block):
            return Level.L3, None
        remote = self.shared.directory.remote_holder(block, self.core_id)
        if remote is not None:
            # Supplied by another core's private cache through the directory;
            # classified as an LLC-level hit for prediction purposes.
            return Level.L3, remote
        return Level.MEM, None

    def _locate_chain(self, block: int
                      ) -> Tuple[Level, Optional[int], Optional[int]]:
        """Chain-walking :meth:`_locate` for depths other than three.

        Returns ``(level, remote_core, holder)`` where ``holder`` is the
        index of the private intermediate that holds the block (``None``
        unless ``level`` is the private group ``Level.L2``).
        """
        for index, cache in enumerate(self._intermediates):
            if cache.contains_block(block):
                return _L2, None, index
        if self.shared.l3.contains_block(block):
            return _L3, None, None
        remote = self.shared.directory.remote_holder(block, self.core_id)
        if remote is not None:
            return _L3, remote, None
        return _MEM, None, None

    @staticmethod
    def _bypassed(prediction: Prediction, actual: Level) -> Tuple[Level, ...]:
        levels = prediction.levels or _BYPASSED_L2
        l2_bypassed = Level.L2 not in levels and Level.L2 < actual
        l3_bypassed = Level.L3 not in levels and Level.L3 < actual
        if l2_bypassed:
            return _BYPASSED_L2_L3 if l3_bypassed else _BYPASSED_L2
        if l3_bypassed:
            return _BYPASSED_L3
        return _NO_LEVELS

    # ==================================================================
    # Timing
    # ==================================================================
    def _timed_path(
        self,
        prediction: Prediction,
        actual: Level,
        address: int,
        pc: int,
        atype: AccessType,
        remote_core: Optional[int],
        block: int,
    ) -> Tuple[float, Tuple[Level, ...], bool]:
        """Latency of the L2-and-beyond path, levels probed, recovery flag.

        The probed-level sequence is one of six fixed shapes, so shared
        tuples are returned instead of building a list per miss.
        """
        levels = prediction.levels or _BYPASSED_L2
        probe_l2 = Level.L2 in levels
        probe_l3 = Level.L3 in levels
        probe_mem = Level.MEM in levels
        charge = self.energy.charge
        is_load = atype is _LOAD

        # Port-pressure penalty when more than one on-chip cache is probed in
        # parallel (multi-way predictions, Section V.A / V.C).
        cache_probes = probe_l2 + probe_l3 + (Level.L1 in levels)
        if cache_probes > 1:
            port_penalty = self._port_penalty * (cache_probes - 1)
            self.stats.parallel_cache_probes += 1
        else:
            port_penalty = 0.0

        # "hierarchy"-category energy is accumulated locally and charged once
        # per path (one dict update instead of four-six).
        interconnect = self.interconnect
        interconnect.transfers += 1
        latency = self._ic_l1_l2
        hierarchy_nj = self._bus_nj
        # An MSHR entry is allocated at L2 even when it is bypassed, so the
        # fill path can deposit the block on the way back (Section III.E).
        l2_mshrs = self.l2.mshrs
        l2_mshrs.allocate(block, atype)

        # ---------------- L2 stage ----------------
        if probe_l2:
            self.l2.access_block(block, atype)
            hierarchy_nj += self._l2_nj
            if actual is Level.L2:
                latency += self._l2_hit_latency + port_penalty
                charge("hierarchy", hierarchy_nj)
                self._train_l2_prefetcher(address, pc, is_load, hit=True)
                l2_mshrs.release(block)
                return latency, _PATH_L2, False
            if not (probe_l3 or probe_mem):
                # Sequential fallback: wait for the L2 miss before forwarding.
                latency += self._l2_miss_detect
        else:
            if actual is Level.L2:
                # Harmful misprediction: L2 held the block but was bypassed.
                charge("hierarchy", hierarchy_nj)
                latency += self._recover_to_l2(atype, block)
                latency += port_penalty
                self._train_l2_prefetcher(address, pc, is_load, hit=True)
                l2_mshrs.release(block)
                return latency, _PATH_RECOVERY, True

        # ---------------- LLC / directory stage ----------------
        interconnect.transfers += 1
        latency += self._ic_l2_llc
        hierarchy_nj += self._bus_nj + self._directory_nj

        if actual is Level.L3:
            self.shared.l3.access_block(block, atype)
            hierarchy_nj += self._l3_nj
            llc_latency = self._l3_hit_latency
            if remote_core is not None:
                # Data forwarded from another core's private cache.
                llc_latency = (self._l3_tag_latency
                               + self.interconnect.cache_to_cache_latency())
            if probe_mem and self._memory_speculative:
                # A speculative DRAM access was launched and must be cancelled
                # by the return-path address-matching logic: energy, no time.
                charge("dram", self._dram_nj)
                self.stats.cancelled_dram_launches += 1
            latency += llc_latency + port_penalty
            charge("hierarchy", hierarchy_nj)
            self._train_llc_prefetcher(address, pc, is_load, hit=True)
            l2_mshrs.release(block)
            return latency, (_PATH_L2_L3 if probe_l2 else _PATH_L3), False

        # Block is in main memory.
        self.shared.l3.access_block(block, atype)
        hierarchy_nj += self._l3_tag_nj
        charge("hierarchy", hierarchy_nj)
        self._train_llc_prefetcher(address, pc, is_load, hit=False)
        dram_latency = self.shared.dram.access(address)
        charge("dram", self._dram_nj)
        interconnect.transfers += 1
        hop_to_memory = self._ic_llc_mem

        if probe_mem and self._memory_speculative:
            # DRAM access launched in parallel with the directory/tag check;
            # the response is released once the check confirms the block is
            # uncached, so the tag latency is hidden behind DRAM.
            self.stats.speculative_dram_launches += 1
            latency += max(self._l3_tag_latency,
                           hop_to_memory + dram_latency)
        else:
            latency += self._l3_tag_latency + hop_to_memory + dram_latency
        latency += port_penalty
        l2_mshrs.release(block)
        return latency, (_PATH_L2_L3_MEM if probe_l2 else _PATH_L3_MEM), False

    def _recover_to_l2(self, atype: AccessType, block: int) -> float:
        """Misprediction recovery: directory re-issues the request to L2."""
        charge = self.energy.charge
        latency = self.interconnect.l2_to_llc_latency()
        charge("hierarchy", self._bus_nj)
        # The collocated directory is consulted during the LLC tag access.
        latency += self._l3_tag_latency
        charge("hierarchy", self._l3_tag_nj)
        charge("hierarchy", self._directory_nj)
        self.shared.directory.detect_bypass_misprediction(block, self.core_id)
        # Recovery transaction back to L2, then the L2 access itself.
        latency += self.interconnect.recovery_latency()
        self.energy.charge_recovery(self._bus_nj + self._directory_nj)
        self.l2.access_block(block, atype)
        charge("hierarchy", self._l2_nj)
        latency += self._l2_hit_latency
        # Deallocate MSHR entries allocated past the actual level.
        self.shared.l3.mshrs.force_release(block)
        return latency

    def _timed_path_chain(
        self,
        prediction: Prediction,
        actual: Level,
        address: int,
        pc: int,
        atype: AccessType,
        remote_core: Optional[int],
        block: int,
        holder: Optional[int],
    ) -> Tuple[float, Tuple[Level, ...], bool]:
        """:meth:`_timed_path` generalised to an arbitrary private chain.

        A ``Level.L2`` prediction probes the whole private intermediate
        group in order; the private-only sequential fallback serialises
        each level's miss detection before forwarding.  Hop latencies:
        ``l1_to_l2`` per hop between private levels, ``l2_to_llc`` into
        the shared LLC (a 2-level hierarchy pays only the LLC hop).  The
        MSHR entry for the return path is allocated at the deepest
        private intermediate — the fill deposit point — even when the
        group is bypassed.
        """
        levels = prediction.levels or _BYPASSED_L2
        probe_l2 = Level.L2 in levels
        probe_l3 = Level.L3 in levels
        probe_mem = Level.MEM in levels
        charge = self.energy.charge
        is_load = atype is _LOAD
        intermediates = self._intermediates

        cache_probes = probe_l2 + probe_l3 + (Level.L1 in levels)
        if cache_probes > 1:
            port_penalty = self._port_penalty * (cache_probes - 1)
            self.stats.parallel_cache_probes += 1
        else:
            port_penalty = 0.0

        interconnect = self.interconnect
        latency = 0.0
        hierarchy_nj = 0.0
        deposit_mshrs = intermediates[-1].mshrs if intermediates else None
        if deposit_mshrs is not None:
            deposit_mshrs.allocate(block, atype)
        if intermediates:
            interconnect.transfers += 1
            latency += self._ic_l1_l2
            hierarchy_nj += self._bus_nj

        # ---------------- Private intermediate stage ----------------
        if intermediates:
            if probe_l2:
                sequential = not (probe_l3 or probe_mem)
                for index, cache in enumerate(intermediates):
                    if index:
                        interconnect.transfers += 1
                        latency += self._ic_l1_l2
                        hierarchy_nj += self._bus_nj
                    cache.access_block(block, atype)
                    hierarchy_nj += self._chain_nj[index]
                    if index == holder:
                        latency += self._chain_hit_latency[index] \
                            + port_penalty
                        charge("hierarchy", hierarchy_nj)
                        self._train_l2_prefetcher(address, pc, is_load,
                                                  hit=True)
                        deposit_mshrs.release(block)
                        return latency, _PATH_L2, False
                    if sequential:
                        latency += self._chain_miss_detect[index]
            elif actual is Level.L2:
                # Harmful misprediction: a private level held the block
                # but the whole group was bypassed.
                charge("hierarchy", hierarchy_nj)
                latency += self._recover_to_chain(atype, block, holder)
                latency += port_penalty
                self._train_l2_prefetcher(address, pc, is_load, hit=True)
                deposit_mshrs.release(block)
                return latency, _PATH_RECOVERY, True
            else:
                # Bypassed but absent: the request still traverses the
                # private chain's bus on the way to the LLC.
                for _ in range(len(intermediates) - 1):
                    interconnect.transfers += 1
                    latency += self._ic_l1_l2
                    hierarchy_nj += self._bus_nj

        # ---------------- LLC / directory stage ----------------
        interconnect.transfers += 1
        latency += self._ic_l2_llc
        hierarchy_nj += self._bus_nj + self._directory_nj

        if actual is Level.L3:
            self.shared.l3.access_block(block, atype)
            hierarchy_nj += self._l3_nj
            llc_latency = self._l3_hit_latency
            if remote_core is not None:
                llc_latency = (self._l3_tag_latency
                               + self.interconnect.cache_to_cache_latency())
            if probe_mem and self._memory_speculative:
                charge("dram", self._dram_nj)
                self.stats.cancelled_dram_launches += 1
            latency += llc_latency + port_penalty
            charge("hierarchy", hierarchy_nj)
            self._train_llc_prefetcher(address, pc, is_load, hit=True)
            if deposit_mshrs is not None:
                deposit_mshrs.release(block)
            return latency, (_PATH_L2_L3 if probe_l2 else _PATH_L3), False

        # Block is in main memory.
        self.shared.l3.access_block(block, atype)
        hierarchy_nj += self._l3_tag_nj
        charge("hierarchy", hierarchy_nj)
        self._train_llc_prefetcher(address, pc, is_load, hit=False)
        dram_latency = self.shared.dram.access(address)
        charge("dram", self._dram_nj)
        interconnect.transfers += 1
        hop_to_memory = self._ic_llc_mem

        if probe_mem and self._memory_speculative:
            self.stats.speculative_dram_launches += 1
            latency += max(self._l3_tag_latency,
                           hop_to_memory + dram_latency)
        else:
            latency += self._l3_tag_latency + hop_to_memory + dram_latency
        latency += port_penalty
        if deposit_mshrs is not None:
            deposit_mshrs.release(block)
        return latency, (_PATH_L2_L3_MEM if probe_l2 else _PATH_L3_MEM), False

    def _recover_to_chain(self, atype: AccessType, block: int,
                          holder: int) -> float:
        """:meth:`_recover_to_l2` aimed at the holding intermediate."""
        charge = self.energy.charge
        latency = self.interconnect.l2_to_llc_latency()
        charge("hierarchy", self._bus_nj)
        latency += self._l3_tag_latency
        charge("hierarchy", self._l3_tag_nj)
        charge("hierarchy", self._directory_nj)
        self.shared.directory.detect_bypass_misprediction(block, self.core_id)
        latency += self.interconnect.recovery_latency()
        self.energy.charge_recovery(self._bus_nj + self._directory_nj)
        cache = self._intermediates[holder]
        cache.access_block(block, atype)
        charge("hierarchy", self._chain_nj[holder])
        latency += self._chain_hit_latency[holder]
        self.shared.l3.mshrs.force_release(block)
        return latency

    # ==================================================================
    # Data movement (fills, evictions, writebacks)
    # ==================================================================
    def _fill_on_response(self, block: int, atype: AccessType,
                          actual: Level) -> None:
        """Move the block up the hierarchy after the response returns."""
        dirty = atype is AccessType.STORE
        state = CoherenceState.MODIFIED if dirty else CoherenceState.EXCLUSIVE
        predictor = self.predictor

        if actual is Level.MEM:
            # Memory fills also populate the (non-inclusive) LLC.
            l3_eviction = self.shared.l3.fill_block(block, atype,
                                                    dirty=False, state=state)
            if l3_eviction is not None:
                self._handle_l3_eviction(l3_eviction)
            predictor.on_fill(block, Level.L3)

        if actual is Level.MEM or actual is Level.L3:
            l2_eviction = self.l2.fill_block(block, atype,
                                             dirty=dirty, state=state)
            if l2_eviction is not None:
                self._handle_l2_eviction(l2_eviction)
            predictor.on_fill(block, Level.L2)
            self.shared.directory.record_private_fill(block, self.core_id,
                                                      dirty=dirty)
        elif actual is Level.L2:
            # The L1 fill from L2 is a demand fill observed on the L2 bus, so
            # the predictor's location metadata is refreshed with the truth
            # (this is what repairs stale LocMap entries left by unrecorded
            # prefetch fills).
            predictor.on_fill(block, Level.L2)
            if dirty:
                self.l2.mark_dirty(block)

        l1_eviction = self.l1.fill_block(block, atype,
                                         dirty=dirty, state=state)
        if l1_eviction is not None:
            self._handle_l1_eviction(l1_eviction)

    def _handle_l1_eviction(self, eviction: Optional[EvictionInfo]) -> None:
        if eviction is None:
            return
        if eviction.prefetched_unused:
            self.l1_prefetcher.record_useless()
        if eviction.dirty:
            # L2 is inclusive of L1, so a dirty L1 victim merges into L2.
            self.l2.mark_dirty(eviction.block_addr)

    def _handle_l2_eviction(self, eviction: Optional[EvictionInfo]) -> None:
        if eviction is None:
            return
        if eviction.prefetched_unused:
            self.l2_prefetcher.record_useless()
        # Inclusion: a block leaving L2 must leave L1 as well.
        self.l1.invalidate(eviction.block_addr)
        self.shared.directory.record_private_eviction(eviction.block_addr,
                                                      self.core_id)
        self.predictor.on_eviction(eviction.block_addr, Level.L2,
                                   dirty=eviction.dirty)
        if eviction.dirty:
            # Dirty victims are written back into the non-inclusive LLC.
            l3_eviction = self.shared.l3.fill_block(
                eviction.block_addr, AccessType.WRITEBACK, dirty=True,
                state=CoherenceState.MODIFIED)
            self.energy.charge("hierarchy", self._l3_wb_nj)
            self._handle_l3_eviction(l3_eviction)

    def _handle_l3_eviction(self, eviction: Optional[EvictionInfo]) -> None:
        if eviction is None:
            return
        self.shared.l3_eviction_to_memory(eviction, self.energy)
        self.predictor.on_eviction(eviction.block_addr, Level.L3,
                                   dirty=eviction.dirty)

    def _fill_on_response_chain(self, block: int, atype: AccessType,
                                actual: Level,
                                holder: Optional[int]) -> None:
        """:meth:`_fill_on_response` generalised to the private chain.

        Fills propagate deepest-first through every private intermediate
        (each is inclusive of the levels above it), then into L1.  In a
        2-level hierarchy L1 *is* the deepest private level, so the
        directory tracks L1 fills directly and the private-group
        (``Level.L2``) predictor notifications are skipped — the group is
        empty.
        """
        dirty = atype is AccessType.STORE
        state = CoherenceState.MODIFIED if dirty else CoherenceState.EXCLUSIVE
        predictor = self.predictor
        intermediates = self._intermediates

        if actual is Level.MEM:
            l3_eviction = self.shared.l3.fill_block(block, atype,
                                                    dirty=False, state=state)
            if l3_eviction is not None:
                self._handle_l3_eviction(l3_eviction)
            predictor.on_fill(block, Level.L3)

        if actual is Level.MEM or actual is Level.L3:
            if intermediates:
                for index in range(len(intermediates) - 1, -1, -1):
                    eviction = intermediates[index].fill_block(
                        block, atype, dirty=dirty, state=state)
                    if eviction is not None:
                        self._handle_chain_eviction(eviction, index)
                predictor.on_fill(block, Level.L2)
            self.shared.directory.record_private_fill(block, self.core_id,
                                                      dirty=dirty)
        elif actual is Level.L2:
            predictor.on_fill(block, Level.L2)
            if dirty:
                intermediates[holder].mark_dirty(block)
            # Inclusion upward: levels between the holder and L1 also fill.
            for index in range(holder - 1, -1, -1):
                eviction = intermediates[index].fill_block(
                    block, atype, dirty=dirty, state=state)
                if eviction is not None:
                    self._handle_chain_eviction(eviction, index)

        l1_eviction = self.l1.fill_block(block, atype,
                                         dirty=dirty, state=state)
        if l1_eviction is not None:
            self._handle_l1_eviction_chain(l1_eviction)

    def _handle_l1_eviction_chain(self, eviction: EvictionInfo) -> None:
        if eviction.prefetched_unused:
            self.l1_prefetcher.record_useless()
        intermediates = self._intermediates
        if intermediates:
            if eviction.dirty:
                # The next private level is inclusive of L1: merge.
                intermediates[0].mark_dirty(eviction.block_addr)
            return
        # 2-level hierarchy: L1 is the deepest private level — the
        # directory tracked this block, and dirty victims write back
        # straight into the (non-inclusive) LLC.
        self.shared.directory.record_private_eviction(eviction.block_addr,
                                                      self.core_id)
        if eviction.dirty:
            l3_eviction = self.shared.l3.fill_block(
                eviction.block_addr, AccessType.WRITEBACK, dirty=True,
                state=CoherenceState.MODIFIED)
            self.energy.charge("hierarchy", self._l3_wb_nj)
            self._handle_l3_eviction(l3_eviction)

    def _handle_chain_eviction(self, eviction: EvictionInfo,
                               index: int) -> None:
        """Eviction from the private intermediate at ``index``."""
        if eviction.prefetched_unused and index == 0:
            self.l2_prefetcher.record_useless()
        block_addr = eviction.block_addr
        # Inclusion: a block leaving this level leaves every closer level.
        self.l1.invalidate(block_addr)
        intermediates = self._intermediates
        for closer in range(index):
            intermediates[closer].invalidate(block_addr)
        if index == len(intermediates) - 1:
            # Leaving the deepest private level: the block leaves this
            # core's private group entirely.
            self.shared.directory.record_private_eviction(block_addr,
                                                          self.core_id)
            self.predictor.on_eviction(block_addr, Level.L2,
                                       dirty=eviction.dirty)
            if eviction.dirty:
                l3_eviction = self.shared.l3.fill_block(
                    block_addr, AccessType.WRITEBACK, dirty=True,
                    state=CoherenceState.MODIFIED)
                self.energy.charge("hierarchy", self._l3_wb_nj)
                self._handle_l3_eviction(l3_eviction)
        elif eviction.dirty:
            # Dirty victims merge into the next-deeper private level.
            intermediates[index + 1].mark_dirty(block_addr)

    # ==================================================================
    # Prefetching
    # ==================================================================
    def _observe_record(self, address: int, pc: int, is_load: bool,
                        hit: bool) -> PrefetchAccess:
        """Fill the shared PrefetchAccess record for one observation."""
        record = self._pf_access
        record.address = address
        record.pc = pc
        record.hit = hit
        record.is_load = is_load
        return record

    def _train_l1_prefetcher(self, address: int, pc: int, is_load: bool,
                             hit: bool) -> None:
        candidates = self.l1_prefetcher.observe(
            self._observe_record(address, pc, is_load, hit))
        for candidate in candidates:
            self._issue_prefetch(candidate, _L1)

    def _train_l2_prefetcher(self, address: int, pc: int, is_load: bool,
                             hit: bool) -> None:
        candidates = self.l2_prefetcher.observe(
            self._observe_record(address, pc, is_load, hit))
        for candidate in candidates:
            self._issue_prefetch(candidate, _L2)

    def _train_llc_prefetcher(self, address: int, pc: int, is_load: bool,
                              hit: bool) -> None:
        # The L2 prefetcher trains on L1 misses (accesses that reach L2) and
        # the LLC prefetcher on L2 misses; an access that gets here missed L2.
        record = self._observe_record(address, pc, is_load, False)
        candidates = self.l2_prefetcher.observe(record)
        for candidate in candidates:
            self._issue_prefetch(candidate, _L2)
        record = self._observe_record(address, pc, is_load, hit)
        candidates = self.shared.llc_prefetcher.observe(record)
        for candidate in candidates:
            self._issue_prefetch(candidate, _L3)

    def _issue_prefetch(self, address: int, level: Level) -> None:
        """Install a prefetched block at ``level`` (and maintain inclusion).

        The gate below approximates the 25 %-MSHR-reservation throttle
        (Section IV.A): the functional model retires each access before the
        next begins, so true MSHR occupancy is not observable; instead the
        prefetch *issue rate* over the last ``prefetch_inflight_window``
        demand accesses (tracked by the inlined window bookkeeping in
        :meth:`access`) is bounded by the non-reserved share of the L2 MSHR
        entries — the behaviour the reservation produces under load.
        """
        if (self._recent_prefetch_count + self._prefetches_this_access
                >= self._prefetch_budget):
            self.stats.prefetches_dropped_mshr += 1
            return
        mask = self._block_mask
        block = (address & mask) if mask is not None \
            else block_address(address, self._block_size)
        self.stats.prefetches_issued += 1
        self._prefetches_this_access += 1
        if self._general and level is not Level.L3:
            self._issue_chain_prefetch(block, level)
        elif level is Level.L1:
            if self.l1.contains_block(block):
                return
            # L1/L2 are inclusive: the prefetched block is installed in both.
            l2_eviction = self.l2.fill_block(block, AccessType.PREFETCH)
            if l2_eviction is not None:
                self._handle_l2_eviction(l2_eviction)
            l1_eviction = self.l1.fill_block(block, AccessType.PREFETCH)
            if l1_eviction is not None:
                self._handle_l1_eviction(l1_eviction)
            self.predictor.on_fill(block, Level.L2, from_prefetch=True)
            self.shared.directory.record_private_fill(block, self.core_id)
            self.energy.charge("hierarchy", self._l1_nj)
        elif level is Level.L2:
            installed, l2_eviction = self.l2.prefetch_install(block)
            if not installed:
                return
            if l2_eviction is not None:
                self._handle_l2_eviction(l2_eviction)
            self.predictor.on_fill(block, Level.L2, from_prefetch=True)
            self.shared.directory.record_private_fill(block, self.core_id)
            self.energy.charge("hierarchy", self._l2_nj)
        else:
            installed, l3_eviction = self.shared.l3.prefetch_install(block)
            if not installed:
                return
            if l3_eviction is not None:
                self._handle_l3_eviction(l3_eviction)
            self.predictor.on_fill(block, Level.L3, from_prefetch=True)
            self.energy.charge("hierarchy", self._l3_nj)

    def _issue_chain_prefetch(self, block: int, level: Level) -> None:
        """Install a private-level prefetch in a general chain.

        Inclusion holds by filling every private intermediate
        deepest-first; an L1-targeted prefetch additionally fills L1.  In
        a 2-level hierarchy both targets collapse to an L1 install (L1 is
        the only private level), recorded with the directory.
        """
        intermediates = self._intermediates
        target_l1 = level is Level.L1 or not intermediates
        if target_l1:
            if self.l1.contains_block(block):
                return
        elif intermediates[0].contains_block(block):
            return
        for index in range(len(intermediates) - 1, -1, -1):
            eviction = intermediates[index].fill_block(
                block, AccessType.PREFETCH)
            if eviction is not None:
                self._handle_chain_eviction(eviction, index)
        if target_l1:
            l1_eviction = self.l1.fill_block(block, AccessType.PREFETCH)
            if l1_eviction is not None:
                self._handle_l1_eviction_chain(l1_eviction)
        if intermediates:
            self.predictor.on_fill(block, Level.L2, from_prefetch=True)
        self.shared.directory.record_private_fill(block, self.core_id)
        self.energy.charge("hierarchy",
                           self._l1_nj if target_l1 else self._chain_nj[0])

    # ==================================================================
    # Reporting
    # ==================================================================
    def miss_counts(self) -> Dict[str, int]:
        """Demand miss counts per level (the quantities behind Figures 1-2)."""
        return {
            "l1_misses": self.stats.l1_misses,
            "l2_misses": self.stats.l2_misses,
            "l3_misses": self.stats.l3_misses,
        }

    def reset_statistics(self) -> None:
        self.stats.reset()
        self.energy.reset()
        self.l1.reset_statistics()
        for cache in self._intermediates:
            cache.reset_statistics()
        self.predictor.reset_statistics()
        self.tlb.reset_statistics()
        self.interconnect.reset_statistics()
