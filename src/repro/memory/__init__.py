"""Memory-hierarchy substrate: caches, MSHRs, TLBs, DRAM, directory, bus."""

from .block import (
    AccessResult,
    AccessType,
    CacheLine,
    CoherenceState,
    DEFAULT_BLOCK_SIZE,
    Level,
    MemoryAccess,
    PREDICTABLE_LEVELS,
    block_address,
)
from .cache import Cache, CacheConfig, CacheStats, EvictionInfo
from .directory import Directory, DirectoryEntry
from .dram import DRAMConfig, DRAMModel
from .hierarchy import (
    CoreMemoryHierarchy,
    HierarchyConfig,
    HierarchyStats,
    SharedMemorySystem,
)
from .interconnect import Interconnect, InterconnectConfig
from .mshr import MSHREntry, MSHRFile
from .replacement import (
    LRUPolicy,
    RandomPolicy,
    SRRIPPolicy,
    TreePLRUPolicy,
    make_replacement_policy,
)
from .tlb import TLB, TLBConfig, TLBHierarchy

__all__ = [
    "AccessResult",
    "AccessType",
    "Cache",
    "CacheConfig",
    "CacheLine",
    "CacheStats",
    "CoherenceState",
    "CoreMemoryHierarchy",
    "DEFAULT_BLOCK_SIZE",
    "Directory",
    "DirectoryEntry",
    "DRAMConfig",
    "DRAMModel",
    "EvictionInfo",
    "HierarchyConfig",
    "HierarchyStats",
    "Interconnect",
    "InterconnectConfig",
    "Level",
    "LRUPolicy",
    "MemoryAccess",
    "MSHREntry",
    "MSHRFile",
    "PREDICTABLE_LEVELS",
    "RandomPolicy",
    "SharedMemorySystem",
    "SRRIPPolicy",
    "TLB",
    "TLBConfig",
    "TLBHierarchy",
    "TreePLRUPolicy",
    "block_address",
    "make_replacement_policy",
]
