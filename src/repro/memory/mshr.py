"""Miss status holding registers (MSHRs).

MSHRs give the caches their non-blocking behaviour: each outstanding miss
allocates an entry, subsequent accesses to the same block coalesce onto the
existing entry, and the entry is released when the fill returns.

The paper uses MSHRs in two additional ways that this module models:

* **Prefetch throttling** (Section IV.A): 25 % of the entries are reserved for
  demand accesses so aggressive prefetchers cannot starve the core.
* **Level prediction** (Section III.E): bypassed levels still allocate an MSHR
  entry so the fill path can find a target on the way back; on a detected
  misprediction the entries "past the actual level" are deallocated.  The
  hierarchy model calls :meth:`MSHRFile.release` for those entries and the
  recovery cost model charges the corresponding deallocation traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .block import AccessType


@dataclass(slots=True)
class MSHREntry:
    """One outstanding miss.

    Attributes:
        block_addr: Block-aligned address of the miss.
        is_prefetch: True when the original allocation was for a prefetch.
        allocated_at: Logical time of allocation (for occupancy statistics).
        coalesced: Number of additional requests merged onto this entry.
    """

    block_addr: int
    is_prefetch: bool = False
    allocated_at: int = 0
    coalesced: int = 0


class MSHRFile:
    """A fixed-capacity file of MSHR entries with demand reservation.

    Args:
        capacity: Total number of entries.
        demand_reserve_fraction: Fraction of entries that only demand accesses
            may use.  Prefetches are rejected once occupancy exceeds
            ``capacity * (1 - demand_reserve_fraction)``.
    """

    __slots__ = ("capacity", "demand_reserve_fraction", "_prefetch_limit",
                 "_entries", "_freelist", "_clock", "allocations",
                 "coalesces", "demand_rejections", "prefetch_rejections",
                 "forced_deallocations")

    def __init__(self, capacity: int, demand_reserve_fraction: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        if not 0.0 <= demand_reserve_fraction < 1.0:
            raise ValueError("demand_reserve_fraction must be in [0, 1)")
        self.capacity = capacity
        self.demand_reserve_fraction = demand_reserve_fraction
        self._prefetch_limit = int(capacity * (1.0 - demand_reserve_fraction))
        self._entries: Dict[int, MSHREntry] = {}
        # Released entry objects are recycled: allocate/release runs once per
        # simulated miss and entry churn dominates this class's cost.
        self._freelist: List[MSHREntry] = []
        self._clock = 0
        # Statistics.
        self.allocations = 0
        self.coalesces = 0
        self.demand_rejections = 0
        self.prefetch_rejections = 0
        self.forced_deallocations = 0

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of entries currently allocated."""
        return len(self._entries)

    @property
    def prefetch_limit(self) -> int:
        """Maximum occupancy at which a prefetch may still allocate."""
        return self._prefetch_limit

    def is_full(self) -> bool:
        return self.occupancy >= self.capacity

    def has_room_for(self, access_type: AccessType) -> bool:
        """True if an access of this type could allocate an entry right now."""
        if access_type is AccessType.PREFETCH:
            return self.occupancy < self.prefetch_limit
        return self.occupancy < self.capacity

    # ------------------------------------------------------------------
    # Allocation / lookup / release
    # ------------------------------------------------------------------
    def lookup(self, block_addr: int) -> Optional[MSHREntry]:
        """Return the entry tracking ``block_addr``, if any."""
        return self._entries.get(block_addr)

    def allocate(
        self, block_addr: int, access_type: AccessType = AccessType.LOAD
    ) -> Optional[MSHREntry]:
        """Allocate (or coalesce onto) an entry for ``block_addr``.

        Returns the entry, or ``None`` when the file has no room for this
        access type (structural hazard).  A coalesced request never fails.
        """
        self._clock += 1
        entries = self._entries
        existing = entries.get(block_addr)
        if existing is not None:
            existing.coalesced += 1
            self.coalesces += 1
            return existing
        is_prefetch = access_type is AccessType.PREFETCH
        occupancy = len(entries)
        if is_prefetch:
            if occupancy >= self._prefetch_limit:
                self.prefetch_rejections += 1
                return None
        elif occupancy >= self.capacity:
            self.demand_rejections += 1
            return None
        freelist = self._freelist
        if freelist:
            entry = freelist.pop()
            entry.block_addr = block_addr
            entry.is_prefetch = is_prefetch
            entry.allocated_at = self._clock
            entry.coalesced = 0
        else:
            entry = MSHREntry(block_addr, is_prefetch, self._clock)
        entries[block_addr] = entry
        self.allocations += 1
        return entry

    def release(self, block_addr: int) -> bool:
        """Release the entry for ``block_addr``.

        Returns True if an entry was present.  Releasing an absent entry is
        not an error: misprediction recovery may try to deallocate entries at
        levels the request never reached.
        """
        entry = self._entries.pop(block_addr, None)
        if entry is None:
            return False
        self._freelist.append(entry)
        return True

    def force_release(self, block_addr: int) -> bool:
        """Release an entry as part of misprediction recovery.

        Identical to :meth:`release` but counted separately so the recovery
        traffic can be reported (Section III.E: recovery deallocates all MSHR
        entries past the actual level).
        """
        released = self.release(block_addr)
        if released:
            self.forced_deallocations += 1
        return released

    def outstanding_blocks(self) -> List[int]:
        """Block addresses with entries currently allocated."""
        return list(self._entries)

    def reset_statistics(self) -> None:
        self.allocations = 0
        self.coalesces = 0
        self.demand_rejections = 0
        self.prefetch_rejections = 0
        self.forced_deallocations = 0
