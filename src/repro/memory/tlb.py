"""TLB hierarchy and page-table walker.

Table I / Section IV.A of the paper configure a 64-entry first-level TLB, a
3072-entry second-level TLB split evenly between 4 KiB and 2 MiB pages, 4-way
set associative with a 4-cycle access latency, and two page walkers per core.

The simulator translates addresses with an identity mapping (virtual ==
physical) because the synthetic workloads already generate physical-like
addresses; what matters to the study is the *latency and energy* of
translation, which the TLB model provides, plus the eTLB cost hook used by the
D2D/D2M baseline (which enlarges TLB entries and charges 10 % extra energy per
access, Section IV.C).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional


@dataclass
class TLBConfig:
    """Configuration of a single TLB level."""

    entries: int
    associativity: int = 4
    page_size: int = 4096
    access_latency: int = 1


@dataclass
class TLBStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class TLB:
    """A set-associative TLB modelled with per-set LRU ordered dicts."""

    __slots__ = ("config", "name", "_num_sets", "_sets", "_page_shift",
                 "stats")

    def __init__(self, config: TLBConfig, name: str = "tlb") -> None:
        if config.entries <= 0:
            raise ValueError("TLB must have at least one entry")
        if config.entries % config.associativity != 0:
            raise ValueError("TLB entries must be divisible by associativity")
        self.config = config
        self.name = name
        self._num_sets = max(config.entries // config.associativity, 1)
        self._sets = [OrderedDict() for _ in range(self._num_sets)]
        page_size = config.page_size
        self._page_shift = (page_size.bit_length() - 1
                            if (page_size & (page_size - 1)) == 0 else -1)
        self.stats = TLBStats()

    def _set_for(self, page: int) -> OrderedDict:
        return self._sets[page % self._num_sets]

    def lookup(self, address: int) -> bool:
        """Probe the TLB for the page containing ``address``."""
        shift = self._page_shift
        page = (address >> shift) if shift >= 0 \
            else address // self.config.page_size
        entries = self._sets[page % self._num_sets]
        stats = self.stats
        if page in entries:
            entries.move_to_end(page)
            stats.hits += 1
            return True
        stats.misses += 1
        return False

    def insert(self, address: int) -> None:
        """Install a translation for the page containing ``address``."""
        page = address // self.config.page_size
        entries = self._set_for(page)
        if page in entries:
            entries.move_to_end(page)
            return
        if len(entries) >= self.config.associativity:
            entries.popitem(last=False)
        entries[page] = True

    def flush(self) -> None:
        for entries in self._sets:
            entries.clear()
        # Statistics are intentionally preserved across flushes.


@dataclass
class TranslationResult:
    """Outcome of translating one address through the TLB hierarchy."""

    latency: int
    l1_hit: bool
    l2_hit: bool
    page_walk: bool


class TLBHierarchy:
    """Two-level TLB with a fixed-cost page walker.

    Args:
        l1_config: First-level TLB configuration (64 entries in the paper).
        l2_config: Second-level TLB configuration (3072 entries, 4-way,
            4-cycle latency in the paper).
        page_walk_latency: Cycles charged for a page walk that misses both
            TLBs.  The paper uses 2 hardware walkers; we model their effect as
            a fixed average walk latency since walks are rare for the
            synthetic traces.
    """

    __slots__ = ("l1", "l2", "page_walk_latency", "page_walks")

    def __init__(
        self,
        l1_config: Optional[TLBConfig] = None,
        l2_config: Optional[TLBConfig] = None,
        page_walk_latency: int = 50,
    ) -> None:
        self.l1 = TLB(l1_config or TLBConfig(entries=64, associativity=4,
                                             access_latency=1), name="L1TLB")
        self.l2 = TLB(l2_config or TLBConfig(entries=1536, associativity=4,
                                             access_latency=4), name="L2TLB")
        self.page_walk_latency = page_walk_latency
        self.page_walks = 0

    def translate(self, address: int) -> TranslationResult:
        """Translate an address, returning the latency it contributed.

        The L1 TLB is accessed in parallel with the VIPT L1 cache, so its
        latency is hidden on the L1 hit path; we still report it so callers
        can decide how to account for it.
        """
        if self.l1.lookup(address):
            return TranslationResult(
                latency=0, l1_hit=True, l2_hit=False, page_walk=False
            )
        if self.l2.lookup(address):
            self.l1.insert(address)
            return TranslationResult(
                latency=self.l2.config.access_latency,
                l1_hit=False,
                l2_hit=True,
                page_walk=False,
            )
        self.page_walks += 1
        self.l2.insert(address)
        self.l1.insert(address)
        return TranslationResult(
            latency=self.l2.config.access_latency + self.page_walk_latency,
            l1_hit=False,
            l2_hit=False,
            page_walk=True,
        )

    def translate_latency(self, address: int) -> int:
        """Latency-only :meth:`translate` for the per-access hot path.

        Identical side effects (lookups, insertions, page-walk count) without
        allocating a :class:`TranslationResult` per access.
        """
        l1 = self.l1
        shift = l1._page_shift
        page = (address >> shift) if shift >= 0 \
            else address // l1.config.page_size
        return self.translate_latency_page(page, address)

    def translate_latency_page(self, page: int, address: int) -> int:
        """:meth:`translate_latency` with the first-level page precomputed.

        The columnar replay path decomposes whole traces into page-number
        columns up front (see :meth:`repro.trace.TraceBuffer.page_column`),
        so the per-access hot path performs no shift at all.  ``page`` must
        be the page number under the first-level TLB's page size; the
        second-level TLB and the walker still receive the full address and
        derive their own page numbers (their page size may differ).  The
        first-level probe is inlined — it hits for almost every access.
        """
        l1 = self.l1
        entries = l1._sets[page % l1._num_sets]
        if page in entries:
            entries.move_to_end(page)
            l1.stats.hits += 1
            return 0
        l1.stats.misses += 1
        if self.l2.lookup(address):
            l1.insert(address)
            return self.l2.config.access_latency
        self.page_walks += 1
        self.l2.insert(address)
        l1.insert(address)
        return self.l2.config.access_latency + self.page_walk_latency

    @property
    def miss_ratio(self) -> float:
        """Combined miss ratio (page walks per translation)."""
        total = self.l1.stats.accesses
        return self.page_walks / total if total else 0.0

    def reset_statistics(self) -> None:
        self.l1.stats.reset()
        self.l2.stats.reset()
        self.page_walks = 0
