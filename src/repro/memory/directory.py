"""Cache-coherence directory collocated with the LLC tags.

The directory tracks, for every block cached anywhere on chip, which cores
hold it in their private caches (L1/L2) and which single core, if any, owns a
dirty copy.  The paper relies on this structure for two things:

1. normal MOESI coherence between private caches, and
2. **misprediction detection** for level prediction (Section III.E): when a
   request bypasses L2 and reaches the LLC, the collocated directory reveals
   whether the block actually lives in a private cache above, and when main
   memory is (wrongly) predicted, the directory is consulted before the memory
   access anyway, so the misprediction is caught "for free".

Because the directory sits next to the LLC tags, its lookup latency is folded
into the LLC tag latency by the hierarchy model; this module only provides the
tracking state, the decision logic and statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from .block import CoherenceState
from .coherence import (
    BusRequest,
    CoherenceDecision,
    decide_read,
    decide_write,
)


@dataclass(slots=True)
class DirectoryEntry:
    """Tracking state for one block."""

    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None

    @property
    def cached_anywhere(self) -> bool:
        return bool(self.sharers) or self.owner is not None

    def holders(self) -> Set[int]:
        holders = set(self.sharers)
        if self.owner is not None:
            holders.add(self.owner)
        return holders


@dataclass
class DirectoryStats:
    lookups: int = 0
    reads: int = 0
    writes: int = 0
    invalidations_sent: int = 0
    owner_forwards: int = 0
    misprediction_detections: int = 0
    writebacks: int = 0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


class Directory:
    """Full-map directory keyed by block address."""

    __slots__ = ("num_cores", "_entries", "stats")

    def __init__(self, num_cores: int = 1) -> None:
        if num_cores <= 0:
            raise ValueError("directory needs at least one core")
        self.num_cores = num_cores
        self._entries: Dict[int, DirectoryEntry] = {}
        self.stats = DirectoryStats()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def entry(self, block_addr: int) -> Optional[DirectoryEntry]:
        return self._entries.get(block_addr)

    def holders(self, block_addr: int) -> Set[int]:
        """Cores currently holding the block in a private cache."""
        entry = self._entries.get(block_addr)
        return entry.holders() if entry else set()

    def is_cached_privately(self, block_addr: int, exclude_core: Optional[int] = None
                            ) -> bool:
        """True when any private cache (optionally excluding one core) holds it."""
        holders = self.holders(block_addr)
        if exclude_core is not None:
            holders = holders - {exclude_core}
        return bool(holders)

    def owner_of(self, block_addr: int) -> Optional[int]:
        entry = self._entries.get(block_addr)
        return entry.owner if entry else None

    def remote_holder(self, block_addr: int,
                      exclude_core: int) -> Optional[int]:
        """Lowest-numbered core other than ``exclude_core`` holding the block.

        Allocation-free equivalent of ``min(holders(b) - {core})`` used on the
        per-access location path.
        """
        entry = self._entries.get(block_addr)
        if entry is None:
            return None
        best: Optional[int] = None
        for core in entry.sharers:
            if core != exclude_core and (best is None or core < best):
                best = core
        owner = entry.owner
        if owner is not None and owner != exclude_core \
                and (best is None or owner < best):
            best = owner
        return best

    # ------------------------------------------------------------------
    # Coherence transactions
    # ------------------------------------------------------------------
    def handle_request(
        self, block_addr: int, requestor: int, request: BusRequest
    ) -> CoherenceDecision:
        """Apply a coherence request and return the resulting decision."""
        self.stats.lookups += 1
        entry = self._entries.get(block_addr)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[block_addr] = entry

        if request is BusRequest.GET_SHARED:
            self.stats.reads += 1
            decision = decide_read(requestor, entry.sharers, entry.owner)
            if decision.owner_to_downgrade is not None:
                self.stats.owner_forwards += 1
                # MOESI: dirty owner keeps an Owned copy and becomes a sharer.
                entry.sharers.add(decision.owner_to_downgrade)
                entry.owner = decision.owner_to_downgrade
            entry.sharers.add(requestor)
            return decision

        if request is BusRequest.GET_MODIFIED:
            self.stats.writes += 1
            decision = decide_write(requestor, entry.sharers, entry.owner)
            self.stats.invalidations_sent += len(decision.sharers_to_invalidate)
            if decision.owner_to_downgrade is not None:
                self.stats.owner_forwards += 1
            entry.sharers = {requestor}
            entry.owner = requestor
            return decision

        if request is BusRequest.PUT_MODIFIED:
            self.stats.writebacks += 1
            if entry.owner == requestor:
                entry.owner = None
            entry.sharers.discard(requestor)
            self._drop_if_empty(block_addr, entry)
            return CoherenceDecision(
                sharers_to_invalidate=frozenset(),
                owner_to_downgrade=None,
                new_requestor_state=CoherenceState.INVALID,
                data_from_owner=False,
            )

        # PUT_SHARED: clean eviction notification.
        entry.sharers.discard(requestor)
        if entry.owner == requestor:
            entry.owner = None
        self._drop_if_empty(block_addr, entry)
        return CoherenceDecision(
            sharers_to_invalidate=frozenset(),
            owner_to_downgrade=None,
            new_requestor_state=CoherenceState.INVALID,
            data_from_owner=False,
        )

    def _drop_if_empty(self, block_addr: int, entry: DirectoryEntry) -> None:
        if not entry.cached_anywhere:
            self._entries.pop(block_addr, None)

    # ------------------------------------------------------------------
    # Level-prediction support
    # ------------------------------------------------------------------
    def detect_bypass_misprediction(
        self, block_addr: int, requestor: int
    ) -> bool:
        """Check whether a bypassed private level actually holds the block.

        Called when a level-predicted request that skipped L2 reaches the LLC.
        Returns True when the requestor's own private hierarchy holds the
        block (the bypass was wrong and recovery must re-issue to L2).
        """
        entry = self._entries.get(block_addr)
        detected = entry is not None and requestor in entry.holders()
        if detected:
            self.stats.misprediction_detections += 1
        return detected

    def record_private_fill(self, block_addr: int, core: int,
                            dirty: bool = False) -> None:
        """Track that ``core`` now holds the block in its private caches."""
        entry = self._entries.get(block_addr)
        if entry is None:
            # Avoid dict.setdefault here: its default argument would build a
            # DirectoryEntry (and its sharer set) on every call, present or
            # not, and this runs once per fill.
            entry = DirectoryEntry()
            self._entries[block_addr] = entry
        entry.sharers.add(core)
        if dirty:
            entry.owner = core

    def record_private_eviction(self, block_addr: int, core: int) -> None:
        """Track that ``core`` no longer holds the block privately."""
        entry = self._entries.get(block_addr)
        if entry is None:
            return
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = None
        self._drop_if_empty(block_addr, entry)

    def tracked_blocks(self) -> int:
        return len(self._entries)

    def reset_statistics(self) -> None:
        self.stats.reset()
