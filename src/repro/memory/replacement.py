"""Cache replacement policies.

The paper's configuration uses LRU everywhere (Table I).  We additionally
provide tree-PLRU, random and SRRIP policies, both so the cache model can be
reused as a general substrate and so ablation benchmarks can explore whether
the level-prediction results are sensitive to the replacement policy.

A replacement policy instance is owned by a single cache and tracks per-set
metadata keyed by ``(set_index, way)``.  Policies are deliberately stateless
with respect to addresses: the cache tells the policy which way was touched,
filled or invalidated and asks it which way to victimise.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence


class ReplacementPolicy(ABC):
    """Interface implemented by every replacement policy."""

    __slots__ = ("num_sets", "associativity")

    def __init__(self, num_sets: int, associativity: int) -> None:
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        self.num_sets = num_sets
        self.associativity = associativity

    @abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """Record a hit (or a fill immediately followed by use) on a way."""

    @abstractmethod
    def on_fill(self, set_index: int, way: int) -> None:
        """Record that a new line was installed into ``way``."""

    @abstractmethod
    def victim(self, set_index: int, valid_ways: Sequence[bool]) -> int:
        """Choose a way to evict.

        Invalid ways (``valid_ways[w]`` is False) are always preferred over
        evicting live data, matching real cache controllers.
        """

    def on_invalidate(self, set_index: int, way: int) -> None:
        """Record that a way was invalidated (default: no-op)."""

    def _first_invalid(self, valid_ways: Sequence[bool]) -> Optional[int]:
        # list.index runs at C speed; the common case (every way valid) is a
        # single containment scan with no Python-level iteration.
        if False in valid_ways:
            return valid_ways.index(False)
        return None


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used replacement.

    Recency is tracked with a monotonically increasing logical clock; the
    victim is the valid way with the smallest timestamp.
    """

    __slots__ = ("_clock", "_timestamps")

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._clock = 0
        self._timestamps: List[List[int]] = [
            [0] * associativity for _ in range(num_sets)
        ]

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def on_access(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._timestamps[set_index][way] = self._clock

    def on_fill(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._timestamps[set_index][way] = self._clock

    def on_invalidate(self, set_index: int, way: int) -> None:
        self._timestamps[set_index][way] = 0

    def victim(self, set_index: int, valid_ways: Sequence[bool]) -> int:
        if False in valid_ways:
            return valid_ways.index(False)
        stamps = self._timestamps[set_index]
        # index(min(...)) keeps the original first-minimum tie-break while
        # running both passes at C speed (no per-way lambda call).
        return stamps.index(min(stamps))


class TreePLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU, the common hardware approximation of LRU.

    The associativity must be a power of two.  Each set keeps
    ``associativity - 1`` direction bits arranged as an implicit binary tree;
    an access flips the bits along the path away from the touched way, and the
    victim is found by following the bits toward the least recently used side.
    """

    __slots__ = ("_bits",)

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        if associativity & (associativity - 1) != 0:
            raise ValueError("tree PLRU requires a power-of-two associativity")
        self._bits: List[List[bool]] = [
            [False] * max(associativity - 1, 1) for _ in range(num_sets)
        ]

    def _update_path(self, set_index: int, way: int) -> None:
        bits = self._bits[set_index]
        node = 0
        low, high = 0, self.associativity
        while high - low > 1:
            mid = (low + high) // 2
            go_right = way >= mid
            # Point the bit away from the accessed half.
            bits[node] = not go_right
            if go_right:
                node = 2 * node + 2
                low = mid
            else:
                node = 2 * node + 1
                high = mid

    def on_access(self, set_index: int, way: int) -> None:
        self._update_path(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        self._update_path(set_index, way)

    def victim(self, set_index: int, valid_ways: Sequence[bool]) -> int:
        invalid = self._first_invalid(valid_ways)
        if invalid is not None:
            return invalid
        bits = self._bits[set_index]
        node = 0
        low, high = 0, self.associativity
        while high - low > 1:
            mid = (low + high) // 2
            if bits[node]:
                node = 2 * node + 2
                low = mid
            else:
                node = 2 * node + 1
                high = mid
        return low


class RandomPolicy(ReplacementPolicy):
    """Random replacement with a seeded private RNG for reproducibility."""

    __slots__ = ("_rng",)

    def __init__(self, num_sets: int, associativity: int, seed: int = 0) -> None:
        super().__init__(num_sets, associativity)
        self._rng = random.Random(seed)

    def on_access(self, set_index: int, way: int) -> None:
        pass

    def on_fill(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int, valid_ways: Sequence[bool]) -> int:
        invalid = self._first_invalid(valid_ways)
        if invalid is not None:
            return invalid
        return self._rng.randrange(self.associativity)


class SRRIPPolicy(ReplacementPolicy):
    """Static re-reference interval prediction (SRRIP) with 2-bit RRPVs.

    Lines are inserted with a long re-reference prediction and promoted to the
    shortest one on a hit; the victim is the first way holding the maximum
    RRPV, aging the whole set until one is found.
    """

    MAX_RRPV = 3

    __slots__ = ("_rrpv",)

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._rrpv: List[List[int]] = [
            [self.MAX_RRPV] * associativity for _ in range(num_sets)
        ]

    def on_access(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = 0

    def on_fill(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = self.MAX_RRPV - 1

    def on_invalidate(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = self.MAX_RRPV

    def victim(self, set_index: int, valid_ways: Sequence[bool]) -> int:
        invalid = self._first_invalid(valid_ways)
        if invalid is not None:
            return invalid
        rrpvs = self._rrpv[set_index]
        while True:
            for way in range(self.associativity):
                if rrpvs[way] >= self.MAX_RRPV:
                    return way
            for way in range(self.associativity):
                rrpvs[way] += 1


_POLICIES: Dict[str, type] = {
    "lru": LRUPolicy,
    "plru": TreePLRUPolicy,
    "random": RandomPolicy,
    "srrip": SRRIPPolicy,
}


def make_replacement_policy(
    name: str, num_sets: int, associativity: int
) -> ReplacementPolicy:
    """Instantiate a replacement policy by name.

    Args:
        name: One of ``lru``, ``plru``, ``random``, ``srrip``.
        num_sets: Number of sets in the owning cache.
        associativity: Ways per set.

    Raises:
        ValueError: If the policy name is unknown.
    """
    try:
        cls = _POLICIES[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(_POLICIES)}"
        ) from exc
    return cls(num_sets, associativity)
