"""Declarative hierarchy specifications: the memory system as data.

The reproduction originally hard-coded the paper's Table I topology —
private L1/L2, a shared L3, one DDR4 channel — as attributes of
:class:`~repro.memory.hierarchy.HierarchyConfig`.  This module makes an
arbitrary hierarchy a *declarative spec* in the zigzag idiom: each cache
level is a frozen :class:`LevelSpec` (geometry, latencies, MSHR shape,
ports, optional per-access energy and area), and a :class:`HierarchySpec`
composes an ordered chain of levels plus a memory backend
(:class:`MemorySpec`), an interconnect (:class:`InterconnectSpec`) and a
TLB (:class:`TLBSpec`).

Specs are validated at construction — zero ways, non-power-of-two blocks,
shrinking capacities, non-monotone latencies, duplicate level names and
illegal inclusivity patterns all raise a contextual ``ValueError`` — and
round-trip *exactly* through JSON: ``HierarchySpec.from_json(s.to_json())
== s`` and ``to_json`` is a fixed point of the round trip.

Topology model
==============

``levels[0]`` is the private L1; ``levels[-1]`` is the shared LLC with
the collocated directory; everything in between is a private
intermediate level.  The level predictor's target space stays the
paper's (L2 / L3 / MEM): the whole private intermediate group is
classified as ``Level.L2``, the LLC as ``Level.L3`` — so predictors,
statistics and stored results keep their exact shapes for any depth.
Intermediate levels must be inclusive of the levels above them; only the
LLC may be non-inclusive (the paper's configuration).

Key stability
=============

``HierarchySpec.paper_single_core()`` / ``paper_multi_core()`` describe
exactly the legacy :class:`HierarchyConfig` defaults, and any spec that
is *legacy-exact* (a faithful image of a 3-level ``HierarchyConfig``:
default names, default TLB, no energy/area/port extras) canonicalises as
that legacy config via the ``__canonical__`` hook the store honours — so
the SHA-256 job keys of the paper systems are bit-identical whether the
hierarchy travels as legacy config or as spec, and the golden store
never moves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from .block import DEFAULT_BLOCK_SIZE, Level
from .cache import CacheConfig
from .dram import DRAMConfig
from .interconnect import InterconnectConfig

#: Schema tag embedded in every serialized hierarchy spec.
HIERARCHY_SCHEMA = "repro-hierarchy/1"

#: The default level names of the paper's 3-level chain (legacy-exact).
_LEGACY_NAMES = ("L1", "L2", "L3")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class LevelSpec:
    """One cache level of a declarative hierarchy.

    Attributes:
        name: Unique level name (``"L1"``, ``"L2.5"``, ``"LLC"``...).
        size_bytes / associativity / block_size: Geometry.  The block
            size must be a power of two and identical across the chain.
        tag_latency / data_latency / sequential_tag_data: Access timing;
            a sequential level resolves tags before data
            (``hit = tag + data``), a parallel one overlaps them.
        mshr_entries / mshr_demand_reserve: Miss-status-holding-register
            geometry; the reserve is the demand-only fraction.
        ports: Tag-port count (declarative, zigzag-style; the timing
            model's global ``parallel_port_penalty`` models port
            pressure, so ``ports`` is data for sweeps and reports).
        inclusive: Whether this level is inclusive of the levels above
            it.  Intermediate levels must be inclusive; only the LLC may
            opt out (the paper's non-inclusive L3).
        read_energy_nj / write_energy_nj: Optional zigzag-style
            per-access energies; ``None`` selects the role-based default
            from :class:`~repro.energy.model.EnergyParameters`.
        area_mm2: Optional area annotation (reporting only).
    """

    name: str
    size_bytes: int
    associativity: int
    block_size: int = DEFAULT_BLOCK_SIZE
    tag_latency: int = 1
    data_latency: int = 0
    sequential_tag_data: bool = False
    mshr_entries: int = 16
    mshr_demand_reserve: float = 0.25
    ports: int = 1
    inclusive: bool = True
    read_energy_nj: Optional[float] = None
    write_energy_nj: Optional[float] = None
    area_mm2: Optional[float] = None

    def __post_init__(self) -> None:
        _require(bool(self.name), "cache level needs a non-empty name")
        _require(self.size_bytes > 0,
                 f"level {self.name!r}: size_bytes must be positive, "
                 f"got {self.size_bytes}")
        _require(self.associativity > 0,
                 f"level {self.name!r}: associativity must be at least 1 "
                 f"way, got {self.associativity}")
        _require(self.block_size > 0
                 and (self.block_size & (self.block_size - 1)) == 0,
                 f"level {self.name!r}: block_size must be a power of "
                 f"two, got {self.block_size}")
        way_bytes = self.block_size * self.associativity
        _require(self.size_bytes % way_bytes == 0,
                 f"level {self.name!r}: size_bytes ({self.size_bytes}) "
                 f"must be a multiple of block_size x associativity "
                 f"({way_bytes})")
        _require(self.tag_latency >= 0 and self.data_latency >= 0,
                 f"level {self.name!r}: latencies must be non-negative")
        _require(self.mshr_entries > 0,
                 f"level {self.name!r}: mshr_entries must be positive")
        _require(0.0 <= self.mshr_demand_reserve < 1.0,
                 f"level {self.name!r}: mshr_demand_reserve must be in "
                 f"[0, 1), got {self.mshr_demand_reserve}")
        _require(self.ports >= 1,
                 f"level {self.name!r}: ports must be at least 1")
        for label in ("read_energy_nj", "write_energy_nj", "area_mm2"):
            value = getattr(self, label)
            _require(value is None or value >= 0.0,
                     f"level {self.name!r}: {label} must be "
                     f"non-negative, got {value}")

    @property
    def hit_latency(self) -> int:
        """Cycles to return data on a hit."""
        if self.sequential_tag_data:
            return self.tag_latency + self.data_latency
        return max(self.tag_latency, self.data_latency)

    def cache_config(self, level: Level) -> CacheConfig:
        """The runtime :class:`CacheConfig` this spec describes."""
        return CacheConfig(
            level=level, size_bytes=self.size_bytes,
            associativity=self.associativity, block_size=self.block_size,
            tag_latency=self.tag_latency, data_latency=self.data_latency,
            sequential_tag_data=self.sequential_tag_data,
            mshr_entries=self.mshr_entries,
            mshr_demand_reserve=self.mshr_demand_reserve)

    @staticmethod
    def from_cache_config(name: str, config: CacheConfig,
                          inclusive: bool = True) -> "LevelSpec":
        return LevelSpec(
            name=name, size_bytes=config.size_bytes,
            associativity=config.associativity,
            block_size=config.block_size, tag_latency=config.tag_latency,
            data_latency=config.data_latency,
            sequential_tag_data=config.sequential_tag_data,
            mshr_entries=config.mshr_entries,
            mshr_demand_reserve=config.mshr_demand_reserve,
            inclusive=inclusive)


@dataclass(frozen=True)
class TLBSpec:
    """The (possibly asymmetric) two-level TLB attached to each core.

    The defaults reproduce the paper hierarchy's TLB: a 64-entry 4-way
    L1 TLB (1 cycle) over a 1536-entry 4-way L2 TLB (4 cycles) with a
    50-cycle page walk and 4 KiB pages.
    """

    l1_entries: int = 64
    l1_associativity: int = 4
    l1_latency: int = 1
    l2_entries: int = 1536
    l2_associativity: int = 4
    l2_latency: int = 4
    page_size: int = 4096
    page_walk_latency: int = 50

    def __post_init__(self) -> None:
        for prefix in ("l1", "l2"):
            entries = getattr(self, f"{prefix}_entries")
            ways = getattr(self, f"{prefix}_associativity")
            _require(entries > 0,
                     f"TLB {prefix}: entries must be positive, "
                     f"got {entries}")
            _require(ways > 0 and entries % ways == 0,
                     f"TLB {prefix}: entries ({entries}) must be a "
                     f"positive multiple of associativity ({ways})")
            _require(getattr(self, f"{prefix}_latency") >= 0,
                     f"TLB {prefix}: latency must be non-negative")
        _require(self.page_size > 0
                 and (self.page_size & (self.page_size - 1)) == 0,
                 f"TLB: page_size must be a power of two, "
                 f"got {self.page_size}")
        _require(self.page_walk_latency >= 0,
                 "TLB: page_walk_latency must be non-negative")

    def build(self):
        """Construct the runtime :class:`~repro.memory.tlb.TLBHierarchy`."""
        from .tlb import TLBConfig, TLBHierarchy

        return TLBHierarchy(
            l1_config=TLBConfig(entries=self.l1_entries,
                                associativity=self.l1_associativity,
                                page_size=self.page_size,
                                access_latency=self.l1_latency),
            l2_config=TLBConfig(entries=self.l2_entries,
                                associativity=self.l2_associativity,
                                page_size=self.page_size,
                                access_latency=self.l2_latency),
            page_walk_latency=self.page_walk_latency)


@dataclass(frozen=True)
class MemorySpec:
    """The DRAM backend, mirroring :class:`~repro.memory.dram.DRAMConfig`."""

    core_frequency_ghz: float = 4.0
    dram_frequency_mhz: float = 1200.0
    cas_latency: int = 17
    trcd: int = 17
    trp: int = 17
    tras: int = 39
    burst_cycles: int = 4
    num_banks: int = 16
    num_ranks: int = 1
    row_size_bytes: int = 8192
    channel_capacity_gb: int = 16
    controller_latency_core_cycles: int = 15
    refresh_penalty_core_cycles: float = 1.0
    max_queue_fraction: float = 0.5

    def __post_init__(self) -> None:
        _require(self.core_frequency_ghz > 0
                 and self.dram_frequency_mhz > 0,
                 "memory: clock frequencies must be positive")
        _require(self.num_banks > 0 and self.num_ranks > 0,
                 "memory: bank/rank counts must be positive")
        _require(self.row_size_bytes > 0,
                 "memory: row_size_bytes must be positive")

    def dram_config(self) -> DRAMConfig:
        return DRAMConfig(**{f.name: getattr(self, f.name)
                             for f in fields(self)})

    @staticmethod
    def from_dram_config(config: DRAMConfig) -> "MemorySpec":
        return MemorySpec(**{f.name: getattr(config, f.name)
                             for f in fields(MemorySpec)})


@dataclass(frozen=True)
class InterconnectSpec:
    """Hop latencies, mirroring :class:`InterconnectConfig`.

    ``l1_to_l2`` is charged on every hop between private levels (L1 to
    the first intermediate, and between intermediates in chains deeper
    than three levels); ``l2_to_llc`` on the hop into the shared LLC.
    """

    l1_to_l2: int = 2
    l2_to_llc: int = 4
    llc_to_memory: int = 6
    recovery_transaction: int = 8
    contention_per_extra_core: float = 1.5

    def __post_init__(self) -> None:
        for name in ("l1_to_l2", "l2_to_llc", "llc_to_memory",
                     "recovery_transaction"):
            _require(getattr(self, name) >= 0,
                     f"interconnect: {name} must be non-negative")
        _require(self.contention_per_extra_core >= 0.0,
                 "interconnect: contention_per_extra_core must be "
                 "non-negative")

    def interconnect_config(self) -> InterconnectConfig:
        return InterconnectConfig(**{f.name: getattr(self, f.name)
                                     for f in fields(self)})

    @staticmethod
    def from_interconnect_config(config: InterconnectConfig
                                 ) -> "InterconnectSpec":
        return InterconnectSpec(**{f.name: getattr(config, f.name)
                                   for f in fields(InterconnectSpec)})


def _paper_levels(llc_size_bytes: int) -> Tuple[LevelSpec, ...]:
    return (
        LevelSpec(name="L1", size_bytes=32 * 1024, associativity=4,
                  tag_latency=4, data_latency=0, sequential_tag_data=False,
                  mshr_entries=16, mshr_demand_reserve=0.25),
        LevelSpec(name="L2", size_bytes=256 * 1024, associativity=8,
                  tag_latency=12, data_latency=0, sequential_tag_data=False,
                  mshr_entries=32, mshr_demand_reserve=0.25),
        LevelSpec(name="L3", size_bytes=llc_size_bytes, associativity=16,
                  tag_latency=20, data_latency=35, sequential_tag_data=True,
                  mshr_entries=64, mshr_demand_reserve=0.25,
                  inclusive=False),
    )


@dataclass(frozen=True)
class HierarchySpec:
    """A declarative memory hierarchy: an ordered cache chain + backend.

    ``levels[0]`` is the private L1, ``levels[-1]`` the shared LLC (with
    the collocated directory); levels in between are private
    intermediates.  Validated at construction and exactly
    JSON-round-trippable (:meth:`to_json` / :meth:`from_json`).
    """

    levels: Tuple[LevelSpec, ...]
    tlb: TLBSpec = field(default_factory=TLBSpec)
    memory: MemorySpec = field(default_factory=MemorySpec)
    interconnect: InterconnectSpec = field(
        default_factory=InterconnectSpec)
    memory_speculative_launch: bool = True
    parallel_port_penalty: float = 2.0
    prefetch_inflight_window: int = 32
    ideal_miss_latency: bool = False

    def __post_init__(self) -> None:
        levels = tuple(self.levels)
        object.__setattr__(self, "levels", levels)
        _require(len(levels) >= 2,
                 f"a hierarchy needs at least 2 cache levels (an L1 and "
                 f"an LLC), got {len(levels)}")
        names = [level.name for level in levels]
        seen = set()
        for name in names:
            _require(name not in seen,
                     f"duplicate level name {name!r} in hierarchy "
                     f"(levels: {', '.join(names)})")
            seen.add(name)
        block_sizes = {level.block_size for level in levels}
        _require(len(block_sizes) == 1,
                 f"all levels must share one block size, got "
                 f"{sorted(block_sizes)}")
        for closer, deeper in zip(levels, levels[1:]):
            _require(deeper.size_bytes >= closer.size_bytes,
                     f"capacity must not shrink down the chain: "
                     f"{deeper.name!r} ({deeper.size_bytes} B) is "
                     f"smaller than {closer.name!r} "
                     f"({closer.size_bytes} B)")
            _require(deeper.hit_latency >= closer.hit_latency,
                     f"hit latency must not shrink down the chain: "
                     f"{deeper.name!r} ({deeper.hit_latency} cy) is "
                     f"faster than {closer.name!r} "
                     f"({closer.hit_latency} cy)")
        for level in levels[:-1]:
            _require(level.inclusive,
                     f"intermediate level {level.name!r} must be "
                     f"inclusive of the levels above it; only the LLC "
                     f"({levels[-1].name!r}) may be non-inclusive")
        _require(self.parallel_port_penalty >= 0.0,
                 "parallel_port_penalty must be non-negative")
        _require(self.prefetch_inflight_window > 0,
                 "prefetch_inflight_window must be positive")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of cache levels in the chain (excluding memory)."""
        return len(self.levels)

    @property
    def l1(self) -> LevelSpec:
        return self.levels[0]

    @property
    def llc(self) -> LevelSpec:
        return self.levels[-1]

    @property
    def intermediates(self) -> Tuple[LevelSpec, ...]:
        """The private levels between L1 and the LLC (possibly empty)."""
        return self.levels[1:-1]

    # ------------------------------------------------------------------
    # Paper topologies
    # ------------------------------------------------------------------
    @staticmethod
    def paper_single_core() -> "HierarchySpec":
        """The single-core Table I topology (2 MB LLC) as a spec."""
        return HierarchySpec(levels=_paper_levels(2 * 1024 * 1024))

    @staticmethod
    def paper_multi_core() -> "HierarchySpec":
        """The quad-core Table I topology (8 MB shared LLC) as a spec."""
        return HierarchySpec(levels=_paper_levels(8 * 1024 * 1024))

    # ------------------------------------------------------------------
    # Legacy interop
    # ------------------------------------------------------------------
    @staticmethod
    def from_legacy(config) -> "HierarchySpec":
        """Lift a legacy 3-level :class:`HierarchyConfig` into a spec."""
        return HierarchySpec(
            levels=(
                LevelSpec.from_cache_config("L1", config.l1),
                LevelSpec.from_cache_config("L2", config.l2),
                LevelSpec.from_cache_config("L3", config.l3,
                                            inclusive=False),
            ),
            memory=MemorySpec.from_dram_config(config.dram),
            interconnect=InterconnectSpec.from_interconnect_config(
                config.interconnect),
            memory_speculative_launch=config.memory_speculative_launch,
            parallel_port_penalty=config.parallel_port_penalty,
            prefetch_inflight_window=config.prefetch_inflight_window,
            ideal_miss_latency=config.ideal_miss_latency)

    def to_legacy(self):
        """Lower a 3-level spec to a legacy :class:`HierarchyConfig`.

        Only exact 3-level chains lower; extras the legacy config cannot
        express (custom TLBs, per-level energies...) are dropped — use
        :meth:`is_legacy_exact` to know whether the lowering is lossless.
        """
        from .hierarchy import HierarchyConfig

        _require(self.depth == 3,
                 f"only 3-level hierarchies lower to the legacy config, "
                 f"this one has {self.depth} levels")
        return HierarchyConfig(
            l1=self.levels[0].cache_config(Level.L1),
            l2=self.levels[1].cache_config(Level.L2),
            l3=self.levels[2].cache_config(Level.L3),
            dram=self.memory.dram_config(),
            interconnect=self.interconnect.interconnect_config(),
            memory_speculative_launch=self.memory_speculative_launch,
            parallel_port_penalty=self.parallel_port_penalty,
            prefetch_inflight_window=self.prefetch_inflight_window,
            ideal_miss_latency=self.ideal_miss_latency)

    def is_legacy_exact(self) -> bool:
        """True when this spec is a faithful image of a legacy config.

        Holds exactly when lowering to :class:`HierarchyConfig` and
        lifting back reproduces this spec — 3 levels with the default
        names and inclusivity pattern, the default TLB, and no
        energy/area/port extras.
        """
        if self.depth != 3:
            return False
        if tuple(level.name for level in self.levels) != _LEGACY_NAMES:
            return False
        return HierarchySpec.from_legacy(self.to_legacy()) == self

    def __canonical__(self, canonicalize):
        """Store-canonicalisation hook (see ``repro.sim.store``).

        Legacy-exact specs canonicalise as the :class:`HierarchyConfig`
        they describe, so the SHA-256 job key of a paper system is
        bit-identical whether its hierarchy travels as legacy config or
        as spec — the golden store never moves.  Anything the legacy
        config cannot express falls through to the generic dataclass
        canonical form.
        """
        if self.is_legacy_exact():
            return canonicalize(self.to_legacy())
        return NotImplemented

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Canonical JSON serialization (a fixed point of the round trip)."""
        payload: Dict[str, Any] = {
            "schema": HIERARCHY_SCHEMA,
            "levels": [
                {f.name: getattr(level, f.name)
                 for f in fields(LevelSpec)}
                for level in self.levels
            ],
            "tlb": {f.name: getattr(self.tlb, f.name)
                    for f in fields(TLBSpec)},
            "memory": {f.name: getattr(self.memory, f.name)
                       for f in fields(MemorySpec)},
            "interconnect": {f.name: getattr(self.interconnect, f.name)
                             for f in fields(InterconnectSpec)},
            "memory_speculative_launch": self.memory_speculative_launch,
            "parallel_port_penalty": self.parallel_port_penalty,
            "prefetch_inflight_window": self.prefetch_inflight_window,
            "ideal_miss_latency": self.ideal_miss_latency,
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    @staticmethod
    def from_json(text: str) -> "HierarchySpec":
        """Parse (and validate) a spec serialized by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"hierarchy spec is not valid JSON: {exc}") \
                from None
        if not isinstance(payload, dict):
            raise ValueError("hierarchy spec must be a JSON object")
        schema = payload.get("schema")
        if schema != HIERARCHY_SCHEMA:
            raise ValueError(
                f"unsupported hierarchy spec schema {schema!r} "
                f"(expected {HIERARCHY_SCHEMA!r})")
        known = {"schema", "levels", "tlb", "memory", "interconnect",
                 "memory_speculative_launch", "parallel_port_penalty",
                 "prefetch_inflight_window", "ideal_miss_latency"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown hierarchy spec field(s): "
                             f"{', '.join(sorted(unknown))}")
        raw_levels = payload.get("levels")
        if not isinstance(raw_levels, list) or not raw_levels:
            raise ValueError("hierarchy spec needs a non-empty "
                             "'levels' list")
        return HierarchySpec(
            levels=tuple(_parse_section(LevelSpec, entry,
                                        f"levels[{index}]")
                         for index, entry in enumerate(raw_levels)),
            tlb=_parse_section(TLBSpec, payload.get("tlb", {}), "tlb"),
            memory=_parse_section(MemorySpec, payload.get("memory", {}),
                                  "memory"),
            interconnect=_parse_section(
                InterconnectSpec, payload.get("interconnect", {}),
                "interconnect"),
            memory_speculative_launch=bool(
                payload.get("memory_speculative_launch", True)),
            parallel_port_penalty=float(
                payload.get("parallel_port_penalty", 2.0)),
            prefetch_inflight_window=int(
                payload.get("prefetch_inflight_window", 32)),
            ideal_miss_latency=bool(
                payload.get("ideal_miss_latency", False)))

    def describe(self) -> str:
        """A one-line human summary (used by CLI/reporting)."""
        chain = " -> ".join(
            f"{level.name}:{level.size_bytes // 1024}KB"
            for level in self.levels)
        return f"{self.depth}-level [{chain}] + DRAM"


def _parse_section(spec_type, data: Any, where: str):
    """Build one nested spec dataclass from its JSON object."""
    if not isinstance(data, dict):
        raise ValueError(f"hierarchy spec: {where} must be an object, "
                         f"got {data!r}")
    known = {f.name for f in fields(spec_type)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"hierarchy spec: unknown field(s) in {where}: "
                         f"{', '.join(sorted(unknown))}")
    try:
        return spec_type(**data)
    except TypeError as exc:
        raise ValueError(f"hierarchy spec: malformed {where}: {exc}") \
            from None


def load_hierarchy(path: Union[str, Path]) -> HierarchySpec:
    """Load (and validate) a hierarchy spec from a JSON file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ValueError(f"cannot read hierarchy spec {path}: {exc}") \
            from None
    try:
        return HierarchySpec.from_json(text)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None


def derive_llc(spec: HierarchySpec, **overrides) -> HierarchySpec:
    """A copy of ``spec`` with its LLC level replaced field-by-field.

    ``dataclasses.replace``-style derivation: every unnamed field is
    carried over from the existing LLC spec, so adding a field to
    :class:`LevelSpec` can never silently drop it from derived variants.
    """
    llc = replace(spec.levels[-1], **overrides)
    return replace(spec, levels=spec.levels[:-1] + (llc,))
