"""Fundamental memory-system data types.

This module defines the small value types shared by every other part of the
simulator: physical addresses and their decompositions, memory-hierarchy
levels, access types, and the :class:`MemoryAccess` record that workload
generators produce and the hierarchy consumes.

The simulator works on *block* granularity (64 bytes by default, matching the
paper's configuration) but keeps full byte addresses in the access records so
that sub-block structures (the TLB, the LocMap address mapping) can be modelled
faithfully.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Default cache block (line) size in bytes, as used throughout the paper.
DEFAULT_BLOCK_SIZE = 64

#: Default page size in bytes (4 KiB pages unless a workload asks for 2 MiB).
DEFAULT_PAGE_SIZE = 4096


class Level(enum.IntEnum):
    """Memory-hierarchy levels.

    The integer values order the levels from closest to the core (L1) to the
    furthest (main memory).  The level predictor never predicts L1 (see
    Section III.A of the paper); its prediction targets are L2, L3 and MEM.
    """

    L1 = 1
    L2 = 2
    L3 = 3
    MEM = 4

    @property
    def is_cache(self) -> bool:
        """True for on-chip cache levels (L1, L2, L3)."""
        return self is not Level.MEM

    def closer_than(self, other: "Level") -> bool:
        """True if ``self`` is closer to the core than ``other``."""
        return int(self) < int(other)


#: The set of levels the level predictor may target (everything but L1).
PREDICTABLE_LEVELS = (Level.L2, Level.L3, Level.MEM)


class AccessType(enum.Enum):
    """Type of a memory access as seen by the hierarchy."""

    LOAD = "load"
    STORE = "store"
    PREFETCH = "prefetch"
    WRITEBACK = "writeback"

    @property
    def is_demand(self) -> bool:
        """Demand accesses are loads and stores issued by the core."""
        return self in (AccessType.LOAD, AccessType.STORE)


def block_address(address: int, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Return the block-aligned address containing ``address``."""
    return address & ~(block_size - 1)


def block_number(address: int, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Return the block index (address divided by the block size)."""
    return address // block_size


def page_number(address: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Return the virtual/physical page number containing ``address``."""
    return address // page_size


def page_offset(address: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Return the offset of ``address`` within its page."""
    return address % page_size


@dataclass(slots=True)
class MemoryAccess:
    """A single memory reference produced by a workload generator.

    Attributes:
        address: Byte address of the reference (virtual == physical in this
            simulator unless a TLB is configured to translate).
        access_type: Load, store, prefetch or writeback.
        pc: Program counter of the instruction issuing the access.  Used by
            PC-indexed predictors and prefetchers.
        size: Number of bytes accessed.
        depends_on_previous: True when the address of this access was computed
            from the data returned by the immediately preceding load (pointer
            chasing).  The core model serialises dependent accesses, which is
            what limits memory-level parallelism for graph workloads.
        non_memory_instructions: Number of non-memory instructions the core
            executes between the previous access and this one.  Used by the
            core timing model to compute IPC.
        thread_id: Logical thread issuing the access (multi-core simulations).
    """

    address: int
    access_type: AccessType = AccessType.LOAD
    pc: int = 0
    size: int = 8
    depends_on_previous: bool = False
    non_memory_instructions: int = 2
    thread_id: int = 0

    def block(self, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
        """Block-aligned address of this access."""
        return block_address(self.address, block_size)

    @property
    def is_load(self) -> bool:
        return self.access_type is AccessType.LOAD

    @property
    def is_store(self) -> bool:
        return self.access_type is AccessType.STORE


class CoherenceState(enum.Enum):
    """MOESI coherence states used by caches and the directory."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def is_valid(self) -> bool:
        return self is not CoherenceState.INVALID

    @property
    def is_dirty(self) -> bool:
        """States that require a writeback when evicted."""
        return self in (CoherenceState.MODIFIED, CoherenceState.OWNED)

    @property
    def can_write(self) -> bool:
        return self in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE)


@dataclass(slots=True)
class CacheLine:
    """One cache line (block) stored in a set-associative cache.

    Attributes:
        tag: Tag bits of the block address.
        block_addr: Full block-aligned address (kept for convenience; real
            hardware reconstructs it from the tag and set index).
        state: MOESI coherence state.
        dirty: True when the line holds data newer than the next level.
        prefetched: True when the line was brought in by a prefetcher and has
            not yet been referenced by a demand access.  Used for prefetcher
            accuracy accounting.
        last_touch: Logical timestamp of the last access (LRU bookkeeping).
        inserted_at: Logical timestamp when the line was filled.
    """

    tag: int
    block_addr: int
    state: CoherenceState = CoherenceState.EXCLUSIVE
    dirty: bool = False
    prefetched: bool = False
    last_touch: int = 0
    inserted_at: int = 0

    @property
    def valid(self) -> bool:
        return self.state.is_valid


@dataclass(slots=True)
class AccessResult:
    """Outcome of sending one access through the memory hierarchy.

    Attributes:
        hit_level: The level at which the data was found.
        latency: Total load-to-use latency in core cycles.
        levels_looked_up: Levels whose tag arrays were accessed while servicing
            this request (for energy accounting).
        bypassed_levels: Levels skipped on the way down due to level
            prediction.
        predicted_levels: The set of levels predicted (empty when the
            prediction machinery was not involved, e.g. on an L1 hit).
        misprediction: True when recovery through the directory was required.
        used_pld: True when the Popular Levels Detector produced the
            prediction (metadata cache miss path).
        energy_nj: Energy charged to this access, in nanojoules.
    """

    hit_level: Level
    latency: float
    levels_looked_up: tuple = ()
    bypassed_levels: tuple = ()
    predicted_levels: tuple = ()
    misprediction: bool = False
    used_pld: bool = False
    energy_nj: float = 0.0
