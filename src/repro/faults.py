"""Deterministic, seedable fault-injection plane.

The service's north star is surviving real traffic, and a robustness claim
nobody can exercise is not a claim.  This module turns every failure mode
the stack recovers from — a disk throwing ``EIO`` mid-append, a torn write,
a crashing worker, a hung simulation, a dropped connection — into a
*scheduled, reproducible event*: a declarative fault schedule names a
**site** (a choke point the production code calls through), a **kind** of
fault and the deterministic parameters deciding when it fires.

Fault sites
===========

======================  ====================================================
site                    where the hook sits
======================  ====================================================
``store.append``        :func:`repro.sim.store._append_payload`, after the
                        torn-tail repair and before the single ``write``
``store.read``          :meth:`repro.sim.store.ResultStore.get`
``trace.save``          :meth:`repro.trace.TraceBuffer.save`
``trace.load``          :meth:`repro.trace.TraceBuffer.load`
``worker.job``          :func:`repro.sim.engine.execute_job`
``service.response``    the daemon's socket handler, before the response
                        line is written
``client.connect``      :meth:`repro.service.ServiceClient._connect`
======================  ====================================================

Fault kinds
===========

=============  ============================================================
kind           effect at the site
=============  ============================================================
``eio``        raise ``OSError(EIO)`` — a failing disk / torn socket
``enospc``     raise ``OSError(ENOSPC)`` — media full
``torn``       at byte-writing sites (``store.append``, ``trace.save``):
               write only a prefix of the payload, then raise
               ``OSError(EIO)`` — a process killed mid-write; elsewhere
               equivalent to ``eio``
``crash``      raise :class:`InjectedCrashError` — an exception escaping a
               worker the way a real bug would
``kill``       ``os._exit(86)`` — genuine process death.  Acts only in a
               worker *child* process (an engine pool worker); in the main
               or daemon process the rule is evaluated but inert, so a
               schedule can never take the process under test down (use
               ``crash`` for thread-pool workers)
``latency``    sleep ``ms`` milliseconds, then continue (a slow disk / GC
               pause); the only kind that does not raise
``drop``       raise ``ConnectionResetError`` — a dropped connection
=============  ============================================================

Schedules
=========

A schedule is a ``;``-separated list of rules::

    store.append:eio@p=0.05,seed=7
    worker.job:crash@p=0.3,seed=3,times=5;service.response:drop@times=2

Each rule is ``site:kind`` plus optional ``@key=value`` parameters:

``p``      firing probability per evaluation (default 1.0), drawn from the
           rule's **own** seeded RNG — the decision sequence depends only on
           ``seed`` and the evaluation count, never on wall clock or PID;
``seed``   RNG seed (default 0);
``times``  cap on total fires (default unbounded) — the knob that makes
           chaos tests convergent: retries always win eventually;
``after``  evaluations to skip before the rule may fire (default 0);
``ms``     latency duration for ``latency`` rules (default 10).

Schedules come from the ``REPRO_FAULTS`` environment variable (so engine
worker processes inherit them) or programmatically via :func:`install`.
**Off by default with zero hot-path overhead**: the hooks sit at
store/trace/job/connection granularity — never inside the per-access replay
loop — and with no plane installed :func:`fault_point` is one global load
and a ``None`` check (see the ``fault_plane`` section of
``BENCH_throughput.json`` for the pinned numbers).

Faults may cost retries; they must never cost correctness.  The chaos
harness (``tests/test_faults.py``) runs the golden grid under randomized
schedules and asserts the final stats are bit-identical to
``GOLDEN_stats.json``.
"""

from __future__ import annotations

import errno
import multiprocessing
import os
import random
import threading
import time
from typing import Any, Dict, List, Optional

#: Environment variable carrying the fault schedule ("" / unset disables).
REPRO_FAULTS_ENV = "REPRO_FAULTS"

#: Every hook site the production code calls through.
FAULT_SITES = (
    "store.append",
    "store.read",
    "trace.save",
    "trace.load",
    "worker.job",
    "service.response",
    "client.connect",
)

#: Injectable fault kinds (see the module docstring for semantics).
FAULT_KINDS = ("eio", "enospc", "torn", "crash", "kill", "latency", "drop")

#: Sites that pass a payload size and honour partial-write ``torn`` faults.
_TORN_SITES = frozenset({"store.append", "trace.save"})

#: Exit status of an injected ``kill`` (distinctive in waitpid output).
KILL_EXIT_STATUS = 86

#: Default latency fault duration (milliseconds).
DEFAULT_LATENCY_MS = 10.0


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` / ``--faults`` schedule that does not parse."""


class InjectedCrashError(RuntimeError):
    """An injected worker crash (the ``crash`` kind, and ``kill`` outside
    worker child processes)."""


def _injected_os_error(code: int, site: str) -> OSError:
    """A *genuine* OSError — recovery code must treat injected faults
    exactly like real ones, so nothing marks them as synthetic."""
    return OSError(code, f"injected fault at {site}: {os.strerror(code)}")


# ======================================================================
# Rules
# ======================================================================
class FaultRule:
    """One scheduled fault: a (site, kind) plus deterministic firing state.

    The decision sequence is a pure function of (seed, evaluation index):
    every evaluation draws from the rule's private ``random.Random``, so a
    schedule replays identically across runs with the same call sequence.
    """

    __slots__ = ("site", "kind", "p", "seed", "times", "after", "ms",
                 "evaluated", "fired", "_rng")

    def __init__(self, site: str, kind: str, p: float = 1.0, seed: int = 0,
                 times: Optional[int] = None, after: int = 0,
                 ms: float = DEFAULT_LATENCY_MS) -> None:
        if site not in FAULT_SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r}; known: "
                f"{', '.join(FAULT_SITES)}")
        if kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r}; known: "
                f"{', '.join(FAULT_KINDS)}")
        if not 0.0 <= p <= 1.0:
            raise FaultSpecError(f"fault probability p={p} outside [0, 1]")
        if times is not None and times < 0:
            raise FaultSpecError(f"times={times} must be >= 0")
        if after < 0:
            raise FaultSpecError(f"after={after} must be >= 0")
        if ms < 0:
            raise FaultSpecError(f"ms={ms} must be >= 0")
        self.site = site
        self.kind = kind
        self.p = p
        self.seed = seed
        self.times = times
        self.after = after
        self.ms = ms
        self.evaluated = 0
        self.fired = 0
        self._rng = random.Random(seed)

    def decide(self) -> bool:
        """One deterministic firing decision.  Caller holds the plane lock.

        The RNG is always advanced (even while ``after`` suppresses or
        ``times`` exhausts the rule), so the decision at evaluation *i*
        depends only on the seed — never on the other parameters.
        """
        self.evaluated += 1
        draw = self._rng.random()
        if self.times is not None and self.fired >= self.times:
            return False
        if self.evaluated <= self.after:
            return False
        if draw < self.p:
            self.fired += 1
            return True
        return False

    def spec(self) -> str:
        """The rule back in schedule syntax (parse/format round-trip)."""
        params = []
        if self.p != 1.0:
            params.append(f"p={self.p}")
        if self.seed:
            params.append(f"seed={self.seed}")
        if self.times is not None:
            params.append(f"times={self.times}")
        if self.after:
            params.append(f"after={self.after}")
        if self.kind == "latency" and self.ms != DEFAULT_LATENCY_MS:
            params.append(f"ms={self.ms}")
        tail = "@" + ",".join(params) if params else ""
        return f"{self.site}:{self.kind}{tail}"


def parse_schedule(spec: str) -> List[FaultRule]:
    """Parse a schedule string into rules (see the module docstring).

    Raises :class:`FaultSpecError` with the offending entry named — a typo
    in a chaos schedule must fail loudly, not silently inject nothing.
    """
    rules: List[FaultRule] = []
    for raw_entry in spec.replace("\n", ";").split(";"):
        entry = raw_entry.strip()
        if not entry:
            continue
        head, _, param_text = entry.partition("@")
        site, sep, kind = head.strip().partition(":")
        if not sep or not site or not kind:
            raise FaultSpecError(
                f"malformed fault entry {entry!r} (expected "
                f"'site:kind[@p=..,seed=..,times=..,after=..,ms=..]')")
        params: Dict[str, Any] = {}
        for raw_param in param_text.split(","):
            param = raw_param.strip()
            if not param:
                continue
            key, sep, value = param.partition("=")
            key = key.strip()
            if not sep or key not in ("p", "seed", "times", "after", "ms"):
                raise FaultSpecError(
                    f"malformed fault parameter {param!r} in {entry!r}")
            try:
                params[key] = float(value) if key in ("p", "ms") \
                    else int(value)
            except ValueError:
                raise FaultSpecError(
                    f"non-numeric fault parameter {param!r} in "
                    f"{entry!r}") from None
        rules.append(FaultRule(site.strip(), kind.strip(), **params))
    return rules


# ======================================================================
# The plane
# ======================================================================
class FaultPlane:
    """An installed fault schedule plus its firing counters.

    One lock guards all decision state: fault sites are store appends,
    job launches and connection handshakes — never the per-access hot
    loop — so a mutex here costs nothing that matters.
    """

    def __init__(self, rules: List[FaultRule]) -> None:
        self.rules = list(rules)
        self._by_site: Dict[str, List[FaultRule]] = {}
        for rule in self.rules:
            self._by_site.setdefault(rule.site, []).append(rule)
        self._lock = threading.Lock()

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlane":
        return cls(parse_schedule(spec))

    def check(self, site: str,
              payload_size: Optional[int] = None) -> Optional[int]:
        """Evaluate the rules for ``site``; raise / sleep / return torn size.

        Returns ``None`` (no fault) or, for a fired ``torn`` rule at a site
        that passed ``payload_size``, the number of payload bytes the site
        must write before raising ``OSError(EIO)`` itself.
        """
        rules = self._by_site.get(site)
        if not rules:
            return None
        fired: List[FaultRule] = []
        torn_prefix: Optional[int] = None
        with self._lock:
            for rule in rules:
                if rule.decide():
                    fired.append(rule)
                    if rule.kind == "torn" and payload_size is not None \
                            and site in _TORN_SITES:
                        # Deterministic partial length from the same RNG.
                        torn_prefix = rule._rng.randrange(
                            max(payload_size, 1))
        for rule in fired:
            self._act(rule, site, torn_prefix)
        return None

    def _act(self, rule: FaultRule, site: str,
             torn_prefix: Optional[int]) -> Optional[int]:
        kind = rule.kind
        if kind == "latency":
            time.sleep(rule.ms / 1000.0)
            return None
        if kind == "eio":
            raise _injected_os_error(errno.EIO, site)
        if kind == "enospc":
            raise _injected_os_error(errno.ENOSPC, site)
        if kind == "torn":
            if torn_prefix is not None:
                raise TornWrite(torn_prefix, site)
            raise _injected_os_error(errno.EIO, site)
        if kind == "drop":
            raise ConnectionResetError(
                f"injected fault at {site}: connection dropped")
        if kind == "kill":
            # Genuine process death, but only in an engine pool *child*:
            # in the daemon / main process the rule is evaluated (its
            # times budget advances identically, keeping schedules
            # deterministic across processes) yet inert, so a schedule
            # can never take the process under test down — and the
            # post-kill serial fallback in the parent completes instead
            # of re-dying on the same rule.  Use ``crash`` to fail
            # thread-pool workers.
            if _in_worker_child():
                os._exit(KILL_EXIT_STATUS)
            return None
        if kind == "crash":
            raise InjectedCrashError(
                f"injected fault at {site}: worker crash")
        raise AssertionError(f"unhandled fault kind {kind!r}")

    def counters(self) -> Dict[str, Dict[str, int]]:
        """Per-rule evaluation/fire counts, keyed by the rule's spec."""
        with self._lock:
            return {rule.spec(): {"evaluated": rule.evaluated,
                                  "fired": rule.fired}
                    for rule in self.rules}

    def total_fired(self) -> int:
        with self._lock:
            return sum(rule.fired for rule in self.rules)


class TornWrite(Exception):
    """Internal control flow: a fired ``torn`` rule at a payload site.

    :func:`fault_point` converts this into its return value; it never
    escapes to production code.
    """

    def __init__(self, prefix: int, site: str) -> None:
        super().__init__(f"injected torn write at {site} "
                         f"(prefix {prefix} bytes)")
        self.prefix = prefix


def _in_worker_child() -> bool:
    """True in a process spawned by an engine pool (never the daemon)."""
    return multiprocessing.parent_process() is not None


# ======================================================================
# The process-global hook
# ======================================================================
#: The installed plane; ``None`` when fault injection is off.
_PLANE: Optional[FaultPlane] = None

#: Whether ``REPRO_FAULTS`` has been consulted in this process.
_RESOLVED = False


def active_plane() -> Optional[FaultPlane]:
    """The installed plane, lazily resolving ``REPRO_FAULTS`` once.

    Lazy resolution is what lets engine *worker processes* — which never
    run a CLI entry point — inherit the parent's schedule through the
    environment.
    """
    global _PLANE, _RESOLVED
    if not _RESOLVED:
        spec = os.environ.get(REPRO_FAULTS_ENV, "").strip()
        _PLANE = FaultPlane.from_spec(spec) if spec else None
        _RESOLVED = True
    return _PLANE


def install(spec_or_plane: Any) -> FaultPlane:
    """Install a schedule programmatically (tests; ``--faults``)."""
    global _PLANE, _RESOLVED
    plane = spec_or_plane if isinstance(spec_or_plane, FaultPlane) \
        else FaultPlane.from_spec(str(spec_or_plane))
    _PLANE = plane
    _RESOLVED = True
    return plane


def uninstall() -> None:
    """Remove any installed plane and forget the env resolution."""
    global _PLANE, _RESOLVED
    _PLANE = None
    _RESOLVED = False


def fault_point(site: str, payload_size: Optional[int] = None
                ) -> Optional[int]:
    """The hook production code calls at every fault site.

    With no plane installed this is one global load, one branch and (the
    first time in a process) one environment lookup — nothing allocates,
    nothing locks.  With a plane installed, see :meth:`FaultPlane.check`:
    the call may raise (eio/enospc/crash/drop), sleep (latency), exit the
    worker process (kill) or return the byte count of a torn write for the
    site to honour.
    """
    plane = _PLANE if _RESOLVED else active_plane()
    if plane is None:
        return None
    try:
        return plane.check(site, payload_size)
    except TornWrite as torn:
        return torn.prefix


def counters_snapshot() -> Dict[str, Dict[str, int]]:
    """Per-rule counters of the installed plane ({} when off)."""
    plane = _PLANE if _RESOLVED else active_plane()
    return plane.counters() if plane is not None else {}
