"""System configurations (Table I) and the predictor registry.

A :class:`SystemConfig` bundles everything needed to build a simulated system:
the cache hierarchy geometry/latencies, the core microarchitecture, the
prefetch scheme and the level-prediction scheme.  The named constructors
reproduce the configurations used throughout the paper's evaluation, including
the sensitivity-study variants of Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List

from ..cpu.ooo_core import CoreConfig
from ..memory.cache import CacheConfig
from ..memory.block import Level
from ..memory.hierarchy import HierarchyConfig

#: Names of the systems compared in Figures 10-12 (plus the baseline).
PREDICTOR_NAMES: List[str] = [
    "baseline", "tage-2kb", "tage-8kb", "d2d", "lp", "ideal",
]


@dataclass
class SystemConfig:
    """Complete configuration of one simulated system.

    Attributes:
        name: Human-readable configuration name.
        hierarchy: Cache/DRAM/interconnect configuration.
        core: Out-of-order core configuration.
        predictor: Which level-prediction scheme to attach; one of
            :data:`PREDICTOR_NAMES`.
        prefetch_scheme: ``paper`` for the baseline prefetchers of
            Section IV.A (tagged next-line at L1/L2, throttled DCPT at L3),
            ``none`` to disable prefetching.
        num_cores: Cores sharing the LLC.
        metadata_cache_bytes: LP metadata cache capacity (Figure 5 sweep).
        prefetch_epoch_accesses: Epoch length of the accuracy-gated throttling.
    """

    name: str = "paper-single-core"
    hierarchy: HierarchyConfig = field(
        default_factory=HierarchyConfig.paper_single_core)
    core: CoreConfig = field(default_factory=CoreConfig.paper_baseline)
    predictor: str = "lp"
    prefetch_scheme: str = "paper"
    num_cores: int = 1
    metadata_cache_bytes: int = 2048
    prefetch_epoch_accesses: int = 50_000

    def with_predictor(self, predictor: str) -> "SystemConfig":
        """A copy of this configuration using a different predictor."""
        return replace(self, predictor=predictor,
                       name=f"{self.name}/{predictor}")

    # ------------------------------------------------------------------
    # Named configurations used by the paper
    # ------------------------------------------------------------------
    @staticmethod
    def paper_single_core(predictor: str = "lp") -> "SystemConfig":
        """Table I, single core, 2 MB LLC."""
        return SystemConfig(name="paper-single-core", predictor=predictor)

    @staticmethod
    def paper_multi_core(predictor: str = "lp",
                         num_cores: int = 4) -> "SystemConfig":
        """Table I, quad core, 8 MB shared LLC."""
        return SystemConfig(name="paper-multi-core",
                            hierarchy=HierarchyConfig.paper_multi_core(),
                            predictor=predictor, num_cores=num_cores)

    @staticmethod
    def sensitivity_variants(predictor: str = "lp") -> Dict[str, "SystemConfig"]:
        """The five systems of the Figure 15 sensitivity study.

        1. the default configuration;
        2. a faster sequential LLC (45 cycles total);
        3. a parallel LLC (40 cycles flat);
        4. a parallel LLC plus a 96-entry LSQ;
        5. a very aggressive core (ROB 224, LSQ 96) plus a parallel LLC.
        """
        base = SystemConfig.paper_single_core(predictor)

        def with_llc(tag: int, data: int, sequential: bool) -> HierarchyConfig:
            hierarchy = HierarchyConfig.paper_single_core()
            hierarchy.l3 = CacheConfig(
                level=Level.L3, size_bytes=hierarchy.l3.size_bytes,
                associativity=hierarchy.l3.associativity,
                tag_latency=tag, data_latency=data,
                sequential_tag_data=sequential,
                mshr_entries=hierarchy.l3.mshr_entries,
                mshr_demand_reserve=hierarchy.l3.mshr_demand_reserve)
            return hierarchy

        # The "parallel" LLC of the paper delivers hit data after 40 cycles
        # while still resolving hit/miss from the tag comparison after 20, so
        # it is modelled as tag=20 + data=20.
        variants = {
            "default": base,
            "fast-seq-llc": replace(base, name="fast-seq-llc",
                                    hierarchy=with_llc(20, 25, True)),
            "parallel-llc": replace(base, name="parallel-llc",
                                    hierarchy=with_llc(20, 20, True)),
            "parallel-llc-lsq96": replace(
                base, name="parallel-llc-lsq96",
                hierarchy=with_llc(20, 20, True),
                core=CoreConfig(rob_entries=192, load_queue_entries=96,
                                store_queue_entries=96)),
            "aggressive-core": replace(
                base, name="aggressive-core",
                hierarchy=with_llc(20, 20, True),
                core=CoreConfig.aggressive(rob_entries=224,
                                           load_queue_entries=96)),
        }
        return variants


def table1_description() -> Dict[str, str]:
    """A textual rendering of Table I used by the configuration benchmark."""
    config = SystemConfig.paper_single_core()
    h = config.hierarchy
    return {
        "Processor": (f"{config.num_cores}-core, "
                      f"{config.core.frequency_ghz:.1f} GHz, ROB "
                      f"{config.core.rob_entries}, LQ "
                      f"{config.core.load_queue_entries}, SQ "
                      f"{config.core.store_queue_entries}, fetch width "
                      f"{config.core.fetch_width}"),
        "L1 Cache": (f"{h.l1.size_bytes // 1024} KB, {h.l1.associativity}-way, "
                     f"{h.l1.block_size} B lines, {h.l1.tag_latency} cycles, "
                     "tagged next-line prefetcher degree 1"),
        "L2 Cache": (f"{h.l2.size_bytes // 1024} KB, {h.l2.associativity}-way, "
                     f"{h.l2.tag_latency} cycles, tagged next-line prefetcher "
                     "degree 2"),
        "L3 Cache": (f"{h.l3.size_bytes // (1024 * 1024)} MB, "
                     f"{h.l3.associativity}-way, sequential "
                     f"({h.l3.tag_latency}+{h.l3.data_latency}), DCPT "
                     "prefetcher degree 2"),
        "Coherency": "MOESI directory; L1/L2 inclusive, L3 non-inclusive",
        "Main Memory": "16 GB DDR4-2400 x64, single channel",
        "Level Predictor": (f"LocMap + PLD, {config.metadata_cache_bytes} B "
                            "metadata cache, 1-cycle prediction latency"),
    }
