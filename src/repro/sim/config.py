"""System configurations (Table I) and the predictor registry.

A :class:`SystemConfig` bundles everything needed to build a simulated system:
the cache hierarchy geometry/latencies, the core microarchitecture, the
prefetch scheme and the level-prediction scheme.  The named constructors
reproduce the configurations used throughout the paper's evaluation, including
the sensitivity-study variants of Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List

from ..cpu.ooo_core import CoreConfig
from ..memory.hierarchy import HierarchyConfig

#: Names of the systems compared in Figures 10-12 (plus the baseline).
PREDICTOR_NAMES: List[str] = [
    "baseline", "tage-2kb", "tage-8kb", "d2d", "lp", "ideal",
]


@dataclass
class SystemConfig:
    """Complete configuration of one simulated system.

    Attributes:
        name: Human-readable configuration name.
        hierarchy: Cache/DRAM/interconnect configuration.
        core: Out-of-order core configuration.
        predictor: Which level-prediction scheme to attach; one of
            :data:`PREDICTOR_NAMES`.
        prefetch_scheme: ``paper`` for the baseline prefetchers of
            Section IV.A (tagged next-line at L1/L2, throttled DCPT at L3),
            ``none`` to disable prefetching.
        num_cores: Cores sharing the LLC.
        metadata_cache_bytes: LP metadata cache capacity (Figure 5 sweep).
        prefetch_epoch_accesses: Epoch length of the accuracy-gated throttling.
    """

    name: str = "paper-single-core"
    hierarchy: HierarchyConfig = field(
        default_factory=HierarchyConfig.paper_single_core)
    core: CoreConfig = field(default_factory=CoreConfig.paper_baseline)
    predictor: str = "lp"
    prefetch_scheme: str = "paper"
    num_cores: int = 1
    metadata_cache_bytes: int = 2048
    prefetch_epoch_accesses: int = 50_000

    def with_predictor(self, predictor: str) -> "SystemConfig":
        """A copy of this configuration using a different predictor."""
        return replace(self, predictor=predictor,
                       name=f"{self.name}/{predictor}")

    # ------------------------------------------------------------------
    # Named configurations used by the paper
    # ------------------------------------------------------------------
    @staticmethod
    def paper_single_core(predictor: str = "lp") -> "SystemConfig":
        """Table I, single core, 2 MB LLC."""
        return SystemConfig(name="paper-single-core", predictor=predictor)

    @staticmethod
    def paper_multi_core(predictor: str = "lp",
                         num_cores: int = 4) -> "SystemConfig":
        """Table I, quad core, 8 MB shared LLC."""
        return SystemConfig(name="paper-multi-core",
                            hierarchy=HierarchyConfig.paper_multi_core(),
                            predictor=predictor, num_cores=num_cores)

    @staticmethod
    def sensitivity_variants(predictor: str = "lp") -> Dict[str, "SystemConfig"]:
        """The five systems of the Figure 15 sensitivity study.

        1. the default configuration;
        2. a faster sequential LLC (45 cycles total);
        3. a parallel LLC (40 cycles flat);
        4. a parallel LLC plus a 96-entry LSQ;
        5. a very aggressive core (ROB 224, LSQ 96) plus a parallel LLC.
        """
        base = SystemConfig.paper_single_core(predictor)

        def with_llc(tag: int, data: int, sequential: bool) -> HierarchyConfig:
            # Spec-style derivation: every field not named here carries
            # over from the paper LLC, so a new CacheConfig field can
            # never be silently dropped from the Figure 15 variants.
            hierarchy = HierarchyConfig.paper_single_core()
            hierarchy.l3 = replace(hierarchy.l3, tag_latency=tag,
                                   data_latency=data,
                                   sequential_tag_data=sequential)
            return hierarchy

        # The "parallel" LLC of the paper delivers hit data after 40 cycles
        # while still resolving hit/miss from the tag comparison after 20, so
        # it is modelled as tag=20 + data=20.
        variants = {
            "default": base,
            "fast-seq-llc": replace(base, name="fast-seq-llc",
                                    hierarchy=with_llc(20, 25, True)),
            "parallel-llc": replace(base, name="parallel-llc",
                                    hierarchy=with_llc(20, 20, True)),
            "parallel-llc-lsq96": replace(
                base, name="parallel-llc-lsq96",
                hierarchy=with_llc(20, 20, True),
                core=CoreConfig(rob_entries=192, load_queue_entries=96,
                                store_queue_entries=96)),
            "aggressive-core": replace(
                base, name="aggressive-core",
                hierarchy=with_llc(20, 20, True),
                core=CoreConfig.aggressive(rob_entries=224,
                                           load_queue_entries=96)),
        }
        return variants


#: Prefetcher class names -> the Table I wording.
_PREFETCHER_WORDING = {
    "TaggedNextLinePrefetcher": "tagged next-line",
    "DCPTPrefetcher": "DCPT",
}


def _prefetcher_phrase(prefetcher) -> str:
    """Describe an instantiated prefetcher (unwrapping throttling)."""
    inner = getattr(prefetcher, "inner", prefetcher)
    kind = type(inner).__name__
    if kind == "NullPrefetcher":
        return "no prefetcher"
    wording = _PREFETCHER_WORDING.get(kind, kind)
    return f"{wording} prefetcher degree {inner.degree}"


def _size_phrase(size_bytes: int) -> str:
    if size_bytes >= 1024 * 1024 and size_bytes % (1024 * 1024) == 0:
        return f"{size_bytes // (1024 * 1024)} MB"
    return f"{size_bytes // 1024} KB"


def table1_description(config: "SystemConfig" = None) -> Dict[str, str]:
    """A textual rendering of Table I used by the configuration benchmark.

    Every line is derived from the configuration itself — the cache rows
    from the (N-level) hierarchy spec, the coherency row from the levels'
    inclusivity, the memory row from the DRAM geometry and the prefetcher
    phrases from the prefetchers the simulator would actually build — so
    the table stays truthful for any declarative hierarchy, not just the
    paper's three-level one.
    """
    from ..memory.spec import HierarchySpec
    from .system import _make_private_prefetchers, make_llc_prefetcher

    config = config or SystemConfig.paper_single_core()
    hierarchy = config.hierarchy
    spec = hierarchy if isinstance(hierarchy, HierarchySpec) \
        else HierarchySpec.from_legacy(hierarchy)
    l1_pf, mid_pf = _make_private_prefetchers(config)
    llc_pf = make_llc_prefetcher(config)

    table = {
        "Processor": (f"{config.num_cores}-core, "
                      f"{config.core.frequency_ghz:.1f} GHz, ROB "
                      f"{config.core.rob_entries}, LQ "
                      f"{config.core.load_queue_entries}, SQ "
                      f"{config.core.store_queue_entries}, fetch width "
                      f"{config.core.fetch_width}"),
    }
    last = len(spec.levels) - 1
    for index, level in enumerate(spec.levels):
        parts = [_size_phrase(level.size_bytes),
                 f"{level.associativity}-way"]
        if index == 0:
            parts.append(f"{level.block_size} B lines")
        if level.sequential_tag_data:
            parts.append(f"sequential "
                         f"({level.tag_latency}+{level.data_latency})")
        else:
            parts.append(f"{level.hit_latency} cycles")
        if index == 0:
            parts.append(_prefetcher_phrase(l1_pf))
        elif index == last:
            parts.append(_prefetcher_phrase(llc_pf))
        else:
            parts.append(_prefetcher_phrase(mid_pf))
        table[f"{level.name} Cache"] = ", ".join(parts)

    inclusive = [lvl.name for lvl in spec.levels if lvl.inclusive]
    non_inclusive = [lvl.name for lvl in spec.levels if not lvl.inclusive]
    coherency = f"MOESI directory; {'/'.join(inclusive)} inclusive"
    if non_inclusive:
        coherency += f", {'/'.join(non_inclusive)} non-inclusive"
    table["Coherency"] = coherency

    memory = spec.memory
    data_rate = round(memory.dram_frequency_mhz * 2)
    table["Main Memory"] = (
        f"{memory.channel_capacity_gb} GB DDR4-{data_rate} x64, "
        f"{'single channel' if memory.num_ranks == 1 else f'{memory.num_ranks} ranks'}")
    table["Level Predictor"] = (
        f"LocMap + PLD, {config.metadata_cache_bytes} B "
        "metadata cache, 1-cycle prediction latency")
    return table
