"""Statistics helpers: windowed miss traces and miss-filtering ratios.

These helpers compute the two characterisation views of Section II:

* Figure 1 plots each application by its L1/L2 and L2/L3 miss-filtering
  ratios (how many misses each level removes relative to the level above);
* Figure 2 plots per-level miss counts across execution in time windows,
  showing which levels filter effectively and when.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..memory.block import AccessResult, Level, MemoryAccess
from ..memory.hierarchy import CoreMemoryHierarchy


@dataclass
class MissFilteringRatios:
    """The Figure-1 coordinates of one application.

    ``l1_over_l2`` is the ratio of L1 misses to L2 misses (x-axis: how well L2
    filters); ``l2_over_l3`` is the ratio of L2 misses to L3 misses (y-axis:
    how well L3 filters).  Values close to 1 mean the level is ineffective.
    """

    l1_misses: int
    l2_misses: int
    l3_misses: int

    @property
    def l1_over_l2(self) -> float:
        return self.l1_misses / self.l2_misses if self.l2_misses else float("inf")

    @property
    def l2_over_l3(self) -> float:
        return self.l2_misses / self.l3_misses if self.l3_misses else float("inf")

    def classify(self, green_threshold: float = 2.0,
                 red_threshold: float = 6.0) -> str:
        """Classify into the paper's green/red/neither boxes.

        Applications whose both ratios are small (neither L2 nor L3 filters
        much) are in the green box (high expected benefit); applications where
        both levels filter strongly are outside the red box (sequential lookup
        is fine); everything else is in between ("modest").
        """
        effective_l2 = self.l1_over_l2 >= red_threshold
        effective_l3 = self.l2_over_l3 >= red_threshold
        weak_l2 = self.l1_over_l2 <= green_threshold
        weak_l3 = self.l2_over_l3 <= green_threshold
        if weak_l2 and weak_l3:
            return "high"
        if effective_l2 and effective_l3:
            return "low"
        return "modest"


def miss_filtering_ratios(hierarchy: CoreMemoryHierarchy) -> MissFilteringRatios:
    """Extract the Figure-1 coordinates from a finished run."""
    stats = hierarchy.stats
    return MissFilteringRatios(
        l1_misses=stats.l1_misses,
        l2_misses=stats.l2_misses,
        l3_misses=stats.l3_misses,
    )


@dataclass
class MissTraceWindow:
    """Per-level miss counts in one execution window (Figure 2)."""

    window_index: int
    l1_misses: int
    l2_misses: int
    l3_misses: int


class WindowedMissTracker:
    """Tracks per-window miss counts while a trace is replayed.

    Feed every (access, result) pair to :meth:`record`; the tracker counts,
    per fixed-size window of demand accesses, how many of them missed L1,
    missed L2 and went to memory — the series plotted in Figure 2.
    """

    def __init__(self, window_size: int = 10_000) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.window_size = window_size
        self.windows: List[MissTraceWindow] = []
        self._accesses_in_window = 0
        self._l1 = 0
        self._l2 = 0
        self._l3 = 0

    def record(self, access: MemoryAccess, result: AccessResult) -> None:
        self._accesses_in_window += 1
        if result.hit_level is not Level.L1:
            self._l1 += 1
        if result.hit_level in (Level.L3, Level.MEM):
            self._l2 += 1
        if result.hit_level is Level.MEM:
            self._l3 += 1
        if self._accesses_in_window >= self.window_size:
            self._flush()

    def _flush(self) -> None:
        self.windows.append(MissTraceWindow(
            window_index=len(self.windows),
            l1_misses=self._l1, l2_misses=self._l2, l3_misses=self._l3))
        self._accesses_in_window = 0
        self._l1 = 0
        self._l2 = 0
        self._l3 = 0

    def finalize(self) -> List[MissTraceWindow]:
        """Flush any partial window and return all windows."""
        if self._accesses_in_window:
            self._flush()
        return list(self.windows)


def run_with_windows(hierarchy: CoreMemoryHierarchy,
                     trace: Sequence[MemoryAccess],
                     window_size: int = 10_000) -> List[MissTraceWindow]:
    """Replay a trace and return its windowed miss profile."""
    tracker = WindowedMissTracker(window_size=window_size)
    for access in trace:
        result = hierarchy.access(access)
        tracker.record(access, result)
    return tracker.finalize()
