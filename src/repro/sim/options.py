"""``EngineOptions``: one resolution point for the execution knobs.

Before this module existed the execution knobs travelled three different
ways — ``REPRO_*`` environment variables parsed ad hoc at each consumer
(engine, daemon, trace cache), constructor kwargs, and argparse
namespaces — and a knob like the worker count was resolved in two places
with slightly different error behaviour.  :class:`EngineOptions` is the
single place environment resolution happens: the CLI, the
:class:`~repro.sim.engine.SimulationEngine` and the
:class:`~repro.service.SimulationService` all build one (explicit
arguments win over the environment, the environment wins over defaults)
and read plain attributes afterwards.

The knobs and their environment variables:

============  ==================  ==========================================
attribute     environment          meaning
============  ==================  ==========================================
``kernel``    ``REPRO_KERNEL``    trace-execution kernel name (``batch``)
``jobs``      ``REPRO_JOBS``      worker process/thread count (1 = serial)
``store``     ``REPRO_STORE``     results-store root, ``None`` = no store
``trace_dir`` ``REPRO_TRACE_DIR`` trace-cache spill dir (``""`` disables;
                                  ``None`` = derive from the store)
``faults``    ``REPRO_FAULTS``    fault-injection schedule spec
============  ==================  ==========================================

``trace_dir`` and ``faults`` still *propagate* to worker processes through
the environment (workers resolve them lazily in their own process), but
the parsing/precedence logic lives only here.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Union

from ..faults import REPRO_FAULTS_ENV
from .kernels import Kernel, resolve_kernel
from .store import REPRO_STORE_ENV, REPRO_TRACE_DIR_ENV

#: Environment variable selecting the worker count (engine processes /
#: daemon threads).  Unset or empty means 1 (deterministic serial path).
REPRO_JOBS_ENV = "REPRO_JOBS"


def _resolve_jobs(jobs: Optional[int]) -> int:
    """Explicit worker count, else ``REPRO_JOBS``, else 1."""
    if jobs is not None:
        return int(jobs)
    env_value = os.environ.get(REPRO_JOBS_ENV, "").strip()
    if not env_value:
        return 1
    try:
        return int(env_value)
    except ValueError as exc:
        raise ValueError(
            f"{REPRO_JOBS_ENV} must be an integer, got "
            f"{env_value!r}") from exc


def _resolve_kernel_name(kernel: Union[None, str, Kernel]) -> str:
    """Explicit kernel (name or instance), else ``REPRO_KERNEL``/default.

    Always validates through :func:`~repro.sim.kernels.resolve_kernel`, so
    a typo in ``--kernel``/``REPRO_KERNEL`` fails loudly at option-building
    time, not deep inside a worker process.
    """
    return resolve_kernel(kernel).name


@dataclass(frozen=True)
class EngineOptions:
    """Resolved execution knobs (kernel, workers, store, traces, faults).

    Instances are immutable; build one with :meth:`from_env` (the normal
    path — applies the explicit-over-environment-over-default precedence)
    or directly when a test wants full control.  ``store``/``trace_dir``/
    ``faults`` are kept as raw strings (paths / spec), not opened objects:
    the options must stay cheap to construct and pickle.
    """

    kernel: str = "batch"
    jobs: int = 1
    store: Optional[str] = None
    trace_dir: Optional[str] = None
    faults: Optional[str] = None

    @classmethod
    def from_env(cls, kernel: Union[None, str, Kernel] = None,
                 jobs: Optional[int] = None,
                 store: Optional[str] = None,
                 trace_dir: Optional[str] = None,
                 faults: Optional[str] = None) -> "EngineOptions":
        """Build options: explicit arguments win, then environment, then
        defaults.

        ``store`` and ``faults`` treat an empty string like ``None``
        (disabled).  ``trace_dir`` preserves the empty string — an empty
        ``REPRO_TRACE_DIR`` explicitly disables trace spilling, while
        ``None`` means "derive from the store location".
        """
        if store is None:
            store = os.environ.get(REPRO_STORE_ENV, "").strip() or None
        elif not str(store).strip():
            store = None
        else:
            store = str(store)
        if trace_dir is None:
            trace_dir = os.environ.get(REPRO_TRACE_DIR_ENV)
        else:
            trace_dir = str(trace_dir)
        if faults is None:
            faults = os.environ.get(REPRO_FAULTS_ENV, "").strip() or None
        return cls(kernel=_resolve_kernel_name(kernel),
                   jobs=max(1, _resolve_jobs(jobs)),
                   store=store, trace_dir=trace_dir, faults=faults)

    def with_overrides(self, kernel: Union[None, str, Kernel] = None,
                       jobs: Optional[int] = None) -> "EngineOptions":
        """A copy with non-``None`` overrides applied (no env consulted)."""
        updated = self
        if kernel is not None:
            updated = replace(updated, kernel=_resolve_kernel_name(kernel))
        if jobs is not None:
            updated = replace(updated, jobs=max(1, int(jobs)))
        return updated
