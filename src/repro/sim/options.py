"""``EngineOptions``: one resolution point for the execution knobs.

Before this module existed the execution knobs travelled three different
ways — ``REPRO_*`` environment variables parsed ad hoc at each consumer
(engine, daemon, trace cache), constructor kwargs, and argparse
namespaces — and a knob like the worker count was resolved in two places
with slightly different error behaviour.  :class:`EngineOptions` is the
single place environment resolution happens: the CLI, the
:class:`~repro.sim.engine.SimulationEngine` and the
:class:`~repro.service.SimulationService` all build one (explicit
arguments win over the environment, the environment wins over defaults)
and read plain attributes afterwards.

The knobs and their environment variables:

============  ==================  ==========================================
attribute     environment          meaning
============  ==================  ==========================================
``kernel``    ``REPRO_KERNEL``    trace-execution kernel name (``batch``)
``jobs``      ``REPRO_JOBS``      worker process/thread count (1 = serial)
``shards``    ``REPRO_SHARDS``    trace shards per job (1 = unsharded;
                                  0 = one shard per host core)
``sharding``  ``REPRO_SHARDING``  shard mode: ``exact`` (default,
                                  bit-identical) or ``approx`` (concurrent
                                  shards, bounded stats delta)
``pool``      ``REPRO_POOL``      daemon worker pool kind: ``process``
                                  (default) or ``thread``
``store``     ``REPRO_STORE``     results-store root, ``None`` = no store
``trace_dir`` ``REPRO_TRACE_DIR`` trace-cache spill dir (``""`` disables;
                                  ``None`` = derive from the store)
``faults``    ``REPRO_FAULTS``    fault-injection schedule spec
``hierarchy`` ``REPRO_HIERARCHY`` path to a declarative hierarchy spec
                                  (JSON, see :mod:`repro.memory.spec`);
                                  ``None`` = the experiment's own configs
============  ==================  ==========================================

``trace_dir`` and ``faults`` still *propagate* to worker processes through
the environment (workers resolve them lazily in their own process), but
the parsing/precedence logic lives only here.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Union

from ..faults import REPRO_FAULTS_ENV
from .kernels import Kernel, resolve_kernel
from .store import REPRO_STORE_ENV, REPRO_TRACE_DIR_ENV

#: Environment variable selecting the worker count (engine processes /
#: daemon workers).  Unset or empty means 1 (deterministic serial path).
REPRO_JOBS_ENV = "REPRO_JOBS"

#: Environment variable selecting the per-job trace shard count.  Unset
#: or empty means 1 (unsharded); 0 means one shard per host core.
REPRO_SHARDS_ENV = "REPRO_SHARDS"

#: Environment variable selecting the sharding mode.
REPRO_SHARDING_ENV = "REPRO_SHARDING"

#: Environment variable selecting the daemon worker-pool kind.
REPRO_POOL_ENV = "REPRO_POOL"

#: Environment variable naming a declarative hierarchy spec file applied
#: to every job (``run --hierarchy`` / ``serve --hierarchy``).
REPRO_HIERARCHY_ENV = "REPRO_HIERARCHY"

#: Sharding modes: ``exact`` keeps stored bytes bit-identical by
#: construction (sequential hand-off through one system); ``approx`` runs
#: shards concurrently with overlapping warm-up windows and a bounded,
#: measured stats delta (opt-in, never the default).
SHARDING_MODES = ("exact", "approx")

#: Daemon worker-pool kinds.  ``process`` saturates a many-core host;
#: ``thread`` keeps jobs in-process (what tests that monkeypatch
#: ``execute_job`` or install an in-process fault plane rely on).
POOL_KINDS = ("process", "thread")


def _resolve_jobs(jobs: Optional[int]) -> int:
    """Explicit worker count, else ``REPRO_JOBS``, else 1."""
    if jobs is not None:
        return int(jobs)
    env_value = os.environ.get(REPRO_JOBS_ENV, "").strip()
    if not env_value:
        return 1
    try:
        return int(env_value)
    except ValueError as exc:
        raise ValueError(
            f"{REPRO_JOBS_ENV} must be an integer, got "
            f"{env_value!r}") from exc


def _resolve_shards(shards: Optional[int]) -> int:
    """Explicit shard count, else ``REPRO_SHARDS``, else 1 (unsharded).

    A count of 0 means "auto": one shard per host core — the knob scripts
    set without caring how many cores the runner has.
    """
    if shards is None:
        env_value = os.environ.get(REPRO_SHARDS_ENV, "").strip()
        if not env_value:
            return 1
        try:
            shards = int(env_value)
        except ValueError as exc:
            raise ValueError(
                f"{REPRO_SHARDS_ENV} must be an integer, got "
                f"{env_value!r}") from exc
    shards = int(shards)
    if shards == 0:
        return os.cpu_count() or 1
    return max(1, shards)


def _resolve_sharding(sharding: Optional[str]) -> str:
    """Explicit mode, else ``REPRO_SHARDING``, else ``exact``."""
    if sharding is None:
        sharding = os.environ.get(REPRO_SHARDING_ENV, "").strip() or "exact"
    sharding = str(sharding).strip().lower()
    if sharding not in SHARDING_MODES:
        raise ValueError(
            f"sharding mode must be one of {', '.join(SHARDING_MODES)}, "
            f"got {sharding!r}")
    return sharding


def _resolve_pool(pool: Optional[str]) -> str:
    """Explicit pool kind, else ``REPRO_POOL``, else ``process``."""
    if pool is None:
        pool = os.environ.get(REPRO_POOL_ENV, "").strip() or "process"
    pool = str(pool).strip().lower()
    if pool not in POOL_KINDS:
        raise ValueError(
            f"pool kind must be one of {', '.join(POOL_KINDS)}, "
            f"got {pool!r}")
    return pool


def _resolve_kernel_name(kernel: Union[None, str, Kernel]) -> str:
    """Explicit kernel (name or instance), else ``REPRO_KERNEL``/default.

    Always validates through :func:`~repro.sim.kernels.resolve_kernel`, so
    a typo in ``--kernel``/``REPRO_KERNEL`` fails loudly at option-building
    time, not deep inside a worker process.
    """
    return resolve_kernel(kernel).name


@dataclass(frozen=True)
class EngineOptions:
    """Resolved execution knobs (kernel, workers, store, traces, faults).

    Instances are immutable; build one with :meth:`from_env` (the normal
    path — applies the explicit-over-environment-over-default precedence)
    or directly when a test wants full control.  ``store``/``trace_dir``/
    ``faults`` are kept as raw strings (paths / spec), not opened objects:
    the options must stay cheap to construct and pickle.
    """

    kernel: str = "batch"
    jobs: int = 1
    shards: int = 1
    sharding: str = "exact"
    pool: str = "process"
    store: Optional[str] = None
    trace_dir: Optional[str] = None
    faults: Optional[str] = None
    hierarchy: Optional[str] = None

    @classmethod
    def from_env(cls, kernel: Union[None, str, Kernel] = None,
                 jobs: Optional[int] = None,
                 shards: Optional[int] = None,
                 sharding: Optional[str] = None,
                 pool: Optional[str] = None,
                 store: Optional[str] = None,
                 trace_dir: Optional[str] = None,
                 faults: Optional[str] = None,
                 hierarchy: Optional[str] = None) -> "EngineOptions":
        """Build options: explicit arguments win, then environment, then
        defaults.

        ``store`` and ``faults`` treat an empty string like ``None``
        (disabled).  ``trace_dir`` preserves the empty string — an empty
        ``REPRO_TRACE_DIR`` explicitly disables trace spilling, while
        ``None`` means "derive from the store location".  ``shards=0``
        (or ``REPRO_SHARDS=0``) resolves to one shard per host core.
        """
        if store is None:
            store = os.environ.get(REPRO_STORE_ENV, "").strip() or None
        elif not str(store).strip():
            store = None
        else:
            store = str(store)
        if trace_dir is None:
            trace_dir = os.environ.get(REPRO_TRACE_DIR_ENV)
        else:
            trace_dir = str(trace_dir)
        if faults is None:
            faults = os.environ.get(REPRO_FAULTS_ENV, "").strip() or None
        if hierarchy is None:
            hierarchy = os.environ.get(REPRO_HIERARCHY_ENV, "").strip() \
                or None
        elif not str(hierarchy).strip():
            hierarchy = None
        else:
            hierarchy = str(hierarchy)
        return cls(kernel=_resolve_kernel_name(kernel),
                   jobs=max(1, _resolve_jobs(jobs)),
                   shards=_resolve_shards(shards),
                   sharding=_resolve_sharding(sharding),
                   pool=_resolve_pool(pool),
                   store=store, trace_dir=trace_dir, faults=faults,
                   hierarchy=hierarchy)

    def with_overrides(self, kernel: Union[None, str, Kernel] = None,
                       jobs: Optional[int] = None,
                       shards: Optional[int] = None,
                       sharding: Optional[str] = None,
                       pool: Optional[str] = None) -> "EngineOptions":
        """A copy with non-``None`` overrides applied (no env consulted).

        ``shards=0`` resolves to one shard per host core, mirroring
        :meth:`from_env`.
        """
        updated = self
        if kernel is not None:
            updated = replace(updated, kernel=_resolve_kernel_name(kernel))
        if jobs is not None:
            updated = replace(updated, jobs=max(1, int(jobs)))
        if shards is not None:
            updated = replace(updated, shards=_resolve_shards(shards))
        if sharding is not None:
            updated = replace(updated, sharding=_resolve_sharding(sharding))
        if pool is not None:
            updated = replace(updated, pool=_resolve_pool(pool))
        return updated
