"""System assembly, configuration and simulation drivers."""

from .config import PREDICTOR_NAMES, SystemConfig, table1_description
from .multicore import MultiCoreResult, MultiCoreSystem, run_mix_comparison
from .stats import (
    MissFilteringRatios,
    MissTraceWindow,
    WindowedMissTracker,
    miss_filtering_ratios,
    run_with_windows,
)
from .system import (
    SimulatedSystem,
    SimulationResult,
    build_system,
    make_llc_prefetcher,
    make_predictor,
    run_predictor_comparison,
)

__all__ = [
    "MissFilteringRatios",
    "MissTraceWindow",
    "MultiCoreResult",
    "MultiCoreSystem",
    "PREDICTOR_NAMES",
    "SimulatedSystem",
    "SimulationResult",
    "SystemConfig",
    "WindowedMissTracker",
    "build_system",
    "make_llc_prefetcher",
    "make_predictor",
    "miss_filtering_ratios",
    "run_mix_comparison",
    "run_predictor_comparison",
    "run_with_windows",
    "table1_description",
]
