"""System assembly, configuration and simulation drivers.

The package's execution substrate is :mod:`repro.sim.engine`: a batched
simulation driver that expands (workload, predictor, config, seed) grids
into picklable jobs, reuses generated traces through a process-local
:class:`~repro.sim.engine.TraceCache`, and fans jobs out over worker
processes when the ``REPRO_JOBS`` environment variable (or an explicit
``SimulationEngine(jobs=N)``) asks for parallelism.  Serial and parallel
execution are bit-identical; see the engine module docstring.

Results persist through :mod:`repro.sim.store`, a content-addressed store
the engine reads through when constructed with one (or when the
``REPRO_STORE`` environment variable names a store directory): stored jobs
are served from disk, fresh ones are simulated and persisted.  The
``python -m repro`` CLI (:mod:`repro.cli`) runs whole figure grids on top
of it.
"""

from .config import PREDICTOR_NAMES, SystemConfig, table1_description
from .engine import (
    MixJob,
    SimulationEngine,
    SimulationJob,
    TRACE_CACHE,
    TraceCache,
    expand_grid,
    execute_job,
)
from .multicore import MultiCoreResult, MultiCoreSystem, run_mix_comparison
from .store import (
    ResultStore,
    UncacheableJobError,
    default_store,
    deserialize_result,
    fsck_store,
    job_key,
    job_spec,
    serialize_result,
    shard_for_key,
)
from .stats import (
    MissFilteringRatios,
    MissTraceWindow,
    WindowedMissTracker,
    miss_filtering_ratios,
    run_with_windows,
)
from .system import (
    SimulatedSystem,
    SimulationResult,
    build_system,
    make_llc_prefetcher,
    make_predictor,
    run_predictor_comparison,
)

__all__ = [
    "MissFilteringRatios",
    "MissTraceWindow",
    "MixJob",
    "MultiCoreResult",
    "MultiCoreSystem",
    "PREDICTOR_NAMES",
    "ResultStore",
    "SimulatedSystem",
    "SimulationEngine",
    "SimulationJob",
    "SimulationResult",
    "SystemConfig",
    "TRACE_CACHE",
    "TraceCache",
    "UncacheableJobError",
    "WindowedMissTracker",
    "default_store",
    "deserialize_result",
    "execute_job",
    "expand_grid",
    "fsck_store",
    "job_key",
    "job_spec",
    "serialize_result",
    "shard_for_key",
    "build_system",
    "make_llc_prefetcher",
    "make_predictor",
    "miss_filtering_ratios",
    "run_mix_comparison",
    "run_predictor_comparison",
    "run_with_windows",
    "table1_description",
]
