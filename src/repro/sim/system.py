"""System assembly and single-core simulation driver.

:func:`build_system` turns a :class:`~repro.sim.config.SystemConfig` into a
ready-to-run :class:`SimulatedSystem`: it instantiates the predictor named in
the configuration, the paper's prefetch scheme, the shared LLC/DRAM resources
and the core timing model.  :meth:`SimulatedSystem.run_workload` then drives a
workload trace through the hierarchy and the core model and returns a
:class:`SimulationResult` with every quantity the paper's figures report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..core.base import LevelPredictor, PredictorStats, SequentialPredictor
from ..core.d2d import DirectToDataPredictor, IdealPredictor
from ..core.level_predictor import CacheLevelPredictor, LevelPredictorConfig
from ..core.recovery import RecoverySummary, summarize_recovery
from ..core.tage import TAGEConfig, TAGELevelPredictor
from ..cpu.ooo_core import ExecutionResult, OutOfOrderCore
from ..memory.block import AccessResult, MemoryAccess
from ..memory.hierarchy import (
    CoreMemoryHierarchy,
    HierarchyConfig,
    HierarchyStats,
    SharedMemorySystem,
)
from ..prefetch.base import NullPrefetcher, Prefetcher
from ..prefetch.dcpt import DCPTPrefetcher
from ..prefetch.nextline import TaggedNextLinePrefetcher
from ..prefetch.throttle import ThrottledPrefetcher
from ..trace import TraceBuffer, as_trace_buffer, shard_spans
from ..workloads.base import Workload
from .config import SystemConfig

#: A runnable trace: the columnar buffer the engine ships around, or the
#: legacy list-of-records representation.
Trace = Union[TraceBuffer, Sequence[MemoryAccess]]


@dataclass
class SimulationResult:
    """Everything measured from one (workload, system) simulation."""

    workload: str
    system: str
    predictor: str
    execution: ExecutionResult
    hierarchy_stats: HierarchyStats
    predictor_stats: PredictorStats
    energy_breakdown: Dict[str, float]
    cache_hierarchy_energy_nj: float
    recovery: RecoverySummary
    metadata_miss_ratio: float = 0.0
    pld_misprediction_ratio: float = 0.0

    @property
    def ipc(self) -> float:
        return self.execution.ipc

    @property
    def average_memory_access_latency(self) -> float:
        return self.hierarchy_stats.average_memory_access_latency

    def speedup_over(self, baseline: "SimulationResult") -> float:
        return self.execution.speedup_over(baseline.execution)

    def normalized_energy_over(self, baseline: "SimulationResult") -> float:
        base = baseline.cache_hierarchy_energy_nj
        if base == 0.0:
            return 1.0
        return self.cache_hierarchy_energy_nj / base


def make_predictor(name: str, config: Optional[SystemConfig] = None
                   ) -> LevelPredictor:
    """Instantiate a level predictor by its configuration name."""
    config = config or SystemConfig.paper_single_core()
    name = name.lower()
    if name in ("baseline", "sequential"):
        return SequentialPredictor()
    if name == "lp":
        return CacheLevelPredictor(LevelPredictorConfig(
            metadata_cache_bytes=config.metadata_cache_bytes))
    if name == "tage-2kb":
        return TAGELevelPredictor(TAGEConfig(storage_bytes=2048))
    if name == "tage-8kb":
        return TAGELevelPredictor(TAGEConfig(storage_bytes=8192))
    if name == "d2d":
        return DirectToDataPredictor()
    if name == "ideal":
        return IdealPredictor()
    raise ValueError(f"unknown predictor {name!r}; known: "
                     "baseline, lp, tage-2kb, tage-8kb, d2d, ideal")


def _make_private_prefetchers(config: SystemConfig):
    """L1 and L2 prefetchers of the paper's baseline scheme."""
    if config.prefetch_scheme == "none":
        return NullPrefetcher(), NullPrefetcher()
    l1 = TaggedNextLinePrefetcher(degree=1)
    l2 = TaggedNextLinePrefetcher(degree=2)
    return l1, l2


def make_llc_prefetcher(config: SystemConfig) -> Prefetcher:
    """The LLC prefetcher (throttled DCPT degree 2 in the paper)."""
    if config.prefetch_scheme == "none":
        return NullPrefetcher()
    return ThrottledPrefetcher(DCPTPrefetcher(degree=2),
                               epoch_accesses=config.prefetch_epoch_accesses)


class SimulatedSystem:
    """A single-core system: hierarchy + predictor + core timing model."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 llc_prefetcher: Optional[Prefetcher] = None) -> None:
        self.config = config or SystemConfig.paper_single_core()
        hierarchy_config = self.config.hierarchy
        if self.config.predictor == "ideal":
            # The Ideal system charges no miss latency (Section IV.C).
            hierarchy_config = _with_ideal_latency(hierarchy_config)
        self.predictor = make_predictor(self.config.predictor, self.config)
        self.shared = SharedMemorySystem(
            hierarchy_config, num_cores=1,
            llc_prefetcher=llc_prefetcher or make_llc_prefetcher(self.config))
        l1_prefetcher, l2_prefetcher = _make_private_prefetchers(self.config)
        self.hierarchy = CoreMemoryHierarchy(
            config=hierarchy_config, shared=self.shared,
            predictor=self.predictor, l1_prefetcher=l1_prefetcher,
            l2_prefetcher=l2_prefetcher, core_id=0, active_cores=1)
        self.core = OutOfOrderCore(self.config.core)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_trace(self, trace: Trace,
                  workload_name: str = "trace",
                  kernel: Optional[str] = None) -> SimulationResult:
        """Run a pre-generated trace through the hierarchy and core model.

        Accepts a columnar :class:`~repro.trace.TraceBuffer` (the engine's
        representation — replayed through the kernel seam, see
        :mod:`repro.sim.kernels`) or a legacy record sequence; both produce
        bit-identical results for the same access stream, whatever
        ``kernel`` selects.
        """
        if isinstance(trace, TraceBuffer):
            results = self.hierarchy.run_buffer(trace, kernel=kernel)
        else:
            results: List[AccessResult] = [self.hierarchy.access(a)
                                           for a in trace]
        execution = self.core.execute(trace, results)
        return self._collect(workload_name, execution)

    def run_trace_sharded(self, trace: Trace,
                          workload_name: str = "trace",
                          kernel: Optional[str] = None,
                          shards: int = 1) -> SimulationResult:
        """Exact sharded replay: sequential hand-off through one system.

        The trace is split into at most ``shards`` contiguous column
        slices (zero-copy views, see :func:`repro.trace.shard_spans`) and
        replayed span by span through *this* hierarchy — each span starts
        from the cache/predictor/prefetcher state the previous span left
        behind, exactly like the unsharded replay.  Kernels resolve each
        buffer independently (a span boundary simply starts a new run for
        the batch kernel's segmenter, which takes the exact scalar path),
        so the access results — and therefore the stored bytes — are
        bit-identical to :meth:`run_trace` by construction.  This is the
        default ``exact`` sharding mode: it proves the shard plumbing
        with zero statistical drift; the concurrent speedup lives in the
        opt-in ``approx`` mode (see :mod:`repro.sim.engine`).
        """
        buffer = as_trace_buffer(trace)
        results: List[AccessResult] = []
        for start, end in shard_spans(len(buffer), max(1, shards)):
            results.extend(self.hierarchy.run_buffer(buffer[start:end],
                                                     kernel=kernel))
        execution = self.core.execute(buffer, results)
        return self._collect(workload_name, execution)

    def run_workload(self, workload: Workload, num_accesses: int,
                     seed: int = 0, warmup_accesses: int = 0
                     ) -> SimulationResult:
        """Generate a workload trace (with optional warm-up) and run it.

        Warm-up accesses prime the caches, predictors and prefetchers but are
        excluded from all reported statistics, mirroring the paper's use of
        warm-up instructions before each SimPoint region.  The trace is
        materialised as a columnar buffer; the warm-up/measure split is a
        zero-copy slice.
        """
        total = num_accesses + warmup_accesses
        buffer = workload.generate_buffer(total, seed=seed)
        if warmup_accesses:
            self.hierarchy.run_buffer(buffer[:warmup_accesses])
            self.reset_statistics()
        return self.run_trace(buffer[warmup_accesses:], workload.name)

    def reset_statistics(self) -> None:
        self.hierarchy.reset_statistics()

    # ------------------------------------------------------------------
    # Result collection
    # ------------------------------------------------------------------
    def _collect(self, workload_name: str,
                 execution: ExecutionResult) -> SimulationResult:
        stats = self.hierarchy.stats
        predictor_stats = self.predictor.stats
        metadata_miss_ratio = 0.0
        pld_ratio = predictor_stats.pld_misprediction_ratio
        if isinstance(self.predictor, CacheLevelPredictor):
            metadata_miss_ratio = (
                self.predictor.locmap.metadata_cache.stats.miss_ratio)
        return SimulationResult(
            workload=workload_name,
            system=self.config.name,
            predictor=self.predictor.name,
            execution=execution,
            hierarchy_stats=stats,
            predictor_stats=predictor_stats,
            energy_breakdown=self.hierarchy.energy.breakdown(),
            cache_hierarchy_energy_nj=(
                self.hierarchy.energy.cache_hierarchy_energy()),
            recovery=summarize_recovery(self.hierarchy),
            metadata_miss_ratio=metadata_miss_ratio,
            pld_misprediction_ratio=pld_ratio,
        )


def _with_ideal_latency(hierarchy):
    """Flip ideal_miss_latency on a HierarchyConfig or HierarchySpec."""
    from dataclasses import replace
    return replace(hierarchy, ideal_miss_latency=True)


def build_system(predictor: str = "lp",
                 config: Optional[SystemConfig] = None) -> SimulatedSystem:
    """Build a single-core system with the given predictor attached."""
    config = (config or SystemConfig.paper_single_core()).with_predictor(predictor)
    return SimulatedSystem(config)


def run_predictor_comparison(workload: Workload, num_accesses: int,
                             predictors: Sequence[str] = ("baseline", "lp"),
                             seed: int = 0,
                             config: Optional[SystemConfig] = None,
                             warmup_accesses: int = 0
                             ) -> Dict[str, SimulationResult]:
    """Run the same workload on several systems (one per predictor).

    Every system sees the exact same trace (same seed), which is how the
    paper's speedup and energy comparisons are defined.  The work runs on
    the :mod:`repro.sim.engine` — the trace is generated once (not once per
    system) and the jobs fan out over worker processes when ``REPRO_JOBS``
    asks for them.  When ``REPRO_STORE`` names a results store, previously
    computed (workload, system, seed, accesses) cells are read from it
    instead of being resimulated (see :mod:`repro.sim.store`).
    """
    from .engine import SimulationEngine, SimulationJob

    base_config = config or SystemConfig.paper_single_core()
    jobs = [SimulationJob(workload=workload, predictor=name,
                          num_accesses=num_accesses,
                          warmup_accesses=warmup_accesses, seed=seed,
                          config=base_config)
            for name in predictors]
    results = SimulationEngine().run(jobs)
    return dict(zip(predictors, results))
