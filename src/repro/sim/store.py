"""Content-addressed experiment results store.

Every figure in the paper is a grid of deterministic simulations, so a
(workload spec, system config, predictor, seed, access counts) tuple fully
determines its :class:`~repro.sim.system.SimulationResult`.  This module
turns that determinism into persistence:

* :func:`job_spec` — a canonical, JSON-able description of one engine job
  (:class:`~repro.sim.engine.SimulationJob` or
  :class:`~repro.sim.engine.MixJob`), including the fully resolved system
  configuration and, for mixes, the resolved per-core application list;
* :func:`job_key` — the SHA-256 of that canonical description.  Keys are
  stable across processes and interpreter runs (no ``hash()``, no ``id()``),
  so a store written by one run is readable by every later one;
* :func:`serialize_result` / :func:`deserialize_result` — exact round-trip
  encoding of simulation results (JSON ``repr`` round-trips floats
  bit-for-bit, so a deserialized result compares equal to the original);
* :class:`ResultStore` — crash- and concurrency-safe sharded JSON-lines
  persistence: entries land in ``<root>/shards/<xx>.jsonl`` keyed by the
  leading byte of the SHA-256 job key, every append is a single
  ``os.write`` of one full line on an ``O_APPEND`` descriptor under an
  advisory ``fcntl`` lock, and a lightweight on-disk index
  (``<root>/shards/index.json``) makes re-opening a large store
  O(changed shards) instead of O(all lines).

Concurrency and crash safety
============================

Multiple processes (CI plus a user sweep, two ``python -m repro run``
invocations, ...) may write one store simultaneously.  The discipline:

* every append is one ``write(2)`` of a complete ``line + "\n"`` on an
  ``O_APPEND`` descriptor, so concurrent appends never interleave within
  a line;
* the per-store advisory lock (``<root>/shards/.lock``) is held around
  append *and* repair, and repair only ever truncates a torn trailing
  line in place — it never rewrites a file, so entries appended by other
  processes are never clobbered;
* a torn trailing line (a run killed mid-append) is skipped with a
  warning on load and truncated under the lock before the next append to
  that shard; mid-file corruption is a contextual :class:`ValueError`
  naming ``path:line`` and is salvageable with ``python -m repro store
  fsck`` (see :func:`fsck_store`).

A legacy single-file ``<root>/store.jsonl`` is migrated into the sharded
layout automatically on open (and explicitly via ``python -m repro store
migrate``); the original is kept as ``store.jsonl.migrated``.

Fleets of daemons sharing one store coordinate through per-job-key
*claim records* (``<root>/claims/<key>.json``, created with
``O_CREAT | O_EXCL`` so the filesystem arbitrates races) plus
:meth:`ResultStore.refresh`, which re-checks the disk for a key another
process may have appended.  See :meth:`ResultStore.claim`.

Jobs whose workload cannot be fingerprinted deterministically (an ad-hoc
:class:`~repro.workloads.base.Workload` carrying state the canonicalizer
does not understand) raise :class:`UncacheableJobError`; the engine runs
such jobs directly, bypassing the store.  Lookups with ``key=None`` are
counted in :attr:`ResultStore.unkeyed`, not as misses, so the hit/miss
counters measure only content-addressable traffic.

The engine consults a store when given one explicitly or when the
``REPRO_STORE`` environment variable names a store directory (see
:func:`default_store`); ``python -m repro`` defaults to ``results/``.
"""

from __future__ import annotations

import dataclasses
import enum
import errno
import hashlib
import json
import os
import socket
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

# POSIX-only on purpose: the store's concurrency guarantees rest on
# fcntl.flock and os.pread, so a platform without them must fail loudly
# at import rather than silently run unlocked.
import fcntl

from ..core.base import PredictionOutcome, PredictorStats
from ..faults import fault_point
from ..core.recovery import RecoverySummary
from ..cpu.ooo_core import ExecutionResult
from ..memory.block import Level
from ..memory.hierarchy import HierarchyStats
from ..workloads.base import Workload
from ..workloads.mixes import get_mix
from .config import SystemConfig
from .multicore import MultiCoreResult
from .system import SimulationResult

#: Environment variable naming the default store directory ("" disables).
REPRO_STORE_ENV = "REPRO_STORE"

#: Environment variable naming the on-disk trace-cache directory.  Unset
#: falls back to ``<$REPRO_STORE>/traces`` when a store is named; an empty
#: value disables trace spilling entirely.
REPRO_TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Bumped whenever the canonical job spec or result encoding changes shape;
#: part of every job key, so incompatible stores never serve stale results.
STORE_SCHEMA = "repro-store/1"

#: Bumped whenever trace generation semantics or the buffer layout change;
#: part of every trace key, so stale on-disk traces are never replayed.
TRACE_SCHEMA = "repro-trace/1"


class UncacheableJobError(ValueError):
    """The job's workload cannot be fingerprinted deterministically."""


# ======================================================================
# Canonical job specs and keys
# ======================================================================
def _canonical(value: Any) -> Any:
    """Reduce a config/workload value to deterministic JSON-able data.

    Handles the types the configuration tree is built from: primitives,
    enums, dataclasses, lists/tuples and string-keyed dicts.  Anything else
    raises :class:`UncacheableJobError` — silently guessing would risk two
    different experiments sharing one key.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, Workload):
        return {
            "__workload__": type(value).__name__,
            "state": {name: _canonical(attr)
                      for name, attr in sorted(vars(value).items())},
        }
    canonical_hook = getattr(value, "__canonical__", None)
    if canonical_hook is not None:
        # Objects may supply their own canonical form — e.g. a
        # HierarchySpec that is an exact image of the legacy config
        # canonicalises *as* that config, keeping job keys stable across
        # the representation change.  Returning NotImplemented falls
        # through to the generic rules below.
        result = canonical_hook(_canonical)
        if result is not NotImplemented:
            return result
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {f.name: _canonical(getattr(value, f.name))
                       for f in dataclasses.fields(value)},
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        if not all(isinstance(key, str) for key in value):
            raise UncacheableJobError(
                f"cannot fingerprint dict with non-string keys: {value!r}")
        return {key: _canonical(value[key]) for key in sorted(value)}
    raise UncacheableJobError(
        f"cannot fingerprint {type(value).__name__!r} value {value!r}")


#: Memoized name-spec fingerprints: the suite registry is immutable within
#: a process, and grids fingerprint the same ~21 applications per job.
_NAME_FINGERPRINTS: Dict[str, Any] = {}


def _workload_fingerprint(workload: Union[str, Workload]) -> Any:
    """Hash a workload spec by the full state of its trace generator.

    Name specs are resolved through the suite registry first, so
    ``"gapbs.pr"`` and ``build_workload("gapbs.pr")`` address the same
    store entry — and retuning an application's registry parameters
    automatically invalidates its cached results.
    """
    if isinstance(workload, str):
        fingerprint = _NAME_FINGERPRINTS.get(workload)
        if fingerprint is None:
            from ..workloads.suite import build_workload
            fingerprint = _canonical(build_workload(workload))
            _NAME_FINGERPRINTS[workload] = fingerprint
        return fingerprint
    return _canonical(workload)


def job_spec(job: Any) -> Dict[str, Any]:
    """The canonical description of one engine job.

    The spec captures everything :func:`repro.sim.engine.execute_job` reads:
    the workload (or resolved mix composition), the predictor, the access
    counts, the seed and the fully resolved system configuration —
    ``config=None`` resolves to the same paper default the executor uses, so
    it hashes identically to an explicitly passed default.
    """
    # Imported here to avoid a cycle (engine imports this module's store).
    from .engine import MixJob, SimulationJob

    if isinstance(job, SimulationJob):
        config = job.config or SystemConfig.paper_single_core()
        return {
            "schema": STORE_SCHEMA,
            "kind": "single",
            "workload": _workload_fingerprint(job.workload),
            "predictor": job.predictor,
            "num_accesses": job.num_accesses,
            "warmup_accesses": job.warmup_accesses,
            "seed": job.seed,
            "config": _canonical(config),
        }
    if isinstance(job, MixJob):
        config = job.config or SystemConfig.paper_multi_core()
        mix = get_mix(job.mix)
        return {
            "schema": STORE_SCHEMA,
            "kind": "mix",
            "mix": job.mix,
            # Full per-core generator state, not just names: retuning a
            # registry application must invalidate the mixes containing it
            # exactly like it invalidates its single-core cells.
            "applications": [_workload_fingerprint(app)
                             for app in mix.applications],
            "multithreaded": mix.multithreaded,
            "predictor": job.predictor,
            "accesses_per_core": job.accesses_per_core,
            "seed": job.seed,
            "config": _canonical(config),
        }
    raise UncacheableJobError(f"unknown job type {type(job).__name__!r}")


def spec_key(spec: Dict[str, Any]) -> str:
    """SHA-256 of an already-built canonical spec (hex)."""
    payload = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def job_key(job: Any) -> str:
    """SHA-256 of the canonical job spec (hex, stable across processes)."""
    return spec_key(job_spec(job))


def try_job_key(job: Any) -> Optional[str]:
    """:func:`job_key`, or ``None`` for jobs the store cannot address."""
    try:
        return job_key(job)
    except UncacheableJobError:
        return None


def trace_spec(workload: Union[str, Workload], num_accesses: int,
               seed: int = 0, base_address: int = 0,
               thread_id: int = 0) -> Dict[str, Any]:
    """Canonical description of one generated trace.

    Mirrors :func:`job_spec` for the trace cache: the key covers the full
    resolved generator state plus every generation parameter, so retuning a
    registry application invalidates its spilled traces exactly like it
    invalidates its stored results.
    """
    return {
        "schema": TRACE_SCHEMA,
        "workload": _workload_fingerprint(workload),
        "num_accesses": num_accesses,
        "seed": seed,
        "base_address": base_address,
        "thread_id": thread_id,
    }


def trace_key(workload: Union[str, Workload], num_accesses: int,
              seed: int = 0, base_address: int = 0,
              thread_id: int = 0) -> str:
    """SHA-256 key of one trace (stable across processes and runs)."""
    return spec_key(trace_spec(workload, num_accesses, seed=seed,
                               base_address=base_address,
                               thread_id=thread_id))


def try_trace_key(workload: Union[str, Workload], num_accesses: int,
                  seed: int = 0, base_address: int = 0,
                  thread_id: int = 0) -> Optional[str]:
    """:func:`trace_key`, or ``None`` for unfingerprintable workloads."""
    try:
        return trace_key(workload, num_accesses, seed=seed,
                         base_address=base_address, thread_id=thread_id)
    except UncacheableJobError:
        return None


# ======================================================================
# Result serialization (exact round-trip)
# ======================================================================
def _execution_to_dict(execution: ExecutionResult) -> Dict[str, Any]:
    return {
        "cycles": execution.cycles,
        "instructions": execution.instructions,
        "memory_accesses": execution.memory_accesses,
        "stall_cycles": execution.stall_cycles,
    }


def _execution_from_dict(data: Dict[str, Any]) -> ExecutionResult:
    return ExecutionResult(**data)


def _hierarchy_stats_to_dict(stats: HierarchyStats) -> Dict[str, Any]:
    return {f.name: getattr(stats, f.name)
            for f in dataclasses.fields(HierarchyStats)}


def _predictor_stats_to_dict(stats: PredictorStats) -> Dict[str, Any]:
    return {
        "predictions": stats.predictions,
        "outcomes": {outcome.name: count
                     for outcome, count in stats.outcomes.items()},
        "multi_way_predictions": stats.multi_way_predictions,
        "pld_predictions": stats.pld_predictions,
        "pld_mispredictions": stats.pld_mispredictions,
        "metadata_hits": stats.metadata_hits,
        "metadata_misses": stats.metadata_misses,
        "level_histogram": {
            "+".join(level.name for level in levels): count
            for levels, count in stats.level_histogram.items()
        },
        "updates": stats.updates,
    }


def _predictor_stats_from_dict(data: Dict[str, Any]) -> PredictorStats:
    stats = PredictorStats()
    stats.predictions = data["predictions"]
    stats.outcomes = {outcome: data["outcomes"].get(outcome.name, 0)
                      for outcome in PredictionOutcome}
    stats.multi_way_predictions = data["multi_way_predictions"]
    stats.pld_predictions = data["pld_predictions"]
    stats.pld_mispredictions = data["pld_mispredictions"]
    stats.metadata_hits = data["metadata_hits"]
    stats.metadata_misses = data["metadata_misses"]
    stats.level_histogram = {
        tuple(Level[name] for name in key.split("+")): count
        for key, count in data["level_histogram"].items()
    }
    stats.updates = data["updates"]
    return stats


def _recovery_to_dict(recovery: RecoverySummary) -> Dict[str, Any]:
    return {f.name: getattr(recovery, f.name)
            for f in dataclasses.fields(RecoverySummary)}


def serialize_result(result: Union[SimulationResult, MultiCoreResult]
                     ) -> Dict[str, Any]:
    """Encode a simulation result as JSON-able data.

    The encoding is exact: floats survive JSON unchanged (shortest-repr
    round-trip), so ``deserialize_result(serialize_result(r)) == r``.
    """
    if isinstance(result, SimulationResult):
        return {
            "kind": "single",
            "workload": result.workload,
            "system": result.system,
            "predictor": result.predictor,
            "execution": _execution_to_dict(result.execution),
            "hierarchy_stats": _hierarchy_stats_to_dict(
                result.hierarchy_stats),
            "predictor_stats": _predictor_stats_to_dict(
                result.predictor_stats),
            "energy_breakdown": dict(result.energy_breakdown),
            "cache_hierarchy_energy_nj": result.cache_hierarchy_energy_nj,
            "recovery": _recovery_to_dict(result.recovery),
            "metadata_miss_ratio": result.metadata_miss_ratio,
            "pld_misprediction_ratio": result.pld_misprediction_ratio,
        }
    if isinstance(result, MultiCoreResult):
        return {
            "kind": "mix",
            "mix": result.mix,
            "predictor": result.predictor,
            "per_core_execution": [_execution_to_dict(execution)
                                   for execution in result.per_core_execution],
            "per_core_workloads": list(result.per_core_workloads),
            "accuracy_breakdown": dict(result.accuracy_breakdown),
            "cache_hierarchy_energy_nj": result.cache_hierarchy_energy_nj,
            "total_predictions": result.total_predictions,
            "total_recoveries": result.total_recoveries,
        }
    raise TypeError(f"cannot serialize {type(result).__name__!r}")


def deserialize_result(data: Dict[str, Any]
                       ) -> Union[SimulationResult, MultiCoreResult]:
    """Rebuild the result object encoded by :func:`serialize_result`."""
    kind = data["kind"]
    if kind == "single":
        return SimulationResult(
            workload=data["workload"],
            system=data["system"],
            predictor=data["predictor"],
            execution=_execution_from_dict(data["execution"]),
            hierarchy_stats=HierarchyStats(**data["hierarchy_stats"]),
            predictor_stats=_predictor_stats_from_dict(
                data["predictor_stats"]),
            energy_breakdown=dict(data["energy_breakdown"]),
            cache_hierarchy_energy_nj=data["cache_hierarchy_energy_nj"],
            recovery=RecoverySummary(**data["recovery"]),
            metadata_miss_ratio=data["metadata_miss_ratio"],
            pld_misprediction_ratio=data["pld_misprediction_ratio"],
        )
    if kind == "mix":
        return MultiCoreResult(
            mix=data["mix"],
            predictor=data["predictor"],
            per_core_execution=[_execution_from_dict(execution)
                                for execution in data["per_core_execution"]],
            per_core_workloads=list(data["per_core_workloads"]),
            accuracy_breakdown=dict(data["accuracy_breakdown"]),
            cache_hierarchy_energy_nj=data["cache_hierarchy_energy_nj"],
            total_predictions=data["total_predictions"],
            total_recoveries=data["total_recoveries"],
        )
    raise ValueError(f"unknown result kind {kind!r}")


# ======================================================================
# Sharded on-disk layout: naming, locking, appending, line parsing
# ======================================================================
#: Directory under the store root holding the shard files.
SHARDS_DIRNAME = "shards"

#: Name of the on-disk shard index (inside the shards directory).
INDEX_FILENAME = "index.json"

#: Name of the advisory lock file (inside the shards directory).
LOCK_FILENAME = ".lock"

#: Bumped whenever the index layout changes; unknown indexes are rescanned.
INDEX_SCHEMA = "repro-store-index/1"

#: Directory under the store root holding fleet claim records.
CLAIMS_DIRNAME = "claims"

#: Age (seconds) after which a claim held by an *unreachable* host is
#: presumed abandoned.  Same-host claims are probed by pid instead and
#: never expire while their owner is alive, so a legitimately long
#: simulation is never stolen out from under a live daemon.
CLAIM_TTL = 600.0

_CLAIM_HOST = socket.gethostname()

#: Hex characters of the key that select a shard (2 -> up to 256 shards).
SHARD_PREFIX_CHARS = 2

#: In-memory location marker for entries served straight from an
#: unmigrated legacy ``store.jsonl`` (read-only media); never a real
#: shard prefix, since shard file stems are never empty.
_LEGACY_PREFIX = ""

_HEX_DIGITS = frozenset("0123456789abcdef")


def shard_for_key(key: str) -> str:
    """The shard prefix (e.g. ``"a3"``) a store key routes to.

    Keys are normally SHA-256 hex digests, so the leading bytes are already
    uniformly distributed; any other key is re-hashed so the mapping stays
    total and stable across processes.
    """
    prefix = key[:SHARD_PREFIX_CHARS].lower()
    if len(prefix) < SHARD_PREFIX_CHARS or not set(prefix) <= _HEX_DIGITS:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        prefix = digest[:SHARD_PREFIX_CHARS]
    return prefix


@contextmanager
def _store_lock(lock_path: Path) -> Iterator[None]:
    """Hold the store's advisory exclusive lock.

    Guards every mutation (append, torn-tail repair, migration, fsck,
    compaction, index writes) across processes.  ``fcntl.flock`` locks are
    per open-file-description, so this must never be nested within one
    process — public methods take the lock once and call unlocked helpers.

    After acquiring, the held inode is re-validated against the path: a
    waiter that wins the lock on an inode ``clear()`` just unlinked would
    otherwise share a critical section with a writer locking the fresh
    file (two locks, two inodes — split brain), so it retries on the
    current file instead.
    """
    fd = -1
    try:
        while True:
            lock_path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
            fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                on_disk = os.stat(lock_path).st_ino
            except FileNotFoundError:
                on_disk = -1
            if on_disk == os.fstat(fd).st_ino:
                break
            os.close(fd)
            fd = -1
        yield
    finally:
        if fd != -1:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)


def _last_newline(fd: int, size: int) -> int:
    """Offset just past the last ``\\n`` in the file (0 if none)."""
    chunk = 4096
    end = size
    while end > 0:
        start = max(0, end - chunk)
        data = os.pread(fd, end - start, start)
        found = data.rfind(b"\n")
        if found != -1:
            return start + found + 1
        end = start
    return 0


def _append_payload(path: Path, payload: bytes) -> int:
    """Append ``payload`` (one or more full lines) in a single ``write``.

    The caller must hold the store lock.  If the file ends in a torn
    partial line (a writer killed mid-append), the tail is truncated in
    place first — complete lines written by other processes are never
    touched.  Returns the offset the payload landed at.
    """
    fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        size = os.fstat(fd).st_size
        if size and os.pread(fd, 1, size - 1) != b"\n":
            size = _last_newline(fd, size)
            os.ftruncate(fd, size)
        offset = size
        # Fault site: a failing disk mid-append.  A ``torn`` fault writes
        # only a prefix of the payload (exactly what a killed writer
        # leaves behind) before raising; the next locked append repairs it
        # via the truncation above, so recovery exercises the real path.
        torn = fault_point("store.append", len(payload))
        if torn is not None:
            os.write(fd, payload[:torn])
            raise OSError(errno.EIO,
                          f"injected torn append to {path}")
        written = os.write(fd, payload)
        while written < len(payload):  # pragma: no cover - short write
            written += os.write(fd, payload[written:])
        return offset
    finally:
        os.close(fd)


_LINE_PROBLEMS = {
    "corrupt": "invalid JSON",
    "foreign": "not a store entry (missing 'key'/'result')",
}


def _classify_lines(data: bytes, start: int = 0,
                    salvage_unterminated: bool = False
                    ) -> Iterator[Tuple[str, int, int, Optional[dict]]]:
    """Classify every non-blank line of ``data`` from ``start`` onwards.

    Yields ``(kind, offset, length, entry)`` where ``kind`` is ``"good"``
    (``entry`` is the parsed store entry), ``"torn"`` (an unterminated
    partial final line), ``"corrupt"`` (a terminated line that is not
    JSON) or ``"foreign"`` (valid JSON without the entry shape).
    ``length`` includes the trailing newline when present.

    The appender only ever writes complete ``line + "\\n"`` payloads, so an
    unterminated final line is normally a torn append and unreadable; with
    ``salvage_unterminated`` (fsck), one that parses cleanly is kept.
    """
    end = len(data)
    offset = start
    while offset < end:
        newline = data.find(b"\n", offset)
        if newline == -1:
            raw, length, terminated = data[offset:end], end - offset, False
        else:
            raw = data[offset:newline]
            length, terminated = newline + 1 - offset, True
        line_offset = offset
        offset += length
        stripped = raw.strip()
        if not stripped:
            continue
        entry: Any = None
        try:
            entry = json.loads(stripped.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            yield (("corrupt" if terminated else "torn"),
                   line_offset, length, None)
            continue
        if not terminated and not salvage_unterminated:
            yield "torn", line_offset, length, None
            continue
        if not (isinstance(entry, dict) and isinstance(entry.get("key"), str)
                and "result" in entry):
            yield "foreign", line_offset, length, None
            continue
        yield "good", line_offset, length, entry


def _parse_shard(path: Path, data: bytes, start: int = 0
                 ) -> Tuple[List[List[Any]], int]:
    """Strictly parse one shard (or legacy) file from ``start``.

    Returns ``([[key, offset, length], ...], good_end)`` where ``good_end``
    is the offset just past the last good line.  A torn trailing line is
    skipped with a warning (repaired in place by the next locked append);
    any other malformed line — invalid JSON or well-formed JSON with the
    wrong shape — raises a contextual :class:`ValueError` naming
    ``path:line`` and pointing at ``python -m repro store fsck``.
    """
    entries: List[List[Any]] = []
    good_end = start
    for kind, offset, length, entry in _classify_lines(data, start):
        if kind == "good":
            entries.append([entry["key"], offset, length])
            good_end = offset + length
            continue
        if kind == "torn":
            print(f"repro.store: ignoring torn trailing line of {path} "
                  f"(interrupted append; repaired in place on next write)",
                  file=sys.stderr)
            continue
        line_number = data.count(b"\n", 0, offset) + 1
        raise ValueError(
            f"{path}:{line_number}: corrupt store line "
            f"({_LINE_PROBLEMS[kind]}); run 'python -m repro store fsck' "
            f"to salvage")
    return entries, good_end


def _existing_keys(path: Path) -> frozenset:
    """Keys of the complete entries already present in a shard file.

    Migration skips legacy lines whose key the shard already holds: that
    makes an interrupted migration resume without duplicating the lines
    it already appended, and keeps a stale legacy entry from superseding
    a newer shard entry under newest-wins (shard entries always postdate
    the legacy layout).
    """
    if not path.is_file():
        return frozenset()
    data = path.read_bytes()
    return frozenset(
        entry["key"]
        for kind, _, _, entry in _classify_lines(data)
        if kind == "good")


def _rebuild_shard(path: Path, lines: List[Tuple[str, bytes]],
                   original: Optional[bytes]
                   ) -> Tuple[bool, Dict[str, Any]]:
    """Atomically replace a shard with ``lines`` if its bytes changed.

    The single rewrite discipline shared by compaction and fsck: compare
    against ``original`` (the bytes read under the lock; ``None`` for a
    shard that did not exist), write via ``.tmp`` + ``os.replace`` only on
    change, and return ``(rewritten, index meta)`` for the new content.
    Caller holds the store lock.
    """
    payload = b"".join(line for _, line in lines)
    rewritten = payload != original
    if rewritten:
        tmp = path.with_suffix(".jsonl.tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
    entries: List[List[Any]] = []
    offset = 0
    for key, line in lines:
        entries.append([key, offset, len(line)])
        offset += len(line)
    return rewritten, {"size": offset, "entries": entries}


def _write_index(shards_dir: Path,
                 meta: Dict[str, Dict[str, Any]]) -> None:
    """Atomically replace the shard index.  Caller holds the store lock."""
    payload = json.dumps({"schema": INDEX_SCHEMA, "shards": meta},
                         sort_keys=True, separators=(",", ":"))
    tmp = shards_dir / (INDEX_FILENAME + ".tmp")
    tmp.write_text(payload, encoding="utf-8")
    os.replace(tmp, shards_dir / INDEX_FILENAME)


# ======================================================================
# The store
# ======================================================================
class ResultStore:
    """Sharded, concurrency-safe JSON-lines results store.

    Layout::

        <root>/shards/<xx>.jsonl   entries whose key starts with hex "xx"
        <root>/shards/index.json   per-shard {size, [key, offset, length]}
        <root>/shards/.lock        advisory fcntl lock (append/repair/fsck)
        <root>/store.jsonl         legacy single-file store (auto-migrated)
        <root>/stats/              per-experiment summaries (CLI-written)

    Entries are appended in job order, so two runs over the same job list
    produce byte-identical shard files regardless of worker parallelism —
    the property the CI determinism job checks.  Re-putting a key appends a
    new line; the newest line wins on reload (how ``--force`` refreshes
    results without rewriting history).  Results are read lazily —
    :meth:`get` ``pread``\\ s one line at its indexed offset — so opening a
    large store does not parse every stored result.
    """

    #: Legacy single-file layout (pre-sharding); migrated on open.
    STORE_FILENAME = "store.jsonl"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.shards_dir = self.root / SHARDS_DIRNAME
        self.index_path = self.shards_dir / INDEX_FILENAME
        self.lock_path = self.shards_dir / LOCK_FILENAME
        self.legacy_path = self.root / self.STORE_FILENAME
        self.claims_dir = self.root / CLAIMS_DIRNAME
        #: Staleness bound for foreign-host claims; tests shrink this.
        self.claim_ttl = CLAIM_TTL
        #: key -> (shard prefix, byte offset, line length) for every entry.
        self._entries: Dict[str, Tuple[str, int, int]] = {}
        #: Encoded results touched by this process (put or already read).
        self._mem: Dict[str, Dict[str, Any]] = {}
        #: Per-shard {"size", "entries"} mirror of the on-disk index.
        self._index_meta: Dict[str, Dict[str, Any]] = {}
        #: Shards another process appended to behind us: this process's
        #: entry list has holes for them, so they must never be indexed.
        self._unindexed: set = set()
        self.hits = 0
        self.misses = 0
        #: Lookups for ``key=None`` (uncacheable jobs) — not store misses.
        self.unkeyed = 0
        #: Results persisted through this instance (one shard append each);
        #: the daemon's dedup tests assert exactly one put per job key.
        self.puts = 0
        #: Entries folded in from a legacy ``store.jsonl`` on this open.
        self.migrated_entries = self._migrate_legacy()
        self._load()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _shard_path(self, prefix: str) -> Path:
        if prefix == _LEGACY_PREFIX:
            return self.legacy_path
        return self.shards_dir / f"{prefix}.jsonl"

    def _read_index(self) -> Dict[str, Any]:
        try:
            raw = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict) or raw.get("schema") != INDEX_SCHEMA:
            return {}
        shards = raw.get("shards")
        return shards if isinstance(shards, dict) else {}

    def _load(self) -> None:
        """Build the key index, scanning only shards the index missed.

        A shard whose on-disk size matches its index entry is adopted
        without reading it; one that only grew is scanned from the indexed
        offset (appends are the common mutation); anything else is
        rescanned in full.  The refreshed index is written back
        best-effort so the next open stays O(changed shards).
        """
        if not self.shards_dir.is_dir():
            return
        index = self._read_index()
        dirty = False
        for path in sorted(self.shards_dir.glob("*.jsonl")):
            prefix = path.stem
            size = path.stat().st_size
            cached = index.get(prefix)
            if isinstance(cached, dict) and cached.get("size") == size:
                entries = [list(entry)
                           for entry in cached.get("entries", [])]
                self._adopt(prefix, {"size": size, "entries": entries})
                continue
            data = path.read_bytes()
            carried: List[List[Any]] = []
            start = 0
            if isinstance(cached, dict) and \
                    0 < cached.get("size", 0) < size:
                carried = [list(entry)
                           for entry in cached.get("entries", [])]
                start = cached["size"]
            try:
                fresh, good_end = _parse_shard(path, data, start)
            except ValueError:
                if start == 0:
                    raise
                # The shard was rewritten (fsck/compact) behind a stale
                # index, so the indexed offset lands mid-line.  The index
                # is a cache, never authority: rescan the whole shard.
                carried, start = [], 0
                fresh, good_end = _parse_shard(path, data, 0)
            self._adopt(prefix, {"size": max(good_end, start),
                                 "entries": carried + fresh})
            dirty = True
        if dirty:
            try:
                with _store_lock(self.lock_path):
                    _write_index(self.shards_dir, self._index_meta)
            except OSError:  # pragma: no cover - read-only store dir
                pass

    def _adopt(self, prefix: str, meta: Dict[str, Any]) -> None:
        for key, offset, length in meta["entries"]:
            self._entries[key] = (prefix, offset, length)
        self._index_meta[prefix] = meta

    def _migrate_legacy(self) -> int:
        """Fold a legacy single-file ``store.jsonl`` into the shards.

        Runs under the store lock (re-checking after acquisition, so two
        processes opening the same legacy store race safely); the original
        file is kept as ``store.jsonl.migrated``.  Lossless: every good
        line's bytes are appended verbatim to its shard.

        On unwritable media (``status``/``--check`` against a read-only
        mount) migration is skipped and the legacy entries are served in
        place instead, so read-only commands keep working.
        """
        if not self.legacy_path.is_file():
            return 0
        try:
            with _store_lock(self.lock_path):
                if not self.legacy_path.is_file():
                    return 0
                data = self.legacy_path.read_bytes()
                entries, _ = _parse_shard(self.legacy_path, data)
                groups: Dict[str, List[Tuple[str, bytes]]] = {}
                for key, offset, length in entries:
                    line = data[offset:offset + length]
                    groups.setdefault(shard_for_key(key), []).append(
                        (key, line))
                for prefix, lines in sorted(groups.items()):
                    path = self._shard_path(prefix)
                    present = _existing_keys(path)
                    payload = b"".join(line for key, line in lines
                                       if key not in present)
                    if payload:
                        _append_payload(path, payload)
                backup = self.legacy_path.with_name(
                    self.legacy_path.name + ".migrated")
                os.replace(self.legacy_path, backup)
        except OSError as exc:
            # Unwritable media: serve the legacy entries in place.  If
            # even reading the legacy file fails, there is nothing to
            # degrade to — propagate the original error.
            try:
                data = self.legacy_path.read_bytes()
                entries, _ = _parse_shard(self.legacy_path, data)
            except OSError:
                raise exc from None
            print(f"repro.store: cannot migrate legacy {self.legacy_path} "
                  f"({exc}); serving its entries read-only in place",
                  file=sys.stderr)
            for key, offset, length in entries:
                self._entries[key] = (_LEGACY_PREFIX, offset, length)
            return 0
        print(f"repro.store: migrated {len(entries)} legacy entries from "
              f"{self.legacy_path} into {self.shards_dir} (original kept "
              f"as {backup.name})", file=sys.stderr)
        return len(entries)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Optional[str]) -> bool:
        return key is not None and key in self._entries

    def keys(self) -> List[str]:
        return list(self._entries)

    def total_lines(self) -> int:
        """Persisted lines across all shards (>= entries: newest wins)."""
        return sum(len(meta["entries"])
                   for meta in self._index_meta.values())

    def get(self, key: Optional[str]
            ) -> Optional[Union[SimulationResult, MultiCoreResult]]:
        """Return the stored result for ``key``, counting hits/misses.

        ``key=None`` (an uncacheable job) is counted in :attr:`unkeyed`,
        not as a miss — the hit/miss counters describe only lookups the
        store could ever have answered.
        """
        if key is None:
            self.unkeyed += 1
            return None
        encoded = self._mem.get(key)
        if encoded is None:
            location = self._entries.get(key)
            if location is not None:
                try:
                    fault_point("store.read")
                    encoded = self._read_entry(key, location)
                except OSError as error:
                    # Unreadable media degrades to a miss: the engine
                    # re-simulates, which is the only honest answer.
                    print(f"repro.store: read of {key[:12]}… failed "
                          f"({error}); treating as a miss",
                          file=sys.stderr)
                    encoded = None
        if encoded is not None:
            self.hits += 1
            self._mem[key] = encoded
            return deserialize_result(encoded)
        self.misses += 1
        return None

    def _read_entry(self, key: str, location: Tuple[str, int, int]
                    ) -> Optional[Dict[str, Any]]:
        """``pread`` one entry's line at its indexed offset and decode it."""
        prefix, offset, length = location
        entry = self._pread_entry(prefix, offset, length)
        if entry is not None and entry.get("key") == key:
            return entry["result"]
        if prefix == _LEGACY_PREFIX:
            # An unmigrated legacy file on read-only media never changes
            # behind us; a failed read is simply a miss.
            return None
        # Stale offsets (the shard was fscked/compacted behind us): rescan
        # the one shard and retry once.
        path = self._shard_path(prefix)
        if not path.is_file():
            return None
        entries, good_end = _parse_shard(path, path.read_bytes())
        self._adopt(prefix, {"size": good_end, "entries": entries})
        location = self._entries.get(key, ("", -1, 0))
        if location[0] != prefix:
            return None
        entry = self._pread_entry(prefix, location[1], location[2])
        if entry is not None and entry.get("key") == key:
            return entry["result"]
        return None

    def _pread_entry(self, prefix: str, offset: int, length: int
                     ) -> Optional[Dict[str, Any]]:
        try:
            fd = os.open(self._shard_path(prefix), os.O_RDONLY)
        except OSError:
            return None
        try:
            raw = os.pread(fd, length, offset)
        finally:
            os.close(fd)
        try:
            entry = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        return entry if isinstance(entry, dict) else None

    def refresh(self, key: str) -> bool:
        """Re-check the disk for ``key``; ``True`` when it is now present.

        The cross-process read path: a fleet daemon that lost the claim
        race for ``key`` polls this until the owner's append lands.  The
        fast path is a single ``stat`` of the key's shard — only when the
        shard grew (or was rewritten) is it re-parsed, incrementally from
        the indexed offset where possible.  Read or parse failures are
        reported as "not present"; the caller simply polls again.
        """
        if key in self._entries:
            return True
        prefix = shard_for_key(key)
        path = self._shard_path(prefix)
        try:
            size = path.stat().st_size
        except OSError:
            return False
        cached = self._index_meta.get(prefix)
        indexed = prefix not in self._unindexed and isinstance(cached, dict)
        if indexed and cached.get("size") == size:
            return False
        carried: List[List[Any]] = []
        start = 0
        if indexed and 0 < cached.get("size", 0) <= size:
            carried = [list(entry) for entry in cached.get("entries", [])]
            start = cached["size"]
        try:
            data = path.read_bytes()
            try:
                fresh, good_end = _parse_shard(path, data, start)
            except ValueError:
                if start == 0:
                    raise
                carried, start = [], 0
                fresh, good_end = _parse_shard(path, data, 0)
        except (OSError, ValueError):
            return False
        # A full adoption: the scan saw every line in the shard, so the
        # shard can (re)enter the index even if a foreign put() append had
        # previously forced it out (see put()).
        self._adopt(prefix, {"size": max(good_end, start),
                             "entries": carried + fresh})
        self._unindexed.discard(prefix)
        return key in self._entries

    # ------------------------------------------------------------------
    # Cross-daemon claims (fleet work dedup)
    # ------------------------------------------------------------------
    def _claim_path(self, key: str) -> Path:
        return self.claims_dir / f"{key}.json"

    def claim(self, key: str, owner: Optional[str] = None) -> bool:
        """Atomically claim ``key`` for simulation; ``True`` if we won.

        A claim is a ``claims/<key>.json`` record created with
        ``O_CREAT | O_EXCL``, so the filesystem arbitrates concurrent
        claimers.  A loser polls the store (:meth:`refresh`) instead of
        recomputing; the winner must :meth:`release_claim` once the
        result is persisted (or its attempt failed) so losers can take
        over.  Claims are a work-dedup optimisation, never a correctness
        gate: the locked shard appends stay safe without them.
        """
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        record = json.dumps(
            {"key": key, "pid": os.getpid(), "host": _CLAIM_HOST,
             "time": time.time(), "owner": owner or ""},
            sort_keys=True)
        try:
            fd = os.open(self._claim_path(key),
                         os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        try:
            os.write(fd, record.encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def read_claim(self, key: str) -> Optional[Dict[str, Any]]:
        """The claim record for ``key``.

        ``None`` when no claim exists; ``{}`` when a record exists but is
        unreadable (a claimer killed mid-create) — which
        :meth:`claim_is_stale` treats as stale.
        """
        try:
            raw = self._claim_path(key).read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            return {}
        try:
            entry = json.loads(raw)
        except ValueError:
            return {}
        return entry if isinstance(entry, dict) else {}

    def claim_is_stale(self, entry: Dict[str, Any]) -> bool:
        """Whether a claim's owner is presumed dead.

        Same-host owners are probed directly (``kill(pid, 0)``): a dead
        pid is stale immediately, a live one is never stale — a long
        simulation must not be stolen from a healthy daemon.  Foreign
        hosts cannot be probed, so their claims expire after
        :attr:`claim_ttl` seconds.  Malformed records are always stale.
        """
        pid = entry.get("pid")
        created = entry.get("time")
        if not isinstance(pid, int) or isinstance(pid, bool) or \
                not isinstance(created, (int, float)):
            return True
        if entry.get("host") == _CLAIM_HOST:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True
            except OSError:
                # PermissionError and friends: the pid exists but belongs
                # to someone else — alive as far as we can tell.
                return False
            return False
        return (time.time() - created) > self.claim_ttl

    def steal_claim(self, key: str, owner: Optional[str] = None) -> bool:
        """Break a stale claim on ``key``; ``True`` if we now own it.

        Serialized under the store lock so two pollers cannot both break
        the same claim: staleness is re-checked after acquisition and the
        replacement record is created before the lock drops, so the
        second poller sees a fresh claim and keeps waiting.
        """
        with _store_lock(self.lock_path):
            entry = self.read_claim(key)
            if entry is None or not self.claim_is_stale(entry):
                return False
            try:
                os.unlink(self._claim_path(key))
            except OSError:
                pass
            return self.claim(key, owner=owner)

    def release_claim(self, key: str) -> None:
        """Drop the claim on ``key`` (idempotent; never raises)."""
        try:
            os.unlink(self._claim_path(key))
        except OSError:
            pass

    def active_claims(self) -> List[str]:
        """Keys currently claimed — for ``store info`` and diagnostics."""
        if not self.claims_dir.is_dir():
            return []
        return sorted(path.stem for path in self.claims_dir.glob("*.json"))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def put(self, key: str, spec: Dict[str, Any],
            result: Union[SimulationResult, MultiCoreResult]) -> None:
        """Persist one result: a locked single-``write`` shard append."""
        encoded = serialize_result(result)
        line = json.dumps({"key": key, "spec": spec, "result": encoded},
                          sort_keys=True, separators=(",", ":"))
        payload = (line + "\n").encode("utf-8")
        prefix = shard_for_key(key)
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        with _store_lock(self.lock_path):
            offset = _append_payload(self._shard_path(prefix), payload)
        self.puts += 1
        self._entries[key] = (prefix, offset, len(payload))
        self._mem[key] = encoded
        if prefix in self._unindexed:
            return
        meta = self._index_meta.setdefault(
            prefix, {"size": 0, "entries": []})
        if offset != meta["size"]:
            # Another process appended to this shard since we last read
            # it: our entry list has a hole, so indexing it would hide
            # those entries from every later open.  Leave the shard out of
            # the index entirely — the next open full-scans it instead.
            self._index_meta.pop(prefix, None)
            self._unindexed.add(prefix)
            return
        meta["entries"].append([key, offset, len(payload)])
        meta["size"] = offset + len(payload)

    def flush_index(self) -> None:
        """Persist the shard index so the next open is O(changed shards).

        Called by the CLI after a run; a stale (or missing) index is never
        wrong, only slower — shard sizes validate every index entry.
        """
        if not self._index_meta:
            return
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        with _store_lock(self.lock_path):
            _write_index(self.shards_dir, self._index_meta)

    def clear(self) -> None:
        """Delete every persisted shard (and any legacy file) and reset."""
        if self.shards_dir.is_dir():
            with _store_lock(self.lock_path):
                for path in sorted(self.shards_dir.glob("*.jsonl")):
                    path.unlink()
                index = self.shards_dir / INDEX_FILENAME
                if index.is_file():
                    index.unlink()
                # The lock file goes last, while its flock is still held:
                # a concurrent writer keeps excluding against this inode
                # until the deliberate clean is complete.
                if self.lock_path.is_file():
                    os.unlink(self.lock_path)
            try:
                self.shards_dir.rmdir()
            except OSError:  # pragma: no cover - foreign files left behind
                pass
        if self.claims_dir.is_dir():
            for path in self.claims_dir.glob("*.json"):
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing release
                    pass
            try:
                self.claims_dir.rmdir()
            except OSError:  # pragma: no cover - foreign files left behind
                pass
        backup = self.legacy_path.with_name(
            self.legacy_path.name + ".migrated")
        for path in (self.legacy_path, backup):
            if path.is_file():
                path.unlink()
        self._entries.clear()
        self._mem.clear()
        self._index_meta.clear()
        self._unindexed.clear()
        self.hits = 0
        self.misses = 0
        self.unkeyed = 0
        self.puts = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def fsck(self) -> Dict[str, int]:
        """Salvage the on-disk store in place, then reload this view.

        See :func:`fsck_store` (which also works when the store is too
        corrupt for ``__init__`` to load).
        """
        report = fsck_store(self.root)
        self._entries.clear()
        self._mem.clear()
        self._index_meta.clear()
        self._unindexed.clear()
        self._load()
        return report

    def compact(self) -> Dict[str, int]:
        """Drop superseded lines: keep only each key's newest entry.

        Shards are rewritten atomically under the store lock, preserving
        the file order of the surviving lines, so compaction is
        idempotent — a second run changes nothing.
        """
        report = {"entries": 0, "removed_lines": 0, "rewritten_shards": 0}
        if not self.shards_dir.is_dir():
            return report
        # Built locally and adopted only on success: a corrupt shard's
        # ValueError must leave this instance's view intact.
        new_entries: Dict[str, Tuple[str, int, int]] = {}
        new_meta: Dict[str, Dict[str, Any]] = {}
        with _store_lock(self.lock_path):
            for path in sorted(self.shards_dir.glob("*.jsonl")):
                prefix = path.stem
                data = path.read_bytes()
                parsed, _ = _parse_shard(path, data)
                newest = {key: position
                          for position, (key, _, _) in enumerate(parsed)}
                kept = [(key, data[offset:offset + length])
                        for position, (key, offset, length)
                        in enumerate(parsed) if newest[key] == position]
                rewritten, meta = _rebuild_shard(path, kept, data)
                if rewritten:
                    report["rewritten_shards"] += 1
                    report["removed_lines"] += len(parsed) - len(kept)
                for key, offset, length in meta["entries"]:
                    new_entries[key] = (prefix, offset, length)
                new_meta[prefix] = meta
                report["entries"] += len(kept)
            _write_index(self.shards_dir, new_meta)
        self._entries = new_entries
        self._index_meta = new_meta
        self._unindexed = set()
        return report


def fsck_store(root: Union[str, Path]) -> Dict[str, int]:
    """Salvage a store directory in place (file-system level, lock held).

    Usable even when the store is too corrupt for :class:`ResultStore` to
    open: every shard (and any legacy ``store.jsonl``) is scanned
    tolerantly, good entries are kept — relocated to their correct shard
    if misplaced, newline-terminated if a crash left a readable but
    unterminated tail — and torn/corrupt/foreign lines are dropped.
    Touched shards are rewritten atomically; clean shards keep their exact
    bytes.  The index is rebuilt from scratch.
    """
    root = Path(root)
    shards_dir = root / SHARDS_DIRNAME
    legacy = root / ResultStore.STORE_FILENAME
    report = {"kept": 0, "migrated": 0, "moved": 0, "torn": 0,
              "corrupt": 0, "foreign": 0, "rewritten_shards": 0}
    if not shards_dir.is_dir() and not legacy.is_file():
        return report

    def salvage(data: bytes) -> Iterator[Tuple[str, bytes]]:
        for kind, offset, length, entry in _classify_lines(
                data, salvage_unterminated=True):
            if kind != "good":
                report[kind] += 1
                continue
            line = data[offset:offset + length]
            if not line.endswith(b"\n"):
                line += b"\n"
            yield entry["key"], line

    shards_dir.mkdir(parents=True, exist_ok=True)
    with _store_lock(shards_dir / LOCK_FILENAME):
        # Entries that must move: salvaged legacy lines and misplaced keys.
        incoming: Dict[str, List[Tuple[str, bytes, str]]] = {}
        if legacy.is_file():
            for key, line in salvage(legacy.read_bytes()):
                incoming.setdefault(shard_for_key(key), []).append(
                    (key, line, "migrated"))
            os.replace(legacy, legacy.with_name(legacy.name + ".migrated"))
        contents: Dict[str, List[Tuple[str, bytes]]] = {}
        originals: Dict[str, bytes] = {}
        for path in sorted(shards_dir.glob("*.jsonl")):
            prefix = path.stem
            data = path.read_bytes()
            originals[prefix] = data
            kept: List[Tuple[str, bytes]] = []
            for key, line in salvage(data):
                target = shard_for_key(key)
                if target != prefix:
                    incoming.setdefault(target, []).append(
                        (key, line, "moved"))
                else:
                    kept.append((key, line))
                    report["kept"] += 1
            contents[prefix] = kept
        for prefix, items in incoming.items():
            kept = contents.setdefault(prefix, [])
            present = {key for key, _ in kept}
            # Within the incoming lines the last occurrence supersedes
            # earlier ones (file order == put order)...
            chosen: Dict[str, Tuple[bytes, str]] = {}
            for key, line, category in items:
                chosen[key] = (line, category)
            for key, (line, category) in chosen.items():
                # ...but an entry already in its home shard wins outright:
                # shard entries postdate the legacy layout, and a
                # previously interrupted migration already appended these
                # exact lines (see _existing_keys).
                if key in present:
                    continue
                kept.append((key, line))
                present.add(key)
                report[category] += 1
        index_meta: Dict[str, Dict[str, Any]] = {}
        for prefix in sorted(contents):
            rewritten, meta = _rebuild_shard(
                shards_dir / f"{prefix}.jsonl", contents[prefix],
                originals.get(prefix))
            if rewritten:
                report["rewritten_shards"] += 1
            index_meta[prefix] = meta
        _write_index(shards_dir, index_meta)
    return report


#: Process-wide cache of environment-default stores, keyed by resolved
#: path: drivers construct one SimulationEngine per comparison, and each
#: engine must not re-read the whole store file.
_DEFAULT_STORES: Dict[str, ResultStore] = {}


def default_store() -> Optional[ResultStore]:
    """The store named by ``REPRO_STORE``, or ``None`` when unset/empty.

    This is the opt-in hook the drivers and benchmark fixtures read
    through: exporting ``REPRO_STORE=results`` makes every
    :class:`~repro.sim.engine.SimulationEngine` (and therefore
    ``run_predictor_comparison`` / ``run_mix_comparison`` and the figure
    benchmarks) serve repeated grids from disk instead of recomputing.

    The returned store is memoized per resolved path, so the many engines
    one benchmark session constructs share a single loaded index instead
    of re-parsing ``store.jsonl`` each time.
    """
    return open_store(None)


def open_store(root: Union[None, str, Path] = None) -> Optional[ResultStore]:
    """Open (or reuse) the results store at ``root``.

    ``None``/empty consults ``REPRO_STORE`` and returns ``None`` when that
    is unset too.  Stores are memoized per resolved path — repeated opens
    (one per engine, one per figure benchmark) share a single loaded index
    instead of re-parsing ``store.jsonl`` each time.  This is the blessed
    public entry point re-exported by :mod:`repro.api`.
    """
    if root is None or not str(root).strip():
        root = os.environ.get(REPRO_STORE_ENV, "").strip()
        if not root:
            return None
    resolved = str(Path(root).resolve())
    store = _DEFAULT_STORES.get(resolved)
    if store is None:
        store = ResultStore(root)
        _DEFAULT_STORES[resolved] = store
    return store
