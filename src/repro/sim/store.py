"""Content-addressed experiment results store.

Every figure in the paper is a grid of deterministic simulations, so a
(workload spec, system config, predictor, seed, access counts) tuple fully
determines its :class:`~repro.sim.system.SimulationResult`.  This module
turns that determinism into persistence:

* :func:`job_spec` — a canonical, JSON-able description of one engine job
  (:class:`~repro.sim.engine.SimulationJob` or
  :class:`~repro.sim.engine.MixJob`), including the fully resolved system
  configuration and, for mixes, the resolved per-core application list;
* :func:`job_key` — the SHA-256 of that canonical description.  Keys are
  stable across processes and interpreter runs (no ``hash()``, no ``id()``),
  so a store written by one run is readable by every later one;
* :func:`serialize_result` / :func:`deserialize_result` — exact round-trip
  encoding of simulation results (JSON ``repr`` round-trips floats
  bit-for-bit, so a deserialized result compares equal to the original);
* :class:`ResultStore` — JSON-lines persistence (``<root>/store.jsonl``)
  with an in-memory index, append-on-put writes and hit/miss counters.

Jobs whose workload cannot be fingerprinted deterministically (an ad-hoc
:class:`~repro.workloads.base.Workload` carrying state the canonicalizer
does not understand) raise :class:`UncacheableJobError`; the engine runs
such jobs directly, bypassing the store.

The engine consults a store when given one explicitly or when the
``REPRO_STORE`` environment variable names a store directory (see
:func:`default_store`); ``python -m repro`` defaults to ``results/``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core.base import PredictionOutcome, PredictorStats
from ..core.recovery import RecoverySummary
from ..cpu.ooo_core import ExecutionResult
from ..memory.block import Level
from ..memory.hierarchy import HierarchyStats
from ..workloads.base import Workload
from ..workloads.mixes import get_mix
from .config import SystemConfig
from .multicore import MultiCoreResult
from .system import SimulationResult

#: Environment variable naming the default store directory ("" disables).
REPRO_STORE_ENV = "REPRO_STORE"

#: Environment variable naming the on-disk trace-cache directory.  Unset
#: falls back to ``<$REPRO_STORE>/traces`` when a store is named; an empty
#: value disables trace spilling entirely.
REPRO_TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Bumped whenever the canonical job spec or result encoding changes shape;
#: part of every job key, so incompatible stores never serve stale results.
STORE_SCHEMA = "repro-store/1"

#: Bumped whenever trace generation semantics or the buffer layout change;
#: part of every trace key, so stale on-disk traces are never replayed.
TRACE_SCHEMA = "repro-trace/1"


class UncacheableJobError(ValueError):
    """The job's workload cannot be fingerprinted deterministically."""


# ======================================================================
# Canonical job specs and keys
# ======================================================================
def _canonical(value: Any) -> Any:
    """Reduce a config/workload value to deterministic JSON-able data.

    Handles the types the configuration tree is built from: primitives,
    enums, dataclasses, lists/tuples and string-keyed dicts.  Anything else
    raises :class:`UncacheableJobError` — silently guessing would risk two
    different experiments sharing one key.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, Workload):
        return {
            "__workload__": type(value).__name__,
            "state": {name: _canonical(attr)
                      for name, attr in sorted(vars(value).items())},
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {f.name: _canonical(getattr(value, f.name))
                       for f in dataclasses.fields(value)},
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        if not all(isinstance(key, str) for key in value):
            raise UncacheableJobError(
                f"cannot fingerprint dict with non-string keys: {value!r}")
        return {key: _canonical(value[key]) for key in sorted(value)}
    raise UncacheableJobError(
        f"cannot fingerprint {type(value).__name__!r} value {value!r}")


#: Memoized name-spec fingerprints: the suite registry is immutable within
#: a process, and grids fingerprint the same ~21 applications per job.
_NAME_FINGERPRINTS: Dict[str, Any] = {}


def _workload_fingerprint(workload: Union[str, Workload]) -> Any:
    """Hash a workload spec by the full state of its trace generator.

    Name specs are resolved through the suite registry first, so
    ``"gapbs.pr"`` and ``build_workload("gapbs.pr")`` address the same
    store entry — and retuning an application's registry parameters
    automatically invalidates its cached results.
    """
    if isinstance(workload, str):
        fingerprint = _NAME_FINGERPRINTS.get(workload)
        if fingerprint is None:
            from ..workloads.suite import build_workload
            fingerprint = _canonical(build_workload(workload))
            _NAME_FINGERPRINTS[workload] = fingerprint
        return fingerprint
    return _canonical(workload)


def job_spec(job: Any) -> Dict[str, Any]:
    """The canonical description of one engine job.

    The spec captures everything :func:`repro.sim.engine.execute_job` reads:
    the workload (or resolved mix composition), the predictor, the access
    counts, the seed and the fully resolved system configuration —
    ``config=None`` resolves to the same paper default the executor uses, so
    it hashes identically to an explicitly passed default.
    """
    # Imported here to avoid a cycle (engine imports this module's store).
    from .engine import MixJob, SimulationJob

    if isinstance(job, SimulationJob):
        config = job.config or SystemConfig.paper_single_core()
        return {
            "schema": STORE_SCHEMA,
            "kind": "single",
            "workload": _workload_fingerprint(job.workload),
            "predictor": job.predictor,
            "num_accesses": job.num_accesses,
            "warmup_accesses": job.warmup_accesses,
            "seed": job.seed,
            "config": _canonical(config),
        }
    if isinstance(job, MixJob):
        config = job.config or SystemConfig.paper_multi_core()
        mix = get_mix(job.mix)
        return {
            "schema": STORE_SCHEMA,
            "kind": "mix",
            "mix": job.mix,
            # Full per-core generator state, not just names: retuning a
            # registry application must invalidate the mixes containing it
            # exactly like it invalidates its single-core cells.
            "applications": [_workload_fingerprint(app)
                             for app in mix.applications],
            "multithreaded": mix.multithreaded,
            "predictor": job.predictor,
            "accesses_per_core": job.accesses_per_core,
            "seed": job.seed,
            "config": _canonical(config),
        }
    raise UncacheableJobError(f"unknown job type {type(job).__name__!r}")


def spec_key(spec: Dict[str, Any]) -> str:
    """SHA-256 of an already-built canonical spec (hex)."""
    payload = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def job_key(job: Any) -> str:
    """SHA-256 of the canonical job spec (hex, stable across processes)."""
    return spec_key(job_spec(job))


def try_job_key(job: Any) -> Optional[str]:
    """:func:`job_key`, or ``None`` for jobs the store cannot address."""
    try:
        return job_key(job)
    except UncacheableJobError:
        return None


def trace_spec(workload: Union[str, Workload], num_accesses: int,
               seed: int = 0, base_address: int = 0,
               thread_id: int = 0) -> Dict[str, Any]:
    """Canonical description of one generated trace.

    Mirrors :func:`job_spec` for the trace cache: the key covers the full
    resolved generator state plus every generation parameter, so retuning a
    registry application invalidates its spilled traces exactly like it
    invalidates its stored results.
    """
    return {
        "schema": TRACE_SCHEMA,
        "workload": _workload_fingerprint(workload),
        "num_accesses": num_accesses,
        "seed": seed,
        "base_address": base_address,
        "thread_id": thread_id,
    }


def trace_key(workload: Union[str, Workload], num_accesses: int,
              seed: int = 0, base_address: int = 0,
              thread_id: int = 0) -> str:
    """SHA-256 key of one trace (stable across processes and runs)."""
    return spec_key(trace_spec(workload, num_accesses, seed=seed,
                               base_address=base_address,
                               thread_id=thread_id))


def try_trace_key(workload: Union[str, Workload], num_accesses: int,
                  seed: int = 0, base_address: int = 0,
                  thread_id: int = 0) -> Optional[str]:
    """:func:`trace_key`, or ``None`` for unfingerprintable workloads."""
    try:
        return trace_key(workload, num_accesses, seed=seed,
                         base_address=base_address, thread_id=thread_id)
    except UncacheableJobError:
        return None


# ======================================================================
# Result serialization (exact round-trip)
# ======================================================================
def _execution_to_dict(execution: ExecutionResult) -> Dict[str, Any]:
    return {
        "cycles": execution.cycles,
        "instructions": execution.instructions,
        "memory_accesses": execution.memory_accesses,
        "stall_cycles": execution.stall_cycles,
    }


def _execution_from_dict(data: Dict[str, Any]) -> ExecutionResult:
    return ExecutionResult(**data)


def _hierarchy_stats_to_dict(stats: HierarchyStats) -> Dict[str, Any]:
    return {f.name: getattr(stats, f.name)
            for f in dataclasses.fields(HierarchyStats)}


def _predictor_stats_to_dict(stats: PredictorStats) -> Dict[str, Any]:
    return {
        "predictions": stats.predictions,
        "outcomes": {outcome.name: count
                     for outcome, count in stats.outcomes.items()},
        "multi_way_predictions": stats.multi_way_predictions,
        "pld_predictions": stats.pld_predictions,
        "pld_mispredictions": stats.pld_mispredictions,
        "metadata_hits": stats.metadata_hits,
        "metadata_misses": stats.metadata_misses,
        "level_histogram": {
            "+".join(level.name for level in levels): count
            for levels, count in stats.level_histogram.items()
        },
        "updates": stats.updates,
    }


def _predictor_stats_from_dict(data: Dict[str, Any]) -> PredictorStats:
    stats = PredictorStats()
    stats.predictions = data["predictions"]
    stats.outcomes = {outcome: data["outcomes"].get(outcome.name, 0)
                      for outcome in PredictionOutcome}
    stats.multi_way_predictions = data["multi_way_predictions"]
    stats.pld_predictions = data["pld_predictions"]
    stats.pld_mispredictions = data["pld_mispredictions"]
    stats.metadata_hits = data["metadata_hits"]
    stats.metadata_misses = data["metadata_misses"]
    stats.level_histogram = {
        tuple(Level[name] for name in key.split("+")): count
        for key, count in data["level_histogram"].items()
    }
    stats.updates = data["updates"]
    return stats


def _recovery_to_dict(recovery: RecoverySummary) -> Dict[str, Any]:
    return {f.name: getattr(recovery, f.name)
            for f in dataclasses.fields(RecoverySummary)}


def serialize_result(result: Union[SimulationResult, MultiCoreResult]
                     ) -> Dict[str, Any]:
    """Encode a simulation result as JSON-able data.

    The encoding is exact: floats survive JSON unchanged (shortest-repr
    round-trip), so ``deserialize_result(serialize_result(r)) == r``.
    """
    if isinstance(result, SimulationResult):
        return {
            "kind": "single",
            "workload": result.workload,
            "system": result.system,
            "predictor": result.predictor,
            "execution": _execution_to_dict(result.execution),
            "hierarchy_stats": _hierarchy_stats_to_dict(
                result.hierarchy_stats),
            "predictor_stats": _predictor_stats_to_dict(
                result.predictor_stats),
            "energy_breakdown": dict(result.energy_breakdown),
            "cache_hierarchy_energy_nj": result.cache_hierarchy_energy_nj,
            "recovery": _recovery_to_dict(result.recovery),
            "metadata_miss_ratio": result.metadata_miss_ratio,
            "pld_misprediction_ratio": result.pld_misprediction_ratio,
        }
    if isinstance(result, MultiCoreResult):
        return {
            "kind": "mix",
            "mix": result.mix,
            "predictor": result.predictor,
            "per_core_execution": [_execution_to_dict(execution)
                                   for execution in result.per_core_execution],
            "per_core_workloads": list(result.per_core_workloads),
            "accuracy_breakdown": dict(result.accuracy_breakdown),
            "cache_hierarchy_energy_nj": result.cache_hierarchy_energy_nj,
            "total_predictions": result.total_predictions,
            "total_recoveries": result.total_recoveries,
        }
    raise TypeError(f"cannot serialize {type(result).__name__!r}")


def deserialize_result(data: Dict[str, Any]
                       ) -> Union[SimulationResult, MultiCoreResult]:
    """Rebuild the result object encoded by :func:`serialize_result`."""
    kind = data["kind"]
    if kind == "single":
        return SimulationResult(
            workload=data["workload"],
            system=data["system"],
            predictor=data["predictor"],
            execution=_execution_from_dict(data["execution"]),
            hierarchy_stats=HierarchyStats(**data["hierarchy_stats"]),
            predictor_stats=_predictor_stats_from_dict(
                data["predictor_stats"]),
            energy_breakdown=dict(data["energy_breakdown"]),
            cache_hierarchy_energy_nj=data["cache_hierarchy_energy_nj"],
            recovery=RecoverySummary(**data["recovery"]),
            metadata_miss_ratio=data["metadata_miss_ratio"],
            pld_misprediction_ratio=data["pld_misprediction_ratio"],
        )
    if kind == "mix":
        return MultiCoreResult(
            mix=data["mix"],
            predictor=data["predictor"],
            per_core_execution=[_execution_from_dict(execution)
                                for execution in data["per_core_execution"]],
            per_core_workloads=list(data["per_core_workloads"]),
            accuracy_breakdown=dict(data["accuracy_breakdown"]),
            cache_hierarchy_energy_nj=data["cache_hierarchy_energy_nj"],
            total_predictions=data["total_predictions"],
            total_recoveries=data["total_recoveries"],
        )
    raise ValueError(f"unknown result kind {kind!r}")


# ======================================================================
# The store
# ======================================================================
class ResultStore:
    """JSON-lines results store under one directory.

    Layout::

        <root>/store.jsonl   one {"key", "spec", "result"} object per line
        <root>/stats/        per-experiment metric summaries (CLI-written)

    Entries are appended in job order, so two runs over the same job list
    produce byte-identical store files regardless of worker parallelism —
    the property the CI determinism job checks.  Re-putting a key appends a
    new line; the newest line wins on reload (how ``--force`` refreshes
    results without rewriting history).
    """

    STORE_FILENAME = "store.jsonl"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.path = self.root / self.STORE_FILENAME
        self._index: Dict[str, Dict[str, Any]] = {}
        # Good prefix to rewrite before the next append when the file ends
        # in a torn partial line (run killed mid-append).  Repairing lazily
        # keeps reads (status, --check) strictly read-only.
        self._pending_repair: Optional[str] = None
        self.hits = 0
        self.misses = 0
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not self.path.is_file():
            return
        lines = self.path.read_text(encoding="utf-8").split("\n")
        for line_number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                entry = json.loads(stripped)
            except json.JSONDecodeError as exc:
                if all(not rest.strip() for rest in lines[line_number:]):
                    # A partial trailing line is what a run killed
                    # mid-append leaves behind; ignore it (losing only the
                    # interrupted job) and repair the file on next write.
                    print(f"repro.store: ignoring partial trailing line "
                          f"{line_number} of {self.path} (interrupted "
                          f"write; repaired on next write)",
                          file=sys.stderr)
                    good = "\n".join(lines[:line_number - 1])
                    self._pending_repair = good + ("\n" if good else "")
                    return
                raise ValueError(
                    f"{self.path}:{line_number}: corrupt store line "
                    f"({exc})") from exc
            self._index[entry["key"]] = entry["result"]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: Optional[str]) -> bool:
        return key is not None and key in self._index

    def get(self, key: Optional[str]
            ) -> Optional[Union[SimulationResult, MultiCoreResult]]:
        """Return the stored result for ``key``, counting hits/misses."""
        if key is not None:
            encoded = self._index.get(key)
            if encoded is not None:
                self.hits += 1
                return deserialize_result(encoded)
        self.misses += 1
        return None

    def put(self, key: str, spec: Dict[str, Any],
            result: Union[SimulationResult, MultiCoreResult]) -> None:
        """Persist one result, appending to the JSON-lines file."""
        encoded = serialize_result(result)
        line = json.dumps({"key": key, "spec": spec, "result": encoded},
                          sort_keys=True, separators=(",", ":"))
        self.root.mkdir(parents=True, exist_ok=True)
        if self._pending_repair is not None:
            # Drop the torn trailing line left by an interrupted run
            # before appending, so the new entry starts on a clean line.
            self.path.write_text(self._pending_repair, encoding="utf-8")
            self._pending_repair = None
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        self._index[key] = encoded

    def keys(self) -> List[str]:
        return list(self._index)

    def clear(self) -> None:
        """Delete the persisted store file and reset in-memory state."""
        if self.path.is_file():
            self.path.unlink()
        self._index.clear()
        self._pending_repair = None
        self.hits = 0
        self.misses = 0


#: Process-wide cache of environment-default stores, keyed by resolved
#: path: drivers construct one SimulationEngine per comparison, and each
#: engine must not re-read the whole store file.
_DEFAULT_STORES: Dict[str, ResultStore] = {}


def default_store() -> Optional[ResultStore]:
    """The store named by ``REPRO_STORE``, or ``None`` when unset/empty.

    This is the opt-in hook the drivers and benchmark fixtures read
    through: exporting ``REPRO_STORE=results`` makes every
    :class:`~repro.sim.engine.SimulationEngine` (and therefore
    ``run_predictor_comparison`` / ``run_mix_comparison`` and the figure
    benchmarks) serve repeated grids from disk instead of recomputing.

    The returned store is memoized per resolved path, so the many engines
    one benchmark session constructs share a single loaded index instead
    of re-parsing ``store.jsonl`` each time.
    """
    root = os.environ.get(REPRO_STORE_ENV, "").strip()
    if not root:
        return None
    resolved = str(Path(root).resolve())
    store = _DEFAULT_STORES.get(resolved)
    if store is None:
        store = ResultStore(root)
        _DEFAULT_STORES[resolved] = store
    return store
