"""Batched, parallel simulation engine.

Every figure in the paper is a grid of *independent* (workload, predictor,
config, seed) simulations, so throughput — not single-run latency — is what
limits how much of the design space the reproduction can cover.  This module
provides the shared substrate the drivers and benchmarks run on:

* :class:`SimulationJob` / :class:`MixJob` — picklable descriptions of one
  single-core or one multi-core simulation;
* :func:`expand_grid` — expand (workloads x predictors x seeds) into a job
  list;
* :class:`TraceCache` — a process-local LRU cache of generated workload
  traces, so a six-system comparison generates each (workload, seed, length)
  trace **once** instead of once per system;
* :class:`SimulationEngine` — runs a job list either serially (the
  deterministic fallback) or fanned out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`.

Parallelism
===========

The worker count comes from, in order: the ``jobs=`` constructor argument,
the ``REPRO_JOBS`` environment variable, and finally 1 (serial).  Results are
returned in job order regardless of completion order, and every job builds
its own fresh system state, so **serial and parallel execution produce
bit-identical results**: workload traces are derived deterministically from
(workload name, seed) — see :meth:`repro.workloads.base.Workload.generate` —
and no mutable state is shared between jobs.

Example::

    engine = SimulationEngine()          # REPRO_JOBS env knob, default serial
    jobs = expand_grid(HIGHLIGHTED_APPLICATIONS, PREDICTOR_NAMES,
                       num_accesses=10_000, warmup_accesses=2_000)
    results = engine.run(jobs)           # List[SimulationResult], job order

Trace cache
===========

:data:`TRACE_CACHE` is the module-level cache used by the drivers.  Traces
are held as columnar :class:`~repro.trace.TraceBuffer` objects — an order of
magnitude smaller than the legacy record lists, sliced zero-copy by the
warm-up/measure split, and cheap to ship across process boundaries.
Workloads named by their suite application name (``"gapbs.bfs"``) are cached
under that name, so any caller asking for the same (name, accesses, seed,
base address, thread) tuple receives the *identical* buffer.  Workload
objects are cached by object identity (the cache keeps the object alive
while its traces are cached), which makes the cache safe for ad-hoc
workloads whose parameters are not captured by their name.

On top of the in-memory LRU the cache maintains an on-disk ``.npz`` spill
directory (``<store>/traces/`` by convention) keyed exactly like the results
store — the SHA-256 of the fully resolved generator state plus the
generation parameters (:func:`repro.sim.store.trace_key`).  A trace is
generated at most once per *machine*: the first worker process to need it
spills it atomically, every later process (or run) loads the packed columns
straight from disk.  The directory comes from the ``REPRO_TRACE_DIR``
environment variable, falling back to ``$REPRO_STORE/traces`` when a store
is named; an empty ``REPRO_TRACE_DIR`` disables spilling.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import zipfile
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..faults import fault_point
from ..trace import TraceBuffer, plan_shards
from ..workloads.base import Workload
from ..workloads.mixes import get_mix, mix_core_plan
from ..workloads.suite import build_workload
from .config import SystemConfig
from .options import EngineOptions
from .store import (
    REPRO_STORE_ENV,
    REPRO_TRACE_DIR_ENV,
    ResultStore,
    UncacheableJobError,
    job_spec,
    open_store,
    spec_key,
    try_trace_key,
)

WorkloadSpec = Union[str, Workload]

#: Sentinel: resolve the spill directory from the environment at use time.
_SPILL_AUTO = "auto"


# ======================================================================
# Trace cache
# ======================================================================
class TraceCache:
    """Process-local LRU cache of generated traces, with an on-disk spill.

    In-memory keys are (workload identity, num_accesses, seed, base_address,
    thread_id).  Suite applications passed by name share one identity per
    name; :class:`~repro.workloads.base.Workload` objects are keyed by
    ``id()`` and kept referenced by the cache entry, so an identity is never
    reused while its traces are cached.

    Repeated lookups return the **same**
    :class:`~repro.trace.TraceBuffer` object — callers must treat cached
    buffers as immutable.

    Args:
        max_traces: In-memory LRU capacity.
        spill_dir: On-disk ``.npz`` cache directory.  The default (the
            string ``"auto"``) resolves it from the environment on every
            miss — ``REPRO_TRACE_DIR`` if set (empty disables), else
            ``$REPRO_STORE/traces`` when a store is named, else no spill.
            Pass a path to pin it, or ``None``/``False`` to disable.
    """

    def __init__(self, max_traces: int = 128,
                 spill_dir: Union[str, Path, None, bool] = _SPILL_AUTO
                 ) -> None:
        if max_traces <= 0:
            raise ValueError("max_traces must be positive")
        self.max_traces = max_traces
        self.spill_dir = spill_dir
        # key -> (workload-or-None, buffer); OrderedDict gives LRU order.
        self._traces: "OrderedDict[Tuple, Tuple[Optional[Workload], TraceBuffer]]" = OrderedDict()
        self._named_workloads: Dict[str, Workload] = {}
        # The daemon's worker threads share one process-global cache, so
        # the LRU bookkeeping (move_to_end/popitem) and the counters must
        # be guarded; generation itself happens outside the lock.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_spills = 0

    # ------------------------------------------------------------------
    def resolve(self, workload: WorkloadSpec) -> Workload:
        """Return the Workload object for a spec (name or instance)."""
        if isinstance(workload, str):
            with self._lock:
                resolved = self._named_workloads.get(workload)
                if resolved is None:
                    resolved = build_workload(workload)
                    self._named_workloads[workload] = resolved
            return resolved
        return workload

    def _key(self, workload: WorkloadSpec, num_accesses: int, seed: int,
             base_address: int, thread_id: int) -> Tuple:
        if isinstance(workload, str):
            identity: Tuple = ("app", workload)
        else:
            identity = ("obj", id(workload))
        return identity + (num_accesses, seed, base_address, thread_id)

    def _resolved_spill_dir(self) -> Optional[Path]:
        """The effective on-disk cache directory (or None)."""
        spill = self.spill_dir
        if spill == _SPILL_AUTO:
            env = os.environ.get(REPRO_TRACE_DIR_ENV)
            if env is not None:
                env = env.strip()
                return Path(env) if env else None
            store_root = os.environ.get(REPRO_STORE_ENV, "").strip()
            return Path(store_root) / "traces" if store_root else None
        if not spill:
            return None
        return Path(spill)

    def get(self, workload: WorkloadSpec, num_accesses: int, seed: int = 0,
            base_address: int = 0, thread_id: int = 0) -> TraceBuffer:
        """Return the (cached) trace buffer for the generation parameters.

        Lookup order: in-memory LRU, then the on-disk ``.npz`` spill (keyed
        like the results store), then generation — which also spills the
        fresh buffer so no other process ever regenerates it.
        """
        key = self._key(workload, num_accesses, seed, base_address, thread_id)
        with self._lock:
            entry = self._traces.get(key)
            if entry is not None:
                self.hits += 1
                self._traces.move_to_end(key)
                return entry[1]
            self.misses += 1
        resolved = self.resolve(workload)
        buffer = None
        spill_path = None
        spill_dir = self._resolved_spill_dir()
        if spill_dir is not None:
            disk_key = try_trace_key(workload, num_accesses, seed=seed,
                                     base_address=base_address,
                                     thread_id=thread_id)
            if disk_key is not None:
                spill_path = spill_dir / f"{disk_key}.npz"
                if spill_path.is_file():
                    try:
                        buffer = TraceBuffer.load(spill_path)
                        with self._lock:
                            self.disk_hits += 1
                        spill_path = None  # already on disk
                    except (OSError, ValueError, KeyError, EOFError,
                            zipfile.BadZipFile) as exc:
                        # A stale/corrupt spill is regenerated, not fatal.
                        # Truncated files raise BadZipFile, foreign .npz
                        # archives KeyError, torn writes EOFError/OSError.
                        print(f"repro.engine: ignoring unreadable trace "
                              f"spill {spill_path} ({exc})", file=sys.stderr)
                        buffer = None
        if buffer is None:
            buffer = resolved.generate_buffer(num_accesses, seed=seed,
                                              base_address=base_address,
                                              thread_id=thread_id)
            if spill_path is not None:
                try:
                    buffer.save(spill_path)
                    with self._lock:
                        self.disk_spills += 1
                except OSError as exc:  # pragma: no cover - disk-full etc.
                    print(f"repro.engine: could not spill trace to "
                          f"{spill_path} ({exc})", file=sys.stderr)
        with self._lock:
            # Another thread may have cached the same key while this one
            # generated/loaded: keep the first buffer, so every caller of a
            # key receives the identical (immutable) object.
            entry = self._traces.get(key)
            if entry is not None:
                self._traces.move_to_end(key)
                return entry[1]
            # Keep the workload object referenced so an id()-based key can
            # never be recycled while its trace is cached.
            self._traces[key] = (
                None if isinstance(workload, str) else resolved, buffer)
            if len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)
        return buffer

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._named_workloads.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0
            self.disk_spills = 0


#: The module-level cache shared by the drivers (one per worker process).
TRACE_CACHE = TraceCache()


# ======================================================================
# Jobs
# ======================================================================
@dataclass(frozen=True)
class SimulationJob:
    """One single-core simulation: a workload on one system configuration.

    ``workload`` may be a suite application name (preferred: cheap to pickle
    and cacheable across jobs) or a Workload object.
    """

    workload: WorkloadSpec
    predictor: str
    num_accesses: int
    warmup_accesses: int = 0
    seed: int = 0
    config: Optional[SystemConfig] = None


@dataclass(frozen=True)
class MixJob:
    """One multi-core simulation: a Table II mix under one predictor."""

    mix: str
    predictor: str
    accesses_per_core: int
    seed: int = 0
    config: Optional[SystemConfig] = None


Job = Union[SimulationJob, MixJob]


def apply_hierarchy(jobs: Sequence[Job], spec, name: str) -> List[Job]:
    """Rewrite every job's system config to run on ``spec``.

    ``spec`` is a :class:`~repro.memory.spec.HierarchySpec`; ``name``
    becomes the rewritten configs' system name (the CLI passes the spec
    file's stem) so stored results and reports say which hierarchy they
    ran on.  Jobs that carried no explicit config get the paper default
    for their kind first, mirroring :func:`execute_job`'s own fallback —
    the substitution must not change anything *except* the hierarchy.
    """
    import dataclasses

    rewritten: List[Job] = []
    for job in jobs:
        if job.config is not None:
            base = job.config
        elif isinstance(job, MixJob):
            base = SystemConfig.paper_multi_core()
        else:
            base = SystemConfig.paper_single_core()
        config = dataclasses.replace(base, name=name, hierarchy=spec)
        rewritten.append(dataclasses.replace(job, config=config))
    return rewritten


def expand_grid(workloads: Sequence[WorkloadSpec],
                predictors: Sequence[str],
                num_accesses: int,
                warmup_accesses: int = 0,
                seeds: Sequence[int] = (0,),
                config: Optional[SystemConfig] = None) -> List[SimulationJob]:
    """Expand (workloads x predictors x seeds) into a flat job list.

    Jobs are ordered workload-major, then seed, then predictor, which keeps
    all systems of one comparison adjacent (maximising trace-cache locality
    inside each worker process).
    """
    return [
        SimulationJob(workload=workload, predictor=predictor,
                      num_accesses=num_accesses,
                      warmup_accesses=warmup_accesses, seed=seed,
                      config=config)
        for workload in workloads
        for seed in seeds
        for predictor in predictors
    ]


# ======================================================================
# Job execution (module-level so ProcessPoolExecutor can pickle it)
# ======================================================================
def mix_traces(mix_name: str, accesses_per_core: int, seed: int = 0,
               trace_cache: Optional[TraceCache] = None
               ) -> Tuple[List[TraceBuffer], List[str]]:
    """Per-core trace buffers (and workload names) for a Table II mix.

    Mirrors :func:`repro.workloads.mixes.generate_mix_traces` exactly
    (identical access streams), but serves each per-core trace as a
    columnar buffer through the trace cache.
    """
    # Explicit None check: an empty TraceCache has len() == 0 and is falsy.
    cache = TRACE_CACHE if trace_cache is None else trace_cache
    mix = get_mix(mix_name)
    traces: List[TraceBuffer] = []
    for core, app_name, base, core_seed in mix_core_plan(mix, seed):
        traces.append(cache.get(app_name, accesses_per_core, seed=core_seed,
                                base_address=base, thread_id=core))
    return traces, list(mix.applications)


def execute_job(job: Job, trace_cache: Optional[TraceCache] = None,
                kernel: Optional[str] = None, shards: int = 1):
    """Run one job to completion in the current process.

    This is the single entry point used by both the serial fallback and the
    pool workers; it builds a fresh system, pulls the trace(s) through
    ``trace_cache`` (the process-local :data:`TRACE_CACHE` by default), and
    returns the picklable result.  ``kernel`` selects the trace-execution
    kernel for single-core replay (see :mod:`repro.sim.kernels`); ``None``
    falls back to the worker's inherited ``REPRO_KERNEL`` environment.
    Kernels are bit-identical by construction, so the result — and
    therefore the store key it is filed under — does not depend on the
    choice.  ``shards > 1`` routes single-core replay through the *exact*
    sharded path (:meth:`~repro.sim.system.SimulatedSystem.run_trace_sharded`
    — sequential hand-off, bit-identical by construction); mix jobs
    ignore it.
    """
    # Fault site: a worker crashing (or being killed) while holding a job.
    # Sits before any system state is built, so a retried job replays from
    # scratch and stays bit-identical.
    fault_point("worker.job")

    # Imported here, not at module scope: system.py/multicore.py import this
    # module for their comparison drivers.
    from .multicore import MultiCoreSystem
    from .system import SimulatedSystem

    # Explicit None check: an empty TraceCache has len() == 0 and is falsy.
    cache = TRACE_CACHE if trace_cache is None else trace_cache
    if isinstance(job, MixJob):
        base_config = job.config or SystemConfig.paper_multi_core()
        system = MultiCoreSystem(base_config.with_predictor(job.predictor))
        traces, names = mix_traces(job.mix, job.accesses_per_core,
                                   seed=job.seed, trace_cache=cache)
        return system.run_traces(traces, workload_names=names,
                                 mix_name=job.mix)

    base_config = job.config or SystemConfig.paper_single_core()
    system = SimulatedSystem(base_config.with_predictor(job.predictor))
    workload = cache.resolve(job.workload)
    total = job.num_accesses + job.warmup_accesses
    buffer = cache.get(job.workload, total, seed=job.seed)
    if job.warmup_accesses:
        # Zero-copy split: both halves are views into the cached buffer.
        system.hierarchy.run_buffer(buffer[:job.warmup_accesses],
                                    kernel=kernel)
        system.reset_statistics()
    if shards > 1:
        return system.run_trace_sharded(buffer[job.warmup_accesses:],
                                        workload.name, kernel=kernel,
                                        shards=shards)
    return system.run_trace(buffer[job.warmup_accesses:], workload.name,
                            kernel=kernel)


# ======================================================================
# Within-job trace sharding (the fast-approximate mode's work units)
# ======================================================================
#: Warm-up overlap replayed before each non-leading approximate shard
#: (accesses).  Sized to prime the paper hierarchy's hot state — at the
#: committed grid scales it covers everything preceding the shard, which
#: pins the approximation error to the core model's window boundaries.
DEFAULT_SHARD_OVERLAP = 2048


@dataclass(frozen=True)
class ShardTask:
    """One picklable unit of fast-approximate sharded execution.

    ``[start, end)`` is the measured span in absolute rows of the job's
    full (warm-up + measured) trace buffer; ``warmup`` rows immediately
    before ``start`` are replayed first and excluded from statistics.
    The task carries its job so any worker process can rebuild the trace
    through its own process-local cache.
    """

    job: SimulationJob
    index: int
    start: int
    end: int
    warmup: int
    kernel: Optional[str] = None


def plan_shard_tasks(job: Job, shards: int,
                     overlap: int = DEFAULT_SHARD_OVERLAP,
                     kernel: Optional[str] = None
                     ) -> Optional[List[ShardTask]]:
    """Shard tasks for one job, or ``None`` when sharding cannot help.

    Mix jobs (per-core traces are already the parallel unit) and traces
    too short to produce more than one span fall back to the unsharded
    path by returning ``None``.
    """
    if shards <= 1 or not isinstance(job, SimulationJob):
        return None
    total = job.num_accesses + job.warmup_accesses
    plan = plan_shards(total, shards, warmup_accesses=job.warmup_accesses,
                       overlap=overlap)
    if len(plan) <= 1:
        return None
    return [ShardTask(job=job, index=shard.index, start=shard.start,
                      end=shard.end, warmup=shard.warmup, kernel=kernel)
            for shard in plan]


def execute_shard(task: ShardTask, trace_cache: Optional[TraceCache] = None):
    """Run one approximate shard to completion in the current process.

    A fresh system replays the shard's warm-up window (discarded from
    statistics), then measures its span.  The result is fully determined
    by the plan — identical whether the task runs serially, on a pool,
    or after a mid-run failover — which keeps approximate mode
    deterministic even though it is not bit-identical to the unsharded
    replay.
    """
    # Same crash/kill fault site as whole jobs: a retried shard replays
    # from scratch and lands on the same deterministic result.
    fault_point("worker.job")
    from .system import SimulatedSystem

    cache = TRACE_CACHE if trace_cache is None else trace_cache
    job = task.job
    base_config = job.config or SystemConfig.paper_single_core()
    system = SimulatedSystem(base_config.with_predictor(job.predictor))
    workload = cache.resolve(job.workload)
    total = job.num_accesses + job.warmup_accesses
    buffer = cache.get(job.workload, total, seed=job.seed)
    if task.warmup:
        system.hierarchy.run_buffer(buffer[task.start - task.warmup:
                                           task.start], kernel=task.kernel)
        system.reset_statistics()
    return system.run_trace(buffer[task.start:task.end], workload.name,
                            kernel=task.kernel)


def merge_shard_results(partials: Sequence) -> "object":
    """Merge per-shard results into one job-level ``SimulationResult``.

    Every counter is summed — the shard spans partition the measured
    region, so pure row counts (accesses, loads, stores, instructions)
    merge losslessly — and every derived ratio (IPC, average latencies,
    recovery rate/fraction, misprediction ratios) is recomputed from the
    sums.  What does *not* merge exactly is the cross-shard cache state
    each shard approximated with its warm-up window; that bounded drift
    is why this path backs the opt-in ``approx`` mode only.
    """
    from ..core.base import PredictorStats
    from ..core.recovery import RecoverySummary
    from ..cpu.ooo_core import ExecutionResult
    from ..memory.hierarchy import HierarchyStats
    from .system import SimulationResult

    if not partials:
        raise ValueError("cannot merge zero shard results")
    first = partials[0]
    execution = ExecutionResult(
        cycles=sum(p.execution.cycles for p in partials),
        instructions=sum(p.execution.instructions for p in partials),
        memory_accesses=sum(p.execution.memory_accesses for p in partials),
        stall_cycles=sum(p.execution.stall_cycles for p in partials))
    hierarchy = HierarchyStats()
    for name in HierarchyStats.__dataclass_fields__:
        setattr(hierarchy, name,
                sum(getattr(p.hierarchy_stats, name) for p in partials))
    predictor = PredictorStats()
    for p in partials:
        stats = p.predictor_stats
        predictor.predictions += stats.predictions
        predictor.multi_way_predictions += stats.multi_way_predictions
        predictor.pld_predictions += stats.pld_predictions
        predictor.pld_mispredictions += stats.pld_mispredictions
        predictor.metadata_hits += stats.metadata_hits
        predictor.metadata_misses += stats.metadata_misses
        predictor.updates += stats.updates
        for outcome, count in stats.outcomes.items():
            predictor.outcomes[outcome] = (
                predictor.outcomes.get(outcome, 0) + count)
        for levels, count in stats.level_histogram.items():
            predictor.level_histogram[levels] = (
                predictor.level_histogram.get(levels, 0) + count)
    energy_breakdown: Dict[str, float] = {}
    for p in partials:
        for category, nanojoules in p.energy_breakdown.items():
            energy_breakdown[category] = (
                energy_breakdown.get(category, 0.0) + nanojoules)
    hierarchy_energy = sum(p.cache_hierarchy_energy_nj for p in partials)
    recovery_energy = sum(p.recovery.recovery_energy_nj for p in partials)
    recovery = RecoverySummary(
        predictions=hierarchy.predictions,
        recoveries=hierarchy.recoveries,
        recovery_rate=(hierarchy.recoveries / hierarchy.predictions
                       if hierarchy.predictions else 0.0),
        recovery_energy_nj=recovery_energy,
        recovery_energy_fraction=(recovery_energy / hierarchy_energy
                                  if hierarchy_energy else 0.0),
        forced_mshr_deallocations=sum(
            p.recovery.forced_mshr_deallocations for p in partials))
    return SimulationResult(
        workload=first.workload,
        system=first.system,
        predictor=first.predictor,
        execution=execution,
        hierarchy_stats=hierarchy,
        predictor_stats=predictor,
        energy_breakdown=energy_breakdown,
        cache_hierarchy_energy_nj=hierarchy_energy,
        recovery=recovery,
        metadata_miss_ratio=predictor.metadata_miss_ratio,
        pld_misprediction_ratio=predictor.pld_misprediction_ratio,
    )


# ======================================================================
# Engine
# ======================================================================
class SimulationEngine:
    """Runs simulation jobs serially or across worker processes.

    Args:
        jobs: Worker-process count.  ``None`` reads ``REPRO_JOBS`` from the
            environment, defaulting to 1 (serial).  Any value <= 1 selects
            the deterministic in-process path; parallel execution produces
            bit-identical results (see the module docstring).
        trace_cache: Cache used by the serial path (worker processes always
            use their own process-local :data:`TRACE_CACHE`).
        store: Content-addressed results store the engine reads through
            (see :mod:`repro.sim.store`).  ``None`` or ``True`` (the
            default) consults the ``REPRO_STORE`` environment variable;
            ``False`` disables the store even when the environment names
            one; a string/Path opens a
            :class:`~repro.sim.store.ResultStore` at that directory.  With a store attached, :meth:`run` serves
            previously computed jobs from disk and persists fresh ones —
            simulations only happen for jobs the store has never seen.
        kernel: Trace-execution kernel name (``"scalar"``/``"batch"``,
            see :mod:`repro.sim.kernels`).  ``None`` reads
            ``REPRO_KERNEL``, defaulting to ``"batch"``; the choice is
            threaded through to worker processes and never affects
            results (kernels are bit-identical by construction).
        options: A pre-built :class:`~repro.sim.options.EngineOptions`;
            when given, the environment is not consulted again and the
            explicit ``jobs``/``kernel`` arguments act as overrides.
    """

    def __init__(self, jobs: Optional[int] = None,
                 trace_cache: Optional[TraceCache] = None,
                 store: Union[None, bool, str, Path, ResultStore] = None,
                 kernel: Optional[str] = None,
                 options: Optional[EngineOptions] = None) -> None:
        # All environment resolution (REPRO_JOBS, REPRO_KERNEL,
        # REPRO_STORE) happens in EngineOptions — explicit arguments win.
        if options is None:
            options = EngineOptions.from_env(kernel=kernel, jobs=jobs)
        else:
            options = options.with_overrides(kernel=kernel, jobs=jobs)
        self.options = options
        self.kernel = options.kernel
        self.num_workers = options.jobs
        self.shards = options.shards
        self.sharding = options.sharding
        # Explicit None check: an empty TraceCache has len() == 0, is falsy.
        self.trace_cache = TRACE_CACHE if trace_cache is None else trace_cache
        if store is None or store is True:
            store = open_store(options.store)
        elif store is False:
            store = None
        elif isinstance(store, (str, Path)):
            store = ResultStore(store)
        self.store: Optional[ResultStore] = store
        #: Store appends retried after a transient failure.
        self.put_retries = 0
        #: Store appends abandoned after the retry budget (results were
        #: still returned — the store is a cache, not the ground truth).
        self.put_failures = 0
        #: Times a broken worker pool forced the serial fallback mid-run.
        self.pool_failovers = 0
        #: Approximate-mode shard tasks executed / merges performed.
        self.shards_executed = 0
        self.shard_merges = 0

    #: Bounded store-append retry: attempts and base backoff (seconds,
    #: doubled per attempt).  Transient EIO heals; persistent ENOSPC gives
    #: up after ~3 tries and the run continues without persisting.
    PUT_ATTEMPTS = 3
    PUT_BACKOFF = 0.05

    @property
    def parallel(self) -> bool:
        return self.num_workers > 1

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job], chunk_align: int = 1,
            force: bool = False) -> List:
        """Execute every job, returning results in job order.

        With a store attached, jobs whose key is already stored are served
        from disk and only the missing ones are simulated.  Fresh results
        are persisted as they arrive — still in job order, so the store
        file is deterministic regardless of worker parallelism, but an
        interrupted grid keeps everything that finished before the
        interruption and resumes from there.  ``force=True`` recomputes
        every job and refreshes its store entry.

        Args:
            jobs: Jobs to run.
            chunk_align: Round the pool chunk size up to a multiple of this
                (the grid helpers pass the per-workload system count, so one
                worker's chunk covers whole comparisons and its trace cache
                serves every system of each workload it is handed).
            force: Recompute (and re-store) jobs even when already stored.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        if self.sharding == "approx" and self.shards > 1:
            # Approximate results are *not* bit-identical to the exact
            # replay, so they must never be served from — or persisted
            # into — the exact-only store.  The store stays untouched.
            return list(self._iter_execute(jobs, chunk_align))
        if self.store is None:
            return list(self._iter_execute(jobs, chunk_align))

        specs: List[Optional[dict]] = []
        keys: List[Optional[str]] = []
        for job in jobs:
            try:
                spec = job_spec(job)
            except UncacheableJobError:
                spec = None
            specs.append(spec)
            keys.append(None if spec is None else spec_key(spec))
        results: List = [None] * len(jobs)
        missing: List[int] = []
        for index, key in enumerate(keys):
            cached = None if force else self.store.get(key)
            if cached is None:
                missing.append(index)
            else:
                results[index] = cached
        if missing:
            if force:
                # get() was skipped; keep the counters meaningful anyway
                # (unkeyed jobs are tallied apart from true misses).
                keyed = sum(1 for index in missing
                            if keys[index] is not None)
                self.store.misses += keyed
                self.store.unkeyed += len(missing) - keyed
            fresh = self._iter_execute([jobs[i] for i in missing],
                                       chunk_align)
            # Persist each fresh result as it arrives (still in job order),
            # so an interrupted grid keeps its completed jobs on disk.
            for index, result in zip(missing, fresh):
                results[index] = result
                if keys[index] is not None:
                    self.store_put(keys[index], specs[index], result)
        return results

    def store_put(self, key: str, spec: dict, result) -> bool:
        """Persist one result with a bounded retry; never raises.

        A torn/failed append leaves the shard repairable in place (see
        :func:`repro.sim.store._append_payload`), so retrying is always
        safe; after the budget the failure is reported and the run keeps
        its in-memory result — losing a cache entry must never lose work.
        """
        for attempt in range(1, self.PUT_ATTEMPTS + 1):
            try:
                self.store.put(key, spec, result)
                return True
            except OSError as error:
                if attempt == self.PUT_ATTEMPTS:
                    self.put_failures += 1
                    print(f"repro.engine: giving up storing {key[:12]}… "
                          f"after {attempt} attempts ({error})",
                          file=sys.stderr)
                    return False
                self.put_retries += 1
                time.sleep(self.PUT_BACKOFF * (2 ** (attempt - 1)))
        return False

    def _iter_execute(self, jobs: List[Job], chunk_align: int = 1):
        """Yield results for ``jobs`` in order: serial path or process pool."""
        if self.sharding == "approx" and self.shards > 1:
            yield from self._iter_execute_approx(jobs)
            return
        kernel = self.kernel
        # Exact sharding rides along with each job (sequential hand-off
        # inside the worker, bit-identical).  The kwarg is only passed when
        # sharding is actually requested, so tests that monkeypatch
        # ``execute_job`` with the historical signature keep working.
        extra = {"shards": self.shards} if self.shards > 1 else {}
        if self.num_workers <= 1 or len(jobs) == 1:
            cache = self.trace_cache
            for job in jobs:
                yield execute_job(job, cache, kernel=kernel, **extra)
            return
        workers = min(self.num_workers, len(jobs))
        chunksize = max(1, len(jobs) // (workers * 4))
        if chunk_align > 1:
            chunksize = -(-chunksize // chunk_align) * chunk_align
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            # Force a worker to spawn now: fork/spawn being unavailable
            # (sandboxes, RLIMIT_NPROC) must trigger the serial fallback,
            # while errors later, mid-run, should propagate loudly instead
            # of silently discarding completed work.
            pool.submit(os.getpid).result()
        except OSError:
            pool.shutdown(wait=False)
            cache = self.trace_cache
            for job in jobs:
                yield execute_job(job, cache, kernel=kernel, **extra)
            return
        completed = 0
        try:
            with pool:
                # The engine's explicit kernel choice travels with each
                # job, overriding whatever REPRO_KERNEL the workers
                # inherited from the environment.
                worker = partial(execute_job, kernel=kernel, **extra)
                for result in pool.map(worker, jobs, chunksize=chunksize):
                    completed += 1
                    yield result
        except BrokenProcessPool:
            # A worker died (OOM-kill, injected ``worker.job:kill``, a
            # segfaulting native extension): the pool poisons every pending
            # future, but the jobs themselves are deterministic, so finish
            # the remainder serially instead of discarding the run.
            self.pool_failovers += 1
            print(f"repro.engine: worker pool broke after {completed}/"
                  f"{len(jobs)} jobs; finishing the rest serially",
                  file=sys.stderr)
            cache = self.trace_cache
            for job in jobs[completed:]:
                yield execute_job(job, cache, kernel=kernel, **extra)

    def _iter_execute_approx(self, jobs: List[Job]):
        """Yield approximate-mode results for ``jobs`` in job order.

        Each job is planned into concurrent shard tasks
        (:func:`plan_shard_tasks`); jobs the planner declines (mixes, tiny
        traces) run unsharded.  All shard tasks of all jobs are flattened
        into one batch so a single long-trace request still fans out over
        every worker, then merged back per job.
        """
        plans = [plan_shard_tasks(job, self.shards, kernel=self.kernel)
                 for job in jobs]
        tasks = [task for plan in plans if plan for task in plan]
        partials = self._execute_shard_tasks(tasks)
        cursor = 0
        for job, plan in zip(jobs, plans):
            if plan is None:
                yield execute_job(job, self.trace_cache, kernel=self.kernel)
                continue
            span = partials[cursor:cursor + len(plan)]
            cursor += len(plan)
            self.shards_executed += len(span)
            self.shard_merges += 1
            yield merge_shard_results(span)

    def _execute_shard_tasks(self, tasks: List[ShardTask]) -> List:
        """Execute shard tasks (order-preserving), pooled when it helps.

        Reuses the engine's pool discipline: probe-submit to detect hosts
        where process spawning is unavailable, and finish serially after a
        :class:`BrokenProcessPool` — shard tasks are deterministic, so the
        failover path lands on the same merged result.
        """
        if not tasks:
            return []
        workers = min(max(self.num_workers, self.shards), len(tasks))
        if workers <= 1 or len(tasks) == 1:
            return [execute_shard(task, self.trace_cache) for task in tasks]
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            pool.submit(os.getpid).result()
        except OSError:
            pool.shutdown(wait=False)
            return [execute_shard(task, self.trace_cache) for task in tasks]
        partials: List = []
        try:
            with pool:
                for result in pool.map(execute_shard, tasks):
                    partials.append(result)
        except BrokenProcessPool:
            self.pool_failovers += 1
            print(f"repro.engine: shard pool broke after {len(partials)}/"
                  f"{len(tasks)} shards; finishing the rest serially",
                  file=sys.stderr)
            partials.extend(execute_shard(task, self.trace_cache)
                            for task in tasks[len(partials):])
        return partials

    # ------------------------------------------------------------------
    def run_grid(self, workloads: Sequence[WorkloadSpec],
                 predictors: Sequence[str],
                 num_accesses: int,
                 warmup_accesses: int = 0,
                 seed: int = 0,
                 config: Optional[SystemConfig] = None
                 ) -> Dict[str, Dict[str, object]]:
        """Run a (workload x predictor) grid, returning nested dicts.

        The outer key is the workload's display name (the application name
        for suite workloads), the inner key the predictor name — the shape
        every figure benchmark consumes.
        """
        jobs = expand_grid(workloads, predictors, num_accesses,
                           warmup_accesses=warmup_accesses, seeds=(seed,),
                           config=config)
        results = self.run(jobs, chunk_align=len(predictors))
        grid: Dict[str, Dict[str, object]] = {}
        index = 0
        for workload in workloads:
            name = workload if isinstance(workload, str) else workload.name
            per_system: Dict[str, object] = {}
            for predictor in predictors:
                per_system[predictor] = results[index]
                index += 1
            grid[name] = per_system
        return grid

    def run_mix_grid(self, mixes: Sequence[str],
                     predictors: Sequence[str],
                     accesses_per_core: int,
                     seed: int = 0,
                     config: Optional[SystemConfig] = None
                     ) -> Dict[str, Dict[str, object]]:
        """Run a (mix x predictor) grid of multi-core simulations."""
        jobs = [MixJob(mix=mix, predictor=predictor,
                       accesses_per_core=accesses_per_core, seed=seed,
                       config=config)
                for mix in mixes for predictor in predictors]
        results = self.run(jobs, chunk_align=len(predictors))
        grid: Dict[str, Dict[str, object]] = {}
        index = 0
        for mix in mixes:
            per_system: Dict[str, object] = {}
            for predictor in predictors:
                per_system[predictor] = results[index]
                index += 1
            grid[mix] = per_system
        return grid
