"""Multi-core simulation driver (Section V.D).

The paper's multi-core evaluation runs the Table II mixes on a quad-core
system with an 8 MB shared LLC and one level predictor per core.  This driver
builds one :class:`CoreMemoryHierarchy` (with its own predictor and private
prefetchers) per core on top of a single :class:`SharedMemorySystem`, and
interleaves the per-core traces round-robin so the cores contend for the LLC,
the directory and DRAM banks the way concurrently running programs do.

Per-core IPC is computed with the same window-limited core model as the
single-core runs; the figures report the geometric-mean speedup across cores
(multi-program mixes) or the aggregate accuracy breakdown (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.base import PredictionOutcome
from ..cpu.ooo_core import ExecutionResult, OutOfOrderCore, geometric_mean
from ..memory.block import AccessResult, AccessType
from ..memory.hierarchy import CoreMemoryHierarchy, SharedMemorySystem
from ..trace import TraceBuffer
from .config import SystemConfig
from .system import Trace, make_llc_prefetcher, make_predictor, \
    _make_private_prefetchers

_LOAD = AccessType.LOAD
_STORE = AccessType.STORE


@dataclass
class MultiCoreResult:
    """Aggregated outcome of one multi-core simulation."""

    mix: str
    predictor: str
    per_core_execution: List[ExecutionResult]
    per_core_workloads: List[str]
    accuracy_breakdown: Dict[str, float]
    cache_hierarchy_energy_nj: float
    total_predictions: int
    total_recoveries: int

    @property
    def aggregate_ipc(self) -> float:
        return sum(result.ipc for result in self.per_core_execution)

    def speedup_over(self, baseline: "MultiCoreResult") -> float:
        """Geometric mean of per-core speedups (the paper's metric)."""
        speedups = []
        for mine, theirs in zip(self.per_core_execution,
                                baseline.per_core_execution):
            if theirs.ipc > 0:
                speedups.append(mine.ipc / theirs.ipc)
        return geometric_mean(speedups) if speedups else 1.0

    def normalized_energy_over(self, baseline: "MultiCoreResult") -> float:
        if baseline.cache_hierarchy_energy_nj == 0.0:
            return 1.0
        return (self.cache_hierarchy_energy_nj
                / baseline.cache_hierarchy_energy_nj)

    def energy_efficiency_over(self, baseline: "MultiCoreResult") -> float:
        """Performance per unit of cache-hierarchy energy, relative."""
        normalized_energy = self.normalized_energy_over(baseline)
        speedup = self.speedup_over(baseline)
        if normalized_energy == 0.0:
            return speedup
        return speedup / normalized_energy


class MultiCoreSystem:
    """A quad-core (or N-core) system sharing one LLC and DRAM channel."""

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        self.config = config or SystemConfig.paper_multi_core()
        hierarchy_config = self.config.hierarchy
        if self.config.predictor == "ideal":
            from dataclasses import replace
            hierarchy_config = replace(hierarchy_config, ideal_miss_latency=True)
        self.shared = SharedMemorySystem(
            hierarchy_config, num_cores=self.config.num_cores,
            llc_prefetcher=make_llc_prefetcher(self.config))
        self.cores: List[CoreMemoryHierarchy] = []
        for core_id in range(self.config.num_cores):
            l1_prefetcher, l2_prefetcher = _make_private_prefetchers(self.config)
            self.cores.append(CoreMemoryHierarchy(
                config=hierarchy_config, shared=self.shared,
                predictor=make_predictor(self.config.predictor, self.config),
                l1_prefetcher=l1_prefetcher, l2_prefetcher=l2_prefetcher,
                core_id=core_id, active_cores=self.config.num_cores))
        self.core_model = OutOfOrderCore(self.config.core)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_traces(self, traces: Sequence[Trace],
                   workload_names: Optional[Sequence[str]] = None,
                   mix_name: str = "mix") -> MultiCoreResult:
        """Interleave per-core traces round-robin and time each core.

        Traces are decomposed into block/page columns once per core up
        front (legacy record lists are packed into columnar buffers first —
        the streams are identical, so results are bit-identical either
        way), and the interleaved loop services each access through
        :meth:`~repro.memory.hierarchy.CoreMemoryHierarchy.access_decomposed`
        with no per-access record unpacking.
        """
        if len(traces) > len(self.cores):
            raise ValueError("more traces than cores")
        if not traces:
            return self._collect(mix_name, [], [])
        names = list(workload_names or [f"core{i}" for i in range(len(traces))])
        per_core_results: List[List[AccessResult]] = [[] for _ in traces]

        # Decompose every trace into ready-to-service argument rows up
        # front (legacy record lists are packed into buffers first), so the
        # interleaved loop below does no per-access unpacking, masking or
        # core re-lookup — just one bound-method call per access.
        load, store = _LOAD, _STORE
        plan = []
        for core, trace, results in zip(self.cores, traces,
                                        per_core_results):
            if len(trace):
                buffer = trace if isinstance(trace, TraceBuffer) \
                    else TraceBuffer.from_accesses(trace)
                addresses, blocks, pages, is_store, pcs = \
                    buffer.replay_columns(core._block_size,
                                          core._l1_page_size)
                rows = list(zip(addresses, blocks, pages,
                                (store if stored else load
                                 for stored in is_store), pcs))
            else:
                rows = []
            plan.append((core.access_decomposed, rows, results.append))

        longest = max(len(trace) for trace in traces)
        for position in range(longest):
            for service, rows, append in plan:
                if position < len(rows):
                    append(service(*rows[position]))

        executions = [
            self.core_model.execute(trace, results)
            for trace, results in zip(traces, per_core_results)
        ]
        return self._collect(mix_name, names, executions)

    def run_mix(self, mix_name: str, accesses_per_core: int,
                seed: int = 0) -> MultiCoreResult:
        """Run one of the Table II mixes (traces come from the trace cache)."""
        from .engine import mix_traces

        traces, names = mix_traces(mix_name, accesses_per_core, seed=seed)
        return self.run_traces(traces, workload_names=names,
                               mix_name=mix_name)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _collect(self, mix_name: str, names: Sequence[str],
                 executions: List[ExecutionResult]) -> MultiCoreResult:
        outcome_totals = {outcome: 0 for outcome in PredictionOutcome}
        predictions = 0
        recoveries = 0
        energy = 0.0
        for core in self.cores:
            stats = core.predictor.stats
            predictions += stats.predictions
            for outcome, count in stats.outcomes.items():
                outcome_totals[outcome] += count
            recoveries += core.stats.recoveries
            energy += core.energy.cache_hierarchy_energy()
        breakdown = {
            outcome.value: (outcome_totals[outcome] / predictions
                            if predictions else 0.0)
            for outcome in PredictionOutcome
        }
        return MultiCoreResult(
            mix=mix_name,
            predictor=self.config.predictor,
            per_core_execution=executions,
            per_core_workloads=list(names),
            accuracy_breakdown=breakdown,
            cache_hierarchy_energy_nj=energy,
            total_predictions=predictions,
            total_recoveries=recoveries,
        )


def run_mix_comparison(mix_name: str, accesses_per_core: int,
                       predictors: Sequence[str] = ("baseline", "lp"),
                       seed: int = 0,
                       config: Optional[SystemConfig] = None
                       ) -> Dict[str, MultiCoreResult]:
    """Run one Table II mix under several predictors (same traces).

    Runs on the :mod:`repro.sim.engine`: per-core traces are generated once
    through the trace cache instead of once per compared system, and the
    per-predictor jobs parallelise under ``REPRO_JOBS``.  When
    ``REPRO_STORE`` names a results store, stored (mix, predictor) cells
    are served from it instead of being resimulated.
    """
    from .engine import MixJob, SimulationEngine

    base_config = config or SystemConfig.paper_multi_core()
    jobs = [MixJob(mix=mix_name, predictor=predictor,
                   accesses_per_core=accesses_per_core, seed=seed,
                   config=base_config)
            for predictor in predictors]
    results = SimulationEngine().run(jobs)
    return dict(zip(predictors, results))
