"""Trace-execution kernels: the single seam between traces and the model.

Every demand access a simulation services flows through a *kernel* — the
object that walks a columnar :class:`~repro.trace.TraceBuffer` and drives
:meth:`~repro.memory.hierarchy.CoreMemoryHierarchy.access_decomposed`, the
one exact scalar path in the simulator.  Two kernels ship:

:class:`ScalarKernel` (``"scalar"``)
    The reference loop: one :meth:`access_decomposed` call per access, in
    trace order.  This is what every version of the simulator up to now
    did inside ``run_buffer``; it is kept verbatim as the ground truth the
    batch kernel is checked against.

:class:`BatchKernel` (``"batch"``, the default)
    A vectorised first pass over the buffer's numpy columns segments the
    trace into *same-block runs* (consecutive accesses touching one cache
    line — the dominant pattern streaming and blocked workloads emit).
    The first access of each run takes the exact scalar path; the tail of
    the run is then provably uninteresting — the head access either hit L1
    or filled it, leaving the line MRU and the TLB page warm — and is
    resolved in bulk by
    :meth:`~repro.memory.hierarchy.CoreMemoryHierarchy.bulk_repeat_hits`,
    which replays the exact side effects of ``n`` repeat hits (integer
    counters in one add, float accumulators fold-left so the addition
    order is preserved) without touching the per-access machinery.  The
    bulk path *verifies* its preconditions against the true model state
    (line resident and not prefetch-tagged, page resident, LRU-managed L1,
    next-line/null L1 prefetcher) and falls back to the scalar path for
    any access where the guarantee does not hold — misses, fills,
    prefetch-tagged hits, non-LRU sweeps — so results are bit-identical
    by construction, not by tolerance.

Selection
=========

``CoreMemoryHierarchy.run_buffer(buffer, kernel=...)`` accepts a kernel
name, a kernel object, or ``None`` — which resolves ``REPRO_KERNEL`` from
the environment (default ``"batch"``).  The engine and the service daemon
thread an explicit kernel name through to worker processes, so a CLI
``--kernel`` choice wins over the workers' inherited environment.

Scope: the batch kernel accelerates the single-core buffer replay path.
Multi-core mixes interleave per-core streams access-by-access (see
:meth:`repro.sim.multicore.MultiCoreSystem.run_traces`) and always use
the scalar per-access path, whatever kernel is selected.  Non-memory
instructions never reach a kernel at all — they live in the buffer's
``non_memory`` column and are charged by the core model.
"""

from __future__ import annotations

import os
from typing import List, Union

import numpy as np

from ..memory.block import AccessType
from ..trace import KIND_STORE

_LOAD = AccessType.LOAD
_STORE = AccessType.STORE

#: Environment variable selecting the default kernel.
REPRO_KERNEL_ENV = "REPRO_KERNEL"

#: The kernel used when neither an argument nor the environment chooses.
DEFAULT_KERNEL = "batch"


class Kernel:
    """Protocol for trace-execution kernels.

    A kernel is stateless; all simulation state lives in the hierarchy it
    drives.  ``run`` must produce results bit-identical to the scalar
    reference loop for every buffer.
    """

    #: Stable selection name (``--kernel`` / ``REPRO_KERNEL`` value).
    name: str = "abstract"

    def run(self, hierarchy, buffer) -> List:
        """Service every access in ``buffer`` through ``hierarchy``.

        Returns the per-access :class:`~repro.memory.hierarchy.AccessResult`
        list the core model consumes, in trace order.
        """
        raise NotImplementedError


class ScalarKernel(Kernel):
    """The reference kernel: the exact per-access loop, nothing skipped."""

    name = "scalar"

    def run(self, hierarchy, buffer) -> List:
        addresses, blocks, pages, is_store, pcs = buffer.replay_columns(
            hierarchy._block_size, hierarchy._l1_page_size)
        service = hierarchy.access_decomposed
        load = _LOAD
        store = _STORE
        return [
            service(address, block, page, store if stored else load, pc)
            for address, block, page, stored, pc in zip(
                addresses, blocks, pages, is_store, pcs)
        ]


class BatchKernel(Kernel):
    """Run-segmented kernel: scalar heads, bulk-resolved repeat tails."""

    name = "batch"

    def run(self, hierarchy, buffer) -> List:
        n = len(buffer)
        service = hierarchy.access_decomposed
        load = _LOAD
        store = _STORE
        if n < 2:
            addresses, blocks, pages, is_store, pcs = buffer.replay_columns(
                hierarchy._block_size, hierarchy._l1_page_size)
            return [
                service(addresses[i], blocks[i], pages[i],
                        store if is_store[i] else load, pcs[i])
                for i in range(n)
            ]

        kind = buffer.kind
        if int(kind.max()) > KIND_STORE:
            raise ValueError("trace contains non-demand accesses; the "
                             "demand replay path only services "
                             "loads/stores")

        # Vectorised first pass: segment the trace at block boundaries.
        # Only the *run heads* are materialised as native-int lists (a
        # fancy-index per column, O(runs) conversion); the tail accesses
        # of each run never touch per-access Python values unless the
        # bulk path declines and the exact scalar fallback needs them.
        # The block/page columns are cached on the buffer, so repeated
        # replays (warm-up plus measured phase) reuse them.
        block_column = buffer.block_column(hierarchy._block_size)
        page_column = buffer.page_column(hierarchy._l1_page_size)
        address_column = buffer.address
        pc_column = buffer.pc
        heads = np.empty(n, dtype=bool)
        heads[0] = True
        np.not_equal(block_column[1:], block_column[:-1], out=heads[1:])
        starts = np.flatnonzero(heads)
        bounds = starts.tolist()
        bounds.append(n)
        head_addresses = address_column[starts].tolist()
        head_blocks = block_column[starts].tolist()
        head_pages = page_column[starts].tolist()
        head_stores = (kind[starts] == KIND_STORE).tolist()
        head_pcs = pc_column[starts].tolist()
        is_store = kind == KIND_STORE
        store_prefix = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(is_store, out=store_prefix[1:])

        results: List = []
        append = results.append
        extend = results.extend
        bulk = hierarchy.bulk_repeat_hits
        hit_result = hierarchy._l1_hit_result
        # zip stops at the shortest sequence, so the trailing n appended
        # to bounds pairs each head with its run's end offset.
        for address, block, page, stored, pc, index, end in zip(
                head_addresses, head_blocks, head_pages, head_stores,
                head_pcs, bounds, bounds[1:]):
            # The head of every run takes the exact scalar path: it may
            # hit, miss, fill, train prefetchers — all of it interesting.
            append(service(address, block, page,
                           store if stored else load, pc))
            index += 1
            while index < end:
                count = end - index
                # Same block for the whole run, hence same page too (the
                # block size divides the page size).
                if bulk(block, page, count,
                        int(store_prefix[end]) - int(store_prefix[index])):
                    if count == 1:
                        append(hit_result)
                    else:
                        extend([hit_result] * count)
                    break
                # Precondition not met (prefetch-tagged line, non-LRU
                # policy, evicted page...): service one access exactly,
                # then retry the remainder in bulk.
                append(service(int(address_column[index]), block, page,
                               store if is_store[index] else load,
                               int(pc_column[index])))
                index += 1
        return results


#: Registry of selectable kernels, keyed by their stable names.
KERNELS = {
    ScalarKernel.name: ScalarKernel(),
    BatchKernel.name: BatchKernel(),
}


def kernel_names() -> List[str]:
    """The selectable kernel names, default first."""
    names = sorted(KERNELS, key=lambda name: name != DEFAULT_KERNEL)
    return names


def resolve_kernel(kernel: Union[None, str, Kernel] = None) -> Kernel:
    """Resolve a kernel argument to a kernel instance.

    ``None`` consults the ``REPRO_KERNEL`` environment variable and falls
    back to :data:`DEFAULT_KERNEL`; a string selects from
    :data:`KERNELS`; a kernel object passes through unchanged.
    """
    if kernel is None:
        kernel = os.environ.get(REPRO_KERNEL_ENV, "").strip() \
            or DEFAULT_KERNEL
    if isinstance(kernel, Kernel):
        return kernel
    try:
        return KERNELS[kernel]
    except KeyError:
        raise ValueError(
            f"unknown kernel {kernel!r}; known: "
            f"{', '.join(kernel_names())}") from None
