"""Figure 3: coverage and accuracy of LLC prefetchers.

The paper measures, for eleven published prefetchers, what fraction of LLC
misses they eliminate (coverage) and what fraction of their prefetches are
useful (accuracy), concluding that even the best (DCPT) leaves half of the
misses for main memory — the opportunity level prediction targets.

This benchmark runs each prefetcher as the LLC prefetcher on a small mix of
workload classes (streaming, graph gathers, mixed reuse), computes coverage
against a no-prefetch run of the same traces, and checks the paper's headline:
no prefetcher covers more than ~60 % of LLC misses.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.prefetch import FIGURE3_PREFETCHERS, make_prefetcher
from repro.sim.config import SystemConfig
from repro.sim.system import SimulatedSystem
from repro.workloads import build_workload

from conftest import BENCH_ACCESSES, save_result

#: A small cross-section of behaviours: prefetch-friendly streaming,
#: irregular graph gathers, and mixed reuse.
WORKLOADS = ["stream", "gapbs.pr", "nas.cg"]


def _run_prefetcher_sweep():
    accesses = max(BENCH_ACCESSES, 3000)
    traces = {app: build_workload(app).generate(accesses, seed=0)
              for app in WORKLOADS}

    def llc_misses(llc_prefetcher):
        total_misses = 0
        useful = useless = 0
        for app, trace in traces.items():
            config = SystemConfig.paper_single_core("baseline")
            config.prefetch_scheme = "none"   # isolate the LLC prefetcher
            system = SimulatedSystem(config, llc_prefetcher=llc_prefetcher)
            for access in trace:
                system.hierarchy.access(access)
            total_misses += system.hierarchy.stats.memory_accesses
        if llc_prefetcher is not None:
            useful = llc_prefetcher.stats.useful
            useless = llc_prefetcher.stats.useless
        return total_misses, useful, useless

    baseline_misses, _, _ = llc_misses(None)
    rows = {}
    for name in sorted(FIGURE3_PREFETCHERS):
        prefetcher = make_prefetcher(name, degree=2)
        misses, useful, useless = llc_misses(prefetcher)
        coverage = max(0.0, 1.0 - misses / baseline_misses) if baseline_misses else 0.0
        resolved = useful + useless
        accuracy = useful / resolved if resolved else 0.0
        rows[name] = (coverage, accuracy)
    return baseline_misses, rows


def test_figure3_prefetcher_coverage_accuracy(benchmark):
    baseline_misses, rows = benchmark.pedantic(_run_prefetcher_sweep,
                                               rounds=1, iterations=1)

    table_rows = [[name, round(cov, 3), round(acc, 3)]
                  for name, (cov, acc) in sorted(rows.items())]
    average = [sum(v[i] for v in rows.values()) / len(rows) for i in (0, 1)]
    table_rows.append(["Average", round(average[0], 3), round(average[1], 3)])
    table = format_table(["prefetcher", "coverage", "accuracy"], table_rows,
                         title="Figure 3: LLC prefetcher coverage and accuracy")
    print("\n" + table)
    save_result("fig03_prefetchers", table)

    assert baseline_misses > 0
    # The paper's central observation: even the best prefetcher leaves roughly
    # half of the LLC misses uncovered, so level prediction has headroom.
    assert all(coverage <= 0.65 for coverage, _ in rows.values())
    # At least some prefetchers provide non-trivial coverage on this mix.
    assert any(coverage > 0.05 for coverage, _ in rows.values())
    # Accuracy is a fraction.
    assert all(0.0 <= accuracy <= 1.0 for _, accuracy in rows.values())
