"""Figure 9: distribution of the levels suggested by the level predictor.

For each application the paper reports which lookup targets the predictor
issued (L2, L3, memory, and the multi-way combinations).  Multi-way
predictions are rare overall but show up for applications whose PLD counters
are not strongly biased (620.omnetpp, gapbs.pr, nas.is in the paper).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.memory.block import Level

from conftest import save_result

COLUMNS = ["L2", "L3", "L2+L3", "Memory", "L2+Memory", "L3+Memory", "All"]

_KEYS = {
    (Level.L2,): "L2",
    (Level.L3,): "L3",
    (Level.L2, Level.L3): "L2+L3",
    (Level.MEM,): "Memory",
    (Level.L2, Level.MEM): "L2+Memory",
    (Level.L3, Level.MEM): "L3+Memory",
    (Level.L2, Level.L3, Level.MEM): "All",
}


def test_figure9_predicted_levels(benchmark, single_core_results):
    def build_rows():
        rows = {}
        for app, results in single_core_results.items():
            histogram = results["lp"].predictor_stats.level_histogram
            total = sum(histogram.values()) or 1
            fractions = {column: 0.0 for column in COLUMNS}
            for levels, count in histogram.items():
                key = _KEYS.get(tuple(levels))
                if key is not None:
                    fractions[key] += count / total
            rows[app] = fractions
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)

    table_rows = [[app] + [round(rows[app][c], 3) for c in COLUMNS]
                  for app in sorted(rows)]
    table = format_table(["application"] + COLUMNS, table_rows,
                         title="Figure 9: levels suggested by the predictor")
    print("\n" + table)
    save_result("fig09_levels", table)

    for app, fractions in rows.items():
        assert abs(sum(fractions.values()) - 1.0) < 1e-6, app
        multi_way = (fractions["L2+L3"] + fractions["L2+Memory"]
                     + fractions["L3+Memory"] + fractions["All"])
        # Multi-way predictions exist but are the minority (Section V.A).
        assert multi_way < 0.6, app

    # Memory-bound applications are dominated by memory/L3 predictions.
    assert rows["gups"]["Memory"] + rows["gups"]["L3+Memory"] > 0.5
    # Cache-friendlier applications keep a visible share of L2 (sequential)
    # targets; the exact fraction depends on how much of gcc's friendly phase
    # falls in the measured window, so the bound is loose.
    assert rows["602.gcc"]["L2"] > 0.1
