"""Fleet serving under load: 1 daemon vs. an N-member fleet.

This benchmark drives hundreds of concurrent clients against the
simulation daemon (:mod:`repro.service`) and records what the serving
tier actually delivers into ``BENCH_service.json`` at the repository
root.  Two topologies are measured on fresh stores:

* ``fleet1`` — a single daemon (the PR 5 shape);
* ``fleetN`` — ``REPRO_BENCH_FLEET`` daemons (default 3) launched with
  ``python -m repro fleet``, sharing one sharded store and
  coordinating through per-job-key claim records.

Each topology runs two phases:

* **cold** — every figure experiment is submitted concurrently through
  a :class:`repro.service.FleetClient`.  The load-bearing number here
  is the *duplicate-simulation count*: the sum of the members'
  ``simulations`` counters minus the distinct entries that landed in
  the store.  The claim protocol's contract is that this is **zero**
  even with multiple daemons racing on overlapping grids (fig10/11/12
  share all 126 jobs), and the benchmark asserts it.
* **warm** — ``REPRO_BENCH_CLIENTS`` client threads (default 200) each
  issue ``REPRO_BENCH_REQUESTS`` requests (default 3) for experiments
  drawn from a zipf-distributed figure mix (s = 1.1, deterministic
  seed), the request shape a shared serving tier actually sees.  Every
  job must now come from the store or the in-memory inflight table —
  the benchmark asserts the warm phase performs zero simulations — and
  the recorded p50/p99 latency and request throughput are the serving
  numbers the fleet exists to scale.

Request volume is scaled with ``REPRO_BENCH_CLIENTS`` /
``REPRO_BENCH_REQUESTS`` / ``REPRO_BENCH_FLEET`` so CI can smoke the
harness cheaply while a real host runs the full load.  Simulation
sizes are tiny (``SERVICE_SCALE``): the benchmark measures the serving
tier, whose per-request cost is store reads and wire traffic, not the
simulations behind the warm entries.
"""

from __future__ import annotations

import json
import os
import platform
import random
import signal
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.service import FleetClient

from conftest import save_result

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_service.json"
SRC_DIR = REPO_ROOT / "src"

#: Concurrent client threads in the warm phase.
CLIENTS = int(os.environ.get("REPRO_BENCH_CLIENTS", "200"))
#: Requests each client issues.
REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_REQUESTS", "3"))
#: Members in the N-daemon topology.
FLEET_MEMBERS = max(2, int(os.environ.get("REPRO_BENCH_FLEET", "3")))
#: Worker threads per daemon (thread pool keeps the members cheap).
MEMBER_JOBS = int(os.environ.get("REPRO_BENCH_MEMBER_JOBS", "2"))

#: Tiny per-job simulation sizes: the serving tier is the thing under
#: test, and its warm-path cost does not grow with simulated accesses.
SERVICE_SCALE = {"accesses": 120, "warmup": 40, "mix_accesses": 80}

#: The figure mix, most-popular first; zipf weights follow this order.
FIGURE_MIX = ("fig10", "fig11", "fig12", "golden", "fig07", "fig08",
              "fig09", "fig05", "fig13", "fig14", "fig15")

#: Zipf exponent for the warm-phase experiment mix.
ZIPF_S = 1.1


class Fleet:
    """A ``python -m repro fleet`` launcher process plus its addresses."""

    def __init__(self, members: int, store_dir: str) -> None:
        ready = Path(store_dir) / "fleet-ready.txt"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(SRC_DIR)] + ([env["PYTHONPATH"]]
                              if env.get("PYTHONPATH") else []))
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "fleet",
             "--members", str(members),
             "--store", str(Path(store_dir) / "store"),
             "--pool", "thread", "--jobs", str(MEMBER_JOBS),
             "--ready-file", str(ready)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        deadline = time.monotonic() + 60.0
        while not ready.is_file():
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"fleet launcher exited with {self.process.returncode} "
                    f"during startup")
            if time.monotonic() >= deadline:
                self.process.terminate()
                raise RuntimeError("fleet startup timed out")
            time.sleep(0.05)
        self.address = ready.read_text(encoding="utf-8").strip()
        self.store_dir = Path(store_dir) / "store"

    def client(self) -> FleetClient:
        return FleetClient(self.address)

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
        try:
            self.process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()


def _percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _store_entry_count(store_dir: Path) -> int:
    from repro.sim.store import ResultStore

    return len(ResultStore(store_dir))


def _store_line_count(store_dir: Path) -> int:
    from repro.sim.store import ResultStore

    return ResultStore(store_dir).total_lines()


def _fleet_counters(client: FleetClient) -> dict:
    payload = client.stats()
    assert payload["fleet"]["reachable"] == payload["fleet"]["size"]
    return payload


def _cold_phase(fleet: Fleet) -> dict:
    """Submit every figure experiment concurrently; count duplicates."""
    errors = []
    seconds = {}

    def _submit(name: str) -> None:
        try:
            client = fleet.client()
            start = time.perf_counter()
            payload = client.submit(experiment=name, scale=SERVICE_SCALE,
                                    wait=True)
            seconds[name] = time.perf_counter() - start
            if payload.get("state") != "done":
                errors.append((name, payload.get("error")))
        except Exception as exc:  # noqa: BLE001 - recorded, then raised
            errors.append((name, repr(exc)))

    threads = [threading.Thread(target=_submit, args=(name,))
               for name in FIGURE_MIX]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    assert not errors, errors

    stats = _fleet_counters(fleet.client())
    simulations = stats["counters"]["simulations"]
    entries = _store_entry_count(fleet.store_dir)
    duplicates = simulations - entries
    return {
        "seconds": wall,
        "experiments": len(FIGURE_MIX),
        "simulations": simulations,
        "store_entries": entries,
        "store_lines": _store_line_count(fleet.store_dir),
        "duplicate_simulations": duplicates,
        "claims_won": stats["counters"].get("claims_won", 0),
        "claims_lost": stats["counters"].get("claims_lost", 0),
        "claim_waits": stats["counters"].get("claim_waits", 0),
        "per_experiment_seconds": dict(sorted(seconds.items())),
    }


def _warm_phase(fleet: Fleet) -> dict:
    """Hundreds of clients, zipf figure mix; latency + throughput."""
    weights = [1.0 / (rank + 1) ** ZIPF_S
               for rank in range(len(FIGURE_MIX))]
    before = _fleet_counters(fleet.client())["counters"]

    latencies = []
    latency_lock = threading.Lock()
    errors = []

    def _client(seed: int) -> None:
        rng = random.Random(seed)
        names = rng.choices(FIGURE_MIX, weights=weights,
                            k=REQUESTS_PER_CLIENT)
        name = names[0]
        try:
            client = fleet.client()
            for name in names:
                start = time.perf_counter()
                payload = client.submit(experiment=name,
                                        scale=SERVICE_SCALE, wait=True)
                elapsed = time.perf_counter() - start
                if payload.get("state") != "done":
                    errors.append((seed, name, payload.get("error")))
                    return
                with latency_lock:
                    latencies.append(elapsed)
        except Exception as exc:  # noqa: BLE001 - recorded, then raised
            errors.append((seed, name, repr(exc)))

    threads = [threading.Thread(target=_client, args=(seed,))
               for seed in range(CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    assert not errors, errors[:5]

    after = _fleet_counters(fleet.client())["counters"]
    jobs = after["jobs"] - before["jobs"]
    hits = after["store_hits"] - before["store_hits"]
    simulated = after["simulations"] - before["simulations"]
    # Every job in the warm phase must be served without simulating: the
    # cold phase persisted the full figure mix fleet-wide.
    assert simulated == 0, (simulated, jobs)
    requests = len(latencies)
    return {
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "requests": requests,
        "seconds": wall,
        "requests_per_second": requests / wall,
        "latency_p50_ms": _percentile(latencies, 0.50) * 1e3,
        "latency_p99_ms": _percentile(latencies, 0.99) * 1e3,
        "latency_mean_ms": statistics.fmean(latencies) * 1e3,
        "jobs_served": jobs,
        "warm_hit_rate": hits / jobs if jobs else 1.0,
        "simulations": simulated,
    }


def _measure_topology(members: int) -> dict:
    with tempfile.TemporaryDirectory() as scratch:
        fleet = Fleet(members, scratch)
        try:
            cold = _cold_phase(fleet)
            warm = _warm_phase(fleet)
            stats = _fleet_counters(fleet.client())
            per_member = [
                {
                    "address": member["address"],
                    "jobs": member["counters"]["jobs"],
                    "simulations": member["counters"]["simulations"],
                    "store_hits": member["counters"]["store_hits"],
                }
                for member in stats["members"]
            ]
        finally:
            fleet.stop()
    return {
        "members": members,
        "cold": cold,
        "warm": warm,
        "per_member": per_member,
    }


def test_service_fleet():
    single = _measure_topology(1)
    fleet = _measure_topology(FLEET_MEMBERS)

    # The acceptance contract: a cold paper grid served by a 2+ member
    # fleet performs each simulation exactly once, fleet-wide.
    assert fleet["cold"]["duplicate_simulations"] == 0, fleet["cold"]
    assert single["cold"]["duplicate_simulations"] == 0, single["cold"]
    # Both topologies saw the same distinct work.
    assert fleet["cold"]["store_entries"] == single["cold"]["store_entries"]
    # Warm phases are pure store/inflight traffic (asserted per-phase
    # too); record the rates.
    assert fleet["warm"]["simulations"] == 0
    assert single["warm"]["simulations"] == 0

    report = {
        "schema": "repro-bench-service/1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "fleet_members": FLEET_MEMBERS,
            "member_jobs": MEMBER_JOBS,
            "figure_mix": list(FIGURE_MIX),
            "zipf_s": ZIPF_S,
            "scale": dict(SERVICE_SCALE),
        },
        "fleet1": single,
        "fleetN": fleet,
        "speedups": {
            "warm_throughput_fleet_vs_single":
                fleet["warm"]["requests_per_second"]
                / single["warm"]["requests_per_second"],
            "cold_seconds_fleet_vs_single":
                single["cold"]["seconds"] / fleet["cold"]["seconds"],
        },
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        "Fleet serving under load "
        f"({CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, zipf "
        f"s={ZIPF_S})", "",
    ]
    for label, entry in (("1 daemon", single),
                         (f"{FLEET_MEMBERS} daemons", fleet)):
        cold, warm = entry["cold"], entry["warm"]
        lines.append(
            f"{label:12s}: cold {cold['seconds']:6.2f}s "
            f"({cold['simulations']} sims, "
            f"{cold['duplicate_simulations']} duplicated); warm "
            f"{warm['requests_per_second']:7,.1f} req/s, "
            f"p50 {warm['latency_p50_ms']:6.1f} ms, "
            f"p99 {warm['latency_p99_ms']:6.1f} ms, "
            f"hit rate {warm['warm_hit_rate']:.3f}")
    lines.append("")
    lines.append(
        f"warm throughput fleet vs single: "
        f"{report['speedups']['warm_throughput_fleet_vs_single']:.2f}x")
    member_jobs = ", ".join(
        f"{member['jobs']}" for member in fleet["per_member"])
    lines.append(f"fleet per-member jobs: {member_jobs}")
    text = "\n".join(lines)
    print("\n" + text)
    save_result("service", text)
