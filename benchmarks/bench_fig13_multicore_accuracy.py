"""Figure 13: multi-core level-prediction accuracy for the Table II mixes.

With one level predictor per core on a quad-core system, accuracy is lower
than single-core (more LLC contention, more aggregate prefetching, and the
LocMap is not updated on coherence events) but remains high, and the
multi-threaded PageRank runs show more harmful/lost-opportunity predictions
than single-threaded runs.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core.base import PredictionOutcome

from conftest import save_result


def test_figure13_multicore_accuracy(benchmark, multicore_results):
    def build_rows():
        rows = {}
        for mix, results in multicore_results.items():
            rows[mix] = results["lp"].accuracy_breakdown
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)

    order = [outcome.value for outcome in PredictionOutcome]
    table_rows = [[mix] + [round(rows[mix][key], 3) for key in order]
                  for mix in rows]
    table = format_table(["mix"] + order, table_rows,
                         title="Figure 13: multi-core prediction accuracy")
    print("\n" + table)
    save_result("fig13_multicore_accuracy", table)

    for mix, breakdown in rows.items():
        assert abs(sum(breakdown.values()) - 1.0) < 1e-6, mix
        # Accuracy stays high: harmful predictions remain a clear minority.
        assert breakdown["harmful"] < 0.35, mix

    # Multi-core accuracy is high overall but not perfect (contention and
    # un-tracked coherence events leave some mispredictions).
    average_harmful = sum(b["harmful"] for b in rows.values()) / len(rows)
    assert average_harmful < 0.2
