"""Figure 10: cache-hierarchy energy normalized to the baseline.

The paper compares the energy of the TAGE-2KB, TAGE-8KB, D2D and LP systems
(each normalized to the prefetching baseline) and reports that LP saves 16 %
of cache-hierarchy energy on average, that the 8 KB TAGE's larger access
energy erases its accuracy advantage, and that only ~1 % of energy goes to
misprediction recovery.
"""

from __future__ import annotations

from repro.analysis import format_table

from conftest import save_result

SYSTEMS = ["tage-2kb", "tage-8kb", "d2d", "lp"]


def test_figure10_normalized_energy(benchmark, single_core_results):
    def build_rows():
        rows = {}
        for app, results in single_core_results.items():
            baseline = results["baseline"]
            rows[app] = {name: results[name].normalized_energy_over(baseline)
                         for name in SYSTEMS}
            rows[app]["lp_recovery_fraction"] = (
                results["lp"].recovery.recovery_energy_fraction)
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)

    table_rows = [[app] + [round(rows[app][name], 3) for name in SYSTEMS]
                  + [round(rows[app]["lp_recovery_fraction"], 4)]
                  for app in sorted(rows)]
    averages = {name: sum(rows[app][name] for app in rows) / len(rows)
                for name in SYSTEMS}
    table_rows.append(["Average"] + [round(averages[name], 3)
                                     for name in SYSTEMS] + [""])
    table = format_table(["application"] + SYSTEMS + ["LP recovery fraction"],
                         table_rows,
                         title="Figure 10: cache-hierarchy energy "
                               "(normalized to baseline)")
    print("\n" + table)
    save_result("fig10_energy", table)

    # LP saves cache-hierarchy energy on average (paper: 16 % saving).
    assert averages["lp"] < 0.95
    # LP saves energy for the vast majority of applications (the paper has
    # only two applications with a slight increase).
    increases = sum(1 for app in rows if rows[app]["lp"] > 1.0)
    assert increases <= 5
    # The 8 KB TAGE costs more energy than the 2 KB TAGE (larger structure),
    # and both cost more than LP.
    assert averages["tage-8kb"] > averages["tage-2kb"] - 0.02
    assert averages["lp"] < averages["tage-8kb"]
    # Recovery energy is a small fraction of the hierarchy energy (~1 %).
    average_recovery = sum(rows[app]["lp_recovery_fraction"]
                           for app in rows) / len(rows)
    assert average_recovery < 0.05
