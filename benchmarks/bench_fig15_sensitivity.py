"""Figure 15: sensitivity of the LP speedup to LLC latency, LSQ and ROB size.

The paper evaluates five systems — the default configuration, a faster
sequential LLC, a parallel LLC, a parallel LLC with a 96-entry LSQ, and a very
aggressive core (ROB 224, LSQ 96) with a parallel LLC — and finds the average
LP speedup shrinks from 7.8 % to 5.6 % as the system becomes more aggressive,
but never disappears.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.sim.config import SystemConfig
from repro.sim.system import run_predictor_comparison
from repro.workloads import build_workload

from conftest import BENCH_ACCESSES, BENCH_WARMUP, geomean, save_result

#: A representative subset of the highlighted applications (keeps the sweep
#: affordable: 5 system configurations x 2 systems x 8 applications).
SENSITIVITY_APPS = ["gapbs.pr", "gapbs.bfs", "gups", "619.lbm", "605.mcf",
                    "hpcg", "nas.cg", "602.gcc"]

ORDER = ["default", "fast-seq-llc", "parallel-llc", "parallel-llc-lsq96",
         "aggressive-core"]


def _run_sensitivity():
    variants = SystemConfig.sensitivity_variants()
    speedups = {}
    for name in ORDER:
        config = variants[name]
        per_app = []
        for app in SENSITIVITY_APPS:
            results = run_predictor_comparison(
                build_workload(app), num_accesses=BENCH_ACCESSES,
                predictors=("baseline", "lp"), seed=0,
                config=config, warmup_accesses=BENCH_WARMUP)
            per_app.append(results["lp"].speedup_over(results["baseline"]))
        speedups[name] = geomean(per_app)
    return speedups


def test_figure15_sensitivity(benchmark):
    speedups = benchmark.pedantic(_run_sensitivity, rounds=1, iterations=1)

    table = format_table(
        ["configuration", "LP geomean speedup"],
        [[name, round(speedups[name], 3)] for name in ORDER],
        title="Figure 15: LP speedup under more aggressive systems")
    print("\n" + table)
    save_result("fig15_sensitivity", table)

    # Level prediction helps in every configuration.
    assert all(value > 1.0 for value in speedups.values())
    # The benefit shrinks (or at least does not grow much) as the memory
    # system and core become more aggressive, and the most aggressive
    # configuration yields the smallest (but still positive) speedup.
    assert speedups["aggressive-core"] <= speedups["default"] + 0.01
    assert speedups["aggressive-core"] >= 1.005
