"""Figure 2: per-level miss counts across execution for six applications.

The paper shows miss traces for hpcg (both levels filter), gapbs.tc (L2
ineffective), nas.ua (L3 ineffective), gups (nothing filters), 619.lbm
(streaming: misses at every level) and 602.gcc (phase-dependent behaviour).
This benchmark regenerates the windowed per-level miss series on the baseline
system and checks each application's characteristic signature.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.sim.config import SystemConfig
from repro.sim.stats import run_with_windows
from repro.sim.system import SimulatedSystem
from repro.workloads import build_workload

from conftest import BENCH_ACCESSES, save_result

FIGURE2_APPS = ["hpcg", "gapbs.tc", "nas.ua", "gups", "619.lbm", "602.gcc"]


def _run_traces():
    windows_per_app = {}
    # Long enough that looping workloads (hpcg's grid sweep in particular)
    # revisit their working set, so LLC filtering becomes visible the way it
    # is in the paper's full-length runs.
    accesses = max(BENCH_ACCESSES * 2, 30_000)
    for app in FIGURE2_APPS:
        system = SimulatedSystem(SystemConfig.paper_single_core("baseline"))
        trace = build_workload(app).generate(accesses, seed=0)
        windows_per_app[app] = run_with_windows(system.hierarchy, trace,
                                                window_size=accesses // 8)
    return windows_per_app


def test_figure2_miss_traces(benchmark):
    windows_per_app = benchmark.pedantic(_run_traces, rounds=1, iterations=1)

    rows = []
    totals = {}
    for app, windows in windows_per_app.items():
        l1 = sum(w.l1_misses for w in windows)
        l2 = sum(w.l2_misses for w in windows)
        l3 = sum(w.l3_misses for w in windows)
        totals[app] = (l1, l2, l3)
        for window in windows:
            rows.append([app, window.window_index, window.l1_misses,
                         window.l2_misses, window.l3_misses])
    table = format_table(
        ["application", "window", "L1 misses", "L2 misses", "L3 misses"],
        rows, title="Figure 2: windowed per-level miss counts")
    print("\n" + table)
    save_result("fig02_miss_traces", table)

    # hpcg: both L2 and L3 filter a substantial fraction of misses.
    l1, l2, l3 = totals["hpcg"]
    assert l2 < 0.8 * l1
    assert l3 < l2

    # gapbs.tc: L2 is ineffective (L2 misses close to L1 misses).
    l1, l2, l3 = totals["gapbs.tc"]
    assert l2 > 0.6 * l1

    # gups: nothing filters; almost every miss reaches memory.
    l1, l2, l3 = totals["gups"]
    assert l3 > 0.85 * l1

    # nas.ua: the LLC adds little over L2 (misses at L3 close to L2).
    l1, l2, l3 = totals["nas.ua"]
    assert l3 > 0.5 * l2

    # Every application: windowed counts are monotone across levels.
    for app, windows in windows_per_app.items():
        for window in windows:
            assert window.l1_misses >= window.l2_misses >= window.l3_misses
