"""Figure 7: breakdown of level-prediction outcomes per application.

Each prediction is classified as correctly-sequential, correct skip, lost
opportunity (wrongly sequential) or harmful (wrongly skipped, requiring
recovery).  The paper reports very high overall accuracy, with harmful
fractions under ~20 % even in the worst cases and a large fraction of useful
skips for the applications that benefit.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core.base import PredictionOutcome

from conftest import save_result


def test_figure7_prediction_breakdown(benchmark, single_core_results):
    def build_rows():
        rows = {}
        for app, results in single_core_results.items():
            stats = results["lp"].predictor_stats
            rows[app] = stats.breakdown()
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)

    order = [outcome.value for outcome in PredictionOutcome]
    table_rows = [[app] + [round(rows[app][key], 3) for key in order]
                  for app in sorted(rows)]
    table = format_table(["application"] + order, table_rows,
                         title="Figure 7: level prediction outcome breakdown")
    print("\n" + table)
    save_result("fig07_accuracy", table)

    harmful = {app: row["harmful"] for app, row in rows.items()}
    skips = {app: row["skip"] for app, row in rows.items()}

    # Breakdown fractions are consistent.
    for app, row in rows.items():
        assert abs(sum(row.values()) - 1.0) < 1e-6, app

    # Overall accuracy is high: harmful predictions are rare for almost all
    # applications (the paper's worst cases stay around 20 %).
    assert sum(h <= 0.25 for h in harmful.values()) >= len(harmful) - 2
    average_harmful = sum(harmful.values()) / len(harmful)
    assert average_harmful < 0.10

    # The predictor finds a large number of useful skips for the applications
    # the paper highlights (graph analytics and gups).
    for app in ("gapbs.pr", "gapbs.tc", "gups", "nas.is"):
        assert skips[app] > 0.5, app
