"""Table II: the multi-program and multi-threaded workload mixes.

Regenerates the mix composition table and validates that the generated traces
have the structural properties the multi-core evaluation relies on (disjoint
address spaces for multi-program mixes, shared data for multi-threaded runs).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.workloads import MIXES, generate_mix_traces

from conftest import save_result


def _build_table_rows():
    rows = []
    for name, mix in MIXES.items():
        rows.append([name, ", ".join(mix.applications),
                     "multi-threaded" if mix.multithreaded else "multi-program"])
    return rows


def test_table2_workload_mixes(benchmark):
    rows = benchmark.pedantic(_build_table_rows, rounds=1, iterations=1)

    table = format_table(["mix", "applications", "kind"], rows,
                         title="Table II: multi-program and multi-threaded mixes")
    print("\n" + table)
    save_result("table2_mixes", table)

    # Composition matches the paper.
    assert MIXES["mix1"].applications == ("gapbs.bfs", "619.lbm", "nas.lu",
                                          "bmt")
    assert MIXES["mix4"].applications == ("627.cam", "nas.cg", "621.wrf",
                                          "nas.bt")
    assert MIXES["MT2"].applications == ("gapbs.pr",) * 4

    # Multi-program mixes occupy disjoint address regions; threads share one.
    program_traces = generate_mix_traces("mix3", accesses_per_core=64, seed=0)
    regions = [{a.address >> 36 for a in trace} for trace in program_traces]
    assert all(len(region) == 1 for region in regions)
    assert len({next(iter(region)) for region in regions}) == 4

    thread_traces = generate_mix_traces("MT1", accesses_per_core=300, seed=0)
    shared = ({a.address // 64 for a in thread_traces[0]}
              & {a.address // 64 for a in thread_traces[1]})
    assert shared
