"""Figure 14: multi-core IPC and energy-efficiency improvement.

The paper reports that level prediction always improves the Table II mixes —
a geomean speedup of ~6 % (against an ideal potential of ~7 %) and an ~8 %
energy-efficiency improvement — with the high-MPKI mixes gaining the most and
the all-low-MPKI mix (mix4) gaining the least.
"""

from __future__ import annotations

from repro.analysis import format_table

from conftest import geomean, save_result


def test_figure14_multicore_performance(benchmark, multicore_results):
    def build_rows():
        rows = {}
        for mix, results in multicore_results.items():
            baseline = results["baseline"]
            lp = results["lp"]
            ideal = results["ideal"]
            rows[mix] = {
                "lp_speedup": lp.speedup_over(baseline),
                "ideal_speedup": ideal.speedup_over(baseline),
                "lp_energy_efficiency": lp.energy_efficiency_over(baseline),
            }
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)

    table_rows = [[mix, round(rows[mix]["lp_speedup"], 3),
                   round(rows[mix]["ideal_speedup"], 3),
                   round(rows[mix]["lp_energy_efficiency"], 3)]
                  for mix in rows]
    lp_geo = geomean([rows[mix]["lp_speedup"] for mix in rows])
    ideal_geo = geomean([rows[mix]["ideal_speedup"] for mix in rows])
    eff_geo = geomean([rows[mix]["lp_energy_efficiency"] for mix in rows])
    table_rows.append(["G-mean", round(lp_geo, 3), round(ideal_geo, 3),
                       round(eff_geo, 3)])
    table = format_table(
        ["mix", "LP speedup", "Ideal speedup", "LP energy efficiency"],
        table_rows,
        title="Figure 14: multi-core IPC and energy efficiency vs baseline")
    print("\n" + table)
    save_result("fig14_multicore_perf", table)

    # Level prediction always provides some speedup on the mixes.
    assert all(rows[mix]["lp_speedup"] > 0.99 for mix in rows)
    # Geomean speedup is positive and captures a large share of the ideal
    # potential (paper: 6 % of a 7 % potential).
    assert lp_geo > 1.01
    assert ideal_geo >= lp_geo - 1e-6
    assert lp_geo > 1.0 + 0.5 * (ideal_geo - 1.0)
    # Energy efficiency improves on average.
    assert eff_geo > 1.0
