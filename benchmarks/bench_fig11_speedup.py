"""Figure 11: single-core IPC improvement of every compared system.

This is the paper's headline result: geometric-mean speedups of 4.3 %
(TAGE-2KB), 6.9 % (TAGE-8KB), 8.2 % (D2D), 7.8 % (LP) and 8.4 % (Ideal) over
an aggressively prefetching baseline, with the largest gains for the
applications inside the green box of Figure 1 (graph analytics, gups, lbm,
fotonik3d) and LP within a few percent of the far more intrusive D2D design.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.workloads import get_application

from conftest import geomean, save_result

SYSTEMS = ["tage-2kb", "tage-8kb", "d2d", "lp", "ideal"]


def test_figure11_ipc_improvement(benchmark, single_core_results):
    def build_rows():
        rows = {}
        for app, results in single_core_results.items():
            baseline = results["baseline"]
            rows[app] = {name: results[name].speedup_over(baseline)
                         for name in SYSTEMS}
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)

    table_rows = [[app] + [round(rows[app][name], 3) for name in SYSTEMS]
                  for app in sorted(rows)]
    geomeans = {name: geomean([rows[app][name] for app in rows])
                for name in SYSTEMS}
    table_rows.append(["G-mean"] + [round(geomeans[name], 3)
                                    for name in SYSTEMS])
    table = format_table(["application"] + SYSTEMS, table_rows,
                         title="Figure 11: IPC improvement over the baseline")
    print("\n" + table)
    save_result("fig11_speedup", table)

    # Headline: LP provides a mid-single-digit-to-~10 % geomean speedup
    # (paper: 7.8 %) over a baseline that already prefetches aggressively.
    assert 1.03 <= geomeans["lp"] <= 1.15

    # Ordering of the compared systems (who wins).
    assert geomeans["ideal"] >= geomeans["d2d"] - 1e-6
    assert geomeans["d2d"] >= geomeans["lp"] - 1e-3
    assert geomeans["lp"] >= geomeans["tage-8kb"] - 5e-3
    assert geomeans["ideal"] > 1.0 and geomeans["tage-2kb"] > 0.98

    # LP is within a few percent of D2D and Ideal (paper: within 10 % of the
    # ideal speedup and within 5 % of D2D).
    assert geomeans["d2d"] - geomeans["lp"] < 0.03
    assert geomeans["ideal"] - geomeans["lp"] < 0.03

    # The green-box applications clearly benefit (graph analytics, gups, lbm,
    # fotonik3d all gain several percent).  Note: unlike the paper, several
    # red-box applications benefit comparably here because their synthetic
    # traces are more LLC-bound than the originals; see EXPERIMENTS.md.
    high = [rows[app]["lp"] for app in rows
            if get_application(app).expected_benefit == "high"]
    assert geomean(high) > 1.05
    assert min(high) > 1.02

    # Every application sees a benefit (or at worst breaks even) with LP.
    assert all(speedup > 0.98 for speedup in
               (rows[app]["lp"] for app in rows))
