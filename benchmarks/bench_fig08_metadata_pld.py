"""Figure 8: metadata-cache miss ratio and PLD misprediction ratio.

The paper shows that applications with low overall accuracy are *not* simply
the ones with high metadata-cache miss ratios: when the metadata cache misses,
the Popular Levels Detector still predicts well (its misprediction ratio stays
moderate), and the average metadata hit ratio across applications is high
(~95 % in the paper).
"""

from __future__ import annotations

from repro.analysis import format_table

from conftest import save_result


def test_figure8_metadata_and_pld(benchmark, single_core_results):
    def build_rows():
        rows = {}
        for app, results in single_core_results.items():
            lp = results["lp"]
            rows[app] = (lp.metadata_miss_ratio, lp.pld_misprediction_ratio)
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)

    table_rows = [[app, round(meta, 3), round(pld, 3)]
                  for app, (meta, pld) in sorted(rows.items())]
    average_meta = sum(v[0] for v in rows.values()) / len(rows)
    average_pld = sum(v[1] for v in rows.values()) / len(rows)
    table_rows.append(["Average", round(average_meta, 3), round(average_pld, 3)])
    table = format_table(
        ["application", "metadata miss ratio", "PLD misprediction ratio"],
        table_rows,
        title="Figure 8: metadata cache miss ratio and PLD misprediction ratio")
    print("\n" + table)
    save_result("fig08_metadata_pld", table)

    # Ratios are well formed.
    for app, (meta, pld) in rows.items():
        assert 0.0 <= meta <= 1.0 and 0.0 <= pld <= 1.0, app

    # Applications with strong locality keep the metadata cache effective.
    for app in ("627.cam", "602.gcc"):
        assert rows[app][0] < 0.5, app

    # Graph analytics and gups stress the metadata cache (high miss ratios),
    # exactly the applications the paper calls out as relying on the PLD.
    assert rows["gups"][0] > 0.5
    assert rows["gapbs.pr"][0] > 0.3

    # The PLD remains useful when it is exercised: for the metadata-stressed
    # applications its misprediction ratio stays moderate.
    for app in ("gups", "gapbs.pr", "gapbs.bc"):
        assert rows[app][1] < 0.5, app
