"""Section V.F: overhead analysis of the level predictor.

The paper's design costs a 2 KiB metadata cache and three 32-bit counters per
core, 2 bits of LocMap metadata per 64-byte block (0.39 % of physical memory),
one cycle on the L1 miss path, and no directory changes.  This benchmark
regenerates the overhead table and compares the on-chip storage of every
evaluated predictor.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.sim.system import make_predictor

from conftest import save_result


def _build_report():
    lp = make_predictor("lp")
    report = lp.overhead_report()
    storage = {name: make_predictor(name).storage_bits() // 8
               for name in ("baseline", "tage-2kb", "tage-8kb", "d2d", "lp")}
    return report, storage


def test_overhead_analysis(benchmark):
    report, storage = benchmark.pedantic(_build_report, rounds=1, iterations=1)

    rows = [[key, value] for key, value in report.items()]
    rows += [[f"on-chip storage ({name})", f"{size} bytes"]
             for name, size in storage.items()]
    table = format_table(["quantity", "value"], rows,
                         title="Section V.F: overhead analysis")
    print("\n" + table)
    save_result("overhead", table)

    # Paper numbers: 2 KiB metadata cache, three 32-bit counters, 0.39 %
    # memory overhead, one added cycle on the L1 miss path.
    assert report["metadata_cache_bytes"] == 2048
    assert report["pld_counter_bits"] == 96
    assert abs(report["memory_overhead_fraction"] - 0.0039) < 2e-4
    assert report["prediction_latency_cycles"] == 1
    # LP's on-chip cost is comparable to the 2 KB TAGE and far below the 8 KB
    # TAGE and the D2D Hub.
    assert storage["lp"] <= storage["tage-2kb"] + 64
    assert storage["lp"] < storage["tage-8kb"]
    assert storage["lp"] < storage["d2d"]
    assert storage["baseline"] == 0
