"""Byte-compatibility driver for the declarative hierarchy refactor.

Runs the golden grid with every job's system config rewritten onto a
:class:`~repro.memory.spec.HierarchySpec` built *from* its legacy
hierarchy — names and every other config field preserved — and writes
the stats file exactly like ``repro run golden`` would.  Because a
legacy-exact spec canonicalizes to the legacy store key, the resulting
store must be byte-identical to a plain golden run; the CI
``hierarchy-compat`` job diffs the two.

Usage::

    PYTHONPATH=src python benchmarks/hierarchy_compat.py <store-dir>
"""

from __future__ import annotations

import dataclasses
import sys

from repro.experiments import EXPERIMENTS, GOLDEN_SCALE, canonical_json
from repro.memory.spec import HierarchySpec
from repro.sim.config import SystemConfig
from repro.sim.engine import MixJob, SimulationEngine
from repro.sim.store import ResultStore


def spec_substituted_jobs():
    """The golden job list with every hierarchy replaced by its spec."""
    experiment = EXPERIMENTS["golden"]
    rewritten = []
    for job in experiment.jobs(GOLDEN_SCALE):
        if job.config is not None:
            base = job.config
        elif isinstance(job, MixJob):
            base = SystemConfig.paper_multi_core()
        else:
            base = SystemConfig.paper_single_core()
        spec = HierarchySpec.from_legacy(base.hierarchy)
        assert spec.is_legacy_exact(), base.name
        config = dataclasses.replace(base, hierarchy=spec)
        rewritten.append(dataclasses.replace(job, config=config))
    return experiment, rewritten


def main(store_root: str) -> int:
    store = ResultStore(store_root)
    experiment, jobs = spec_substituted_jobs()
    engine = SimulationEngine(store=store)
    results = engine.run(jobs)
    stats = experiment.summarize(results, GOLDEN_SCALE)
    stats_path = store.root / "stats" / "golden.json"
    stats_path.parent.mkdir(parents=True, exist_ok=True)
    stats_path.write_text(canonical_json(stats), encoding="utf-8")
    store.flush_index()
    print(f"golden grid via HierarchySpec configs: {len(jobs)} jobs, "
          f"{store.misses} simulated, {store.hits} from store "
          f"-> {stats_path}")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        raise SystemExit(2)
    raise SystemExit(main(sys.argv[1]))
