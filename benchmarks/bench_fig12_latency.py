"""Figure 12: average memory access latency, LP and Ideal vs. the baseline.

The paper reports that level prediction reduces average memory access latency
by ~20 % on average, with graph applications improving the most because they
miss at every level and skip the most useless lookups.
"""

from __future__ import annotations

from repro.analysis import format_table

from conftest import save_result


def test_figure12_memory_access_latency(benchmark, single_core_results):
    def build_rows():
        rows = {}
        for app, results in single_core_results.items():
            baseline = results["baseline"].average_memory_access_latency
            lp = results["lp"].average_memory_access_latency
            ideal = results["ideal"].average_memory_access_latency
            rows[app] = {
                "baseline_cycles": baseline,
                "lp_relative": lp / baseline if baseline else 1.0,
                "ideal_relative": ideal / baseline if baseline else 1.0,
            }
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)

    table_rows = [[app, round(rows[app]["baseline_cycles"], 1),
                   round(rows[app]["lp_relative"], 3),
                   round(rows[app]["ideal_relative"], 3)]
                  for app in sorted(rows)]
    avg_lp = sum(rows[app]["lp_relative"] for app in rows) / len(rows)
    avg_ideal = sum(rows[app]["ideal_relative"] for app in rows) / len(rows)
    table_rows.append(["Average", "", round(avg_lp, 3), round(avg_ideal, 3)])
    table = format_table(
        ["application", "baseline AMAT (cycles)", "LP (relative)",
         "Ideal (relative)"],
        table_rows,
        title="Figure 12: average memory access latency relative to baseline")
    print("\n" + table)
    save_result("fig12_latency", table)

    # LP reduces the average memory access latency substantially on average
    # (paper: ~20 %; the exact figure depends on the trace mix).
    assert avg_lp < 0.97
    # Ideal is at least as good as LP everywhere.
    for app in rows:
        assert rows[app]["ideal_relative"] <= rows[app]["lp_relative"] + 1e-6
    # Graph applications and gups obtain clearly lower latency with LP.
    for app in ("gapbs.pr", "gapbs.bc", "gups"):
        assert rows[app]["lp_relative"] < 0.95, app
