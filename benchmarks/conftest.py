"""Shared fixtures and helpers for the figure/table reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's evaluation:
it runs the relevant simulations, prints the same rows/series the paper plots,
writes them to ``benchmarks/results/`` and asserts the qualitative shape
(who wins, roughly by how much) that the reproduction is expected to preserve.

Simulation volume is controlled with environment variables so the suite can
be scaled up for higher-fidelity runs:

* ``REPRO_BENCH_ACCESSES`` — measured accesses per application (default 4000)
* ``REPRO_BENCH_WARMUP`` — warm-up accesses per application (default 1200)
* ``REPRO_JOBS`` — worker processes for the simulation engine (default 1);
  the session fixtures fan the (21 application x 6 system) and (mix x
  predictor) grids out over the :class:`repro.sim.SimulationEngine`, whose
  parallel results are bit-identical to serial ones.
* ``REPRO_STORE`` — optional results-store directory (see
  :mod:`repro.sim.store`); when set, the session grids read previously
  computed cells through the store instead of resimulating them, so a
  repeated benchmark session (or one following ``python -m repro run``
  over the same grid) performs zero redundant simulations.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Sequence

import pytest

from repro.cpu.ooo_core import geometric_mean
# The Figures 10-12 system list comes from the experiment registry, so the
# benchmarks and ``python -m repro`` can never drift apart on the grid.
from repro.experiments import COMPARED_SYSTEMS
from repro.sim.config import SystemConfig
from repro.sim.engine import SimulationEngine
from repro.sim.system import SimulationResult
from repro.workloads import HIGHLIGHTED_APPLICATIONS, MIXES

#: Number of measured accesses per application per system.
BENCH_ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", "4000"))
#: Number of cache/predictor warm-up accesses excluded from statistics.
BENCH_WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", "1200"))
#: Accesses per core for the multi-core mixes.
BENCH_MIX_ACCESSES = int(os.environ.get("REPRO_BENCH_MIX_ACCESSES", "2500"))

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, text: str) -> Path:
    """Write a generated table to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def geomean(values: Sequence[float]) -> float:
    return geometric_mean(values)


@pytest.fixture(scope="session")
def single_core_results() -> Dict[str, Dict[str, SimulationResult]]:
    """Run the 21 highlighted applications on all six compared systems.

    This is the data behind Figures 7, 8, 9, 10, 11 and 12; the whole
    (21 application x 6 system) grid runs through the simulation engine once
    per benchmark session — each application trace is generated a single
    time and shared by all six systems, and the 126 jobs fan out over
    ``REPRO_JOBS`` worker processes when configured.
    """
    engine = SimulationEngine()
    return engine.run_grid(list(HIGHLIGHTED_APPLICATIONS), COMPARED_SYSTEMS,
                           num_accesses=BENCH_ACCESSES,
                           warmup_accesses=BENCH_WARMUP, seed=0)


@pytest.fixture(scope="session")
def multicore_results():
    """Run the Table II mixes under the baseline, LP and Ideal systems."""
    engine = SimulationEngine()
    return engine.run_mix_grid(list(MIXES), ("baseline", "lp", "ideal"),
                               accesses_per_core=BENCH_MIX_ACCESSES, seed=0,
                               config=SystemConfig.paper_multi_core())
