"""End-to-end simulation throughput: serial vs. engine-parallel.

This benchmark measures how fast the reproduction can push memory accesses
through full systems — the quantity that bounds every figure's simulation
budget — and writes a machine-readable ``BENCH_throughput.json`` at the
repository root so future PRs have a performance trajectory to regress
against.

Three configurations are timed on the Figure 10-12 grid (the highlighted
applications x the six compared systems):

* ``legacy_serial`` — the pre-engine driver shape: one
  :class:`SimulatedSystem` per (application, system) with the trace
  regenerated for every system (what ``run_predictor_comparison`` did before
  the engine existed);
* ``engine_serial`` — the engine's deterministic serial path with the shared
  trace cache (each application trace generated once for all six systems);
* ``engine_parallel`` — the same jobs fanned out over ``max(2, REPRO_JOBS)``
  worker processes.

The grid is then pushed through a fresh content-addressed results store
(:mod:`repro.sim.store`) twice: the populate pass persists every job, the
replay pass must serve all of them from disk.  The store hit/miss counters
and the replay throughput go into ``BENCH_throughput.json`` next to the raw
engine numbers, so the persistence layer's overhead and payoff are part of
the recorded performance trajectory.

The sharded store is additionally exercised at scale: the registry's
``sweep`` grid — several times the paper's largest figure grid — is
populated into (and replayed from) a fresh store at a small fixed
simulation size, recording entry counts, shard counts and populate/replay
rates for a store bigger than any single figure needs.

Two further sections cover the columnar trace substrate
(:mod:`repro.trace`): trace throughput (legacy record-list generation vs.
columnar buffer generation vs. the warm path that loads spilled ``.npz``
columns through a fresh trace cache, plus the memory compaction ratio) and
buffer-replay throughput (one system replaying the same trace from a
buffer vs. from a record list, asserted bit-identical).

A ``fault_plane`` section records what the fault-injection hooks
(:mod:`repro.faults`) cost: the per-call price of a disabled
:func:`~repro.faults.fault_point`, the price when a plane is armed but
never fires, and a second faults-disabled grid pass asserted to be within
ordinary run-to-run noise of the ``engine_serial`` measurement.

A ``batch_kernel`` section compares the two trace-execution kernels
(:mod:`repro.sim.kernels`): a fresh-simulate grid pass per kernel
(asserted bit-identical), a fixed-size repeat-run replay microbench that
isolates the bulk path's win, and per-app replay ratios from the
repeat-heavy best case down to the random-access worst case.

Per-system end-to-end throughput is also reported for the baseline and
``lp`` systems alone.  The benchmark asserts that parallel execution
reproduces serial results bit-identically; wall-clock speedups are recorded
in the JSON rather than asserted, because they depend on the host's core
count.
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.sim.engine import SimulationEngine, SimulationJob, TRACE_CACHE, \
    TraceCache, execute_job, expand_grid
from repro.sim.options import EngineOptions
from repro.sim.store import ResultStore
from repro.sim.system import SimulatedSystem
from repro.sim.config import SystemConfig
from repro.trace import KIND_LOAD, TraceBuffer
from repro.workloads import HIGHLIGHTED_APPLICATIONS, build_workload

from conftest import BENCH_ACCESSES, BENCH_WARMUP, COMPARED_SYSTEMS, save_result

#: Worker processes for the parallel measurement (>= 2 so the pool is real).
PARALLEL_JOBS = max(2, int(os.environ.get("REPRO_JOBS", "0") or 0))

#: Host cores available to the parallel/sharded sections.  On a
#: single-core host every "parallel vs serial" wall-clock ratio measures
#: pool overhead, not parallelism, so those speedup entries are annotated
#: as not meaningful (and never asserted on) rather than recorded as if
#: they were wins.
CPU_COUNT = os.cpu_count() or 1

#: The documented ceiling on the fast-approximate sharding mode's
#: relative statistics delta (see README "Within-job sharding").  The
#: delta shrinks with trace length — sub-1% on cycles at 20k accesses —
#: but warm-up truncation effects can reach ~17% on cycle counts at the
#: 400-access golden scale, so the documented bound is the conservative
#: any-scale one.
APPROX_DELTA_BOUND = 0.25

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def _grid_accesses() -> int:
    """Total demand accesses one full grid pass simulates (incl. warm-up)."""
    return (len(HIGHLIGHTED_APPLICATIONS) * len(COMPARED_SYSTEMS)
            * (BENCH_ACCESSES + BENCH_WARMUP))


def _run_legacy_serial():
    """The pre-engine driver: fresh system + fresh trace per grid cell."""
    results = {}
    for app in HIGHLIGHTED_APPLICATIONS:
        per_system = {}
        for name in COMPARED_SYSTEMS:
            system = SimulatedSystem(
                SystemConfig.paper_single_core().with_predictor(name))
            per_system[name] = system.run_workload(
                build_workload(app), BENCH_ACCESSES, seed=0,
                warmup_accesses=BENCH_WARMUP)
        results[app] = per_system
    return results


def _run_engine(jobs: int, store=False):
    engine = SimulationEngine(jobs=jobs, store=store)
    return engine.run_grid(list(HIGHLIGHTED_APPLICATIONS), COMPARED_SYSTEMS,
                           num_accesses=BENCH_ACCESSES,
                           warmup_accesses=BENCH_WARMUP, seed=0)


def _run_store_passes(store_dir: str):
    """Populate a fresh store with the grid, then replay it from disk."""
    populate_store = ResultStore(store_dir)
    populate, populate_seconds = _timed(
        lambda: _run_engine(jobs=1, store=populate_store))
    replay_store = ResultStore(store_dir)
    replay, replay_seconds = _timed(
        lambda: _run_engine(jobs=1, store=replay_store))
    report = {
        "populate": {
            "seconds": populate_seconds,
            "hits": populate_store.hits,
            "misses": populate_store.misses,
            "unkeyed": populate_store.unkeyed,
        },
        "replay": {
            "seconds": replay_seconds,
            "hits": replay_store.hits,
            "misses": replay_store.misses,
            "unkeyed": replay_store.unkeyed,
            "accesses_per_second": _grid_accesses() / replay_seconds,
        },
    }
    return populate, replay, report


#: Fixed tiny per-job sizes for the sweep-scale store measurement: the
#: section measures the *store* (entry counts, shard spread, replay rate),
#: whose entry sizes do not grow with simulated accesses, so the simulate
#: pass is kept cheap.
SWEEP_STORE_SCALE = dict(accesses=150, warmup=40, mix_accesses=90)


def _sweep_store_report(store_dir: str):
    """Populate/replay the registry's sweep grid through a sharded store.

    The sweep grid is several times the paper's largest figure grid — the
    scale the sharded layout exists for.  Asserts the replay pass is pure
    store traffic and that entries actually spread across shard files.
    """
    from repro.experiments import EXPERIMENTS, Scale

    jobs = EXPERIMENTS["sweep"].jobs(Scale(**SWEEP_STORE_SCALE))
    populate_store = ResultStore(store_dir)
    _, populate_seconds = _timed(
        lambda: SimulationEngine(jobs=1, store=populate_store).run(jobs))
    populate_store.flush_index()
    replay_store = ResultStore(store_dir)
    _, replay_seconds = _timed(
        lambda: SimulationEngine(jobs=1, store=replay_store).run(jobs))

    assert replay_store.misses == 0
    assert replay_store.hits == len(jobs)
    assert len(replay_store) == len(jobs)

    shard_files = sorted(
        (Path(store_dir) / "shards").glob("*.jsonl"))
    assert len(shard_files) > 1  # entries spread across shard files
    paper_grid_jobs = len(HIGHLIGHTED_APPLICATIONS) * len(COMPARED_SYSTEMS)
    assert len(jobs) >= 3 * paper_grid_jobs

    return {
        "jobs": len(jobs),
        "paper_grid_jobs": paper_grid_jobs,
        "scale_vs_paper_grid": len(jobs) / paper_grid_jobs,
        "shards": len(shard_files),
        "store_bytes": sum(path.stat().st_size for path in shard_files),
        "per_job_scale": dict(SWEEP_STORE_SCALE),
        "populate": {
            "seconds": populate_seconds,
            "jobs_per_second": len(jobs) / populate_seconds,
        },
        "replay": {
            "seconds": replay_seconds,
            "jobs_per_second": len(jobs) / replay_seconds,
            "hits": replay_store.hits,
            "misses": replay_store.misses,
        },
    }


def _hierarchy_sweep_report(store_dir: str):
    """Populate/replay the ``hierarchy-sweep`` lattice through a store.

    The lattice is the declarative config-space grid (chain depth x LLC
    size x LLC latency x predictor; see
    :class:`repro.experiments.HierarchySweepExperiment`) — every job runs
    a :class:`~repro.memory.spec.HierarchySpec`-configured system, so the
    measurement covers the N-level chain path end to end.  Asserts the
    replay pass recomputes nothing: spec-keyed jobs must dedup exactly
    like the fixed paper configurations.
    """
    from repro.experiments import EXPERIMENTS, Scale

    jobs = EXPERIMENTS["hierarchy-sweep"].jobs(Scale(**SWEEP_STORE_SCALE))
    populate_store = ResultStore(store_dir)
    _, populate_seconds = _timed(
        lambda: SimulationEngine(jobs=1, store=populate_store).run(jobs))
    populate_store.flush_index()
    replay_store = ResultStore(store_dir)
    _, replay_seconds = _timed(
        lambda: SimulationEngine(jobs=1, store=replay_store).run(jobs))

    assert replay_store.misses == 0  # zero recomputation on re-run
    assert replay_store.hits == len(jobs)

    return {
        "jobs": len(jobs),
        "per_job_scale": dict(SWEEP_STORE_SCALE),
        "populate": {
            "seconds": populate_seconds,
            "jobs_per_second": len(jobs) / populate_seconds,
        },
        "replay": {
            "seconds": replay_seconds,
            "jobs_per_second": len(jobs) / replay_seconds,
            "hits": replay_store.hits,
            "misses": replay_store.misses,
        },
    }


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _legacy_trace_bytes(traces) -> int:
    """Rough in-memory footprint of the list-of-records representation."""
    total = 0
    for trace in traces:
        total += sys.getsizeof(trace)
        if trace:
            # Every slot object is the same size; one pointer per list slot.
            total += len(trace) * (sys.getsizeof(trace[0]) + 8)
    return total


def _trace_substrate_report():
    """Throughput of the columnar trace pipeline (generate / spill / load).

    Measures legacy record-list generation against columnar buffer
    generation, then the warm path — loading the spilled ``.npz`` columns
    back through a fresh :class:`TraceCache` — which is what every re-run,
    warm worker and repeated grid actually pays.
    """
    apps = list(HIGHLIGHTED_APPLICATIONS)
    per_app = BENCH_ACCESSES + BENCH_WARMUP
    total_accesses = len(apps) * per_app

    legacy, legacy_seconds = _timed(
        lambda: [build_workload(app).generate(per_app, seed=0)
                 for app in apps])
    buffers, buffer_seconds = _timed(
        lambda: [build_workload(app).generate_buffer(per_app, seed=0)
                 for app in apps])
    for buffer, records in zip(buffers, legacy):
        assert buffer == records  # field-for-field identical streams

    buffer_bytes = sum(buffer.nbytes for buffer in buffers)
    legacy_bytes = _legacy_trace_bytes(legacy)

    with tempfile.TemporaryDirectory() as trace_dir:
        cold = TraceCache(spill_dir=trace_dir)
        _, spill_seconds = _timed(
            lambda: [cold.get(app, per_app, seed=0) for app in apps])
        warm = TraceCache(spill_dir=trace_dir)
        loaded, warm_seconds = _timed(
            lambda: [warm.get(app, per_app, seed=0) for app in apps])
        assert cold.disk_spills == len(apps)
        assert warm.disk_hits == len(apps)
        for buffer, original in zip(loaded, buffers):
            assert buffer == original  # npz round-trip is exact

    return {
        "accesses": total_accesses,
        "generate_legacy": {
            "seconds": legacy_seconds,
            "accesses_per_second": total_accesses / legacy_seconds,
        },
        "generate_buffer": {
            "seconds": buffer_seconds,
            "accesses_per_second": total_accesses / buffer_seconds,
        },
        "generate_and_spill": {
            "seconds": spill_seconds,
            "accesses_per_second": total_accesses / spill_seconds,
        },
        "warm_load": {
            "seconds": warm_seconds,
            "accesses_per_second": total_accesses / warm_seconds,
        },
        "memory": {
            "buffer_bytes": buffer_bytes,
            "legacy_bytes_estimate": legacy_bytes,
            "bytes_per_access_buffer": buffer_bytes / total_accesses,
            "bytes_per_access_legacy": legacy_bytes / total_accesses,
            "compaction_ratio": legacy_bytes / buffer_bytes,
        },
        "speedups": {
            "warm_load_vs_generate": buffer_seconds / warm_seconds,
            "warm_load_vs_legacy_generate": legacy_seconds / warm_seconds,
        },
    }


def _buffer_replay_report():
    """Hierarchy replay throughput: columnar buffer vs. record list.

    Same accesses, same system; the buffer path consumes the precomputed
    block/page columns through ``access_decomposed`` while the record path
    decomposes every access inline.  Results must agree bit-for-bit.
    """
    app = "gapbs.pr"
    per_app = BENCH_ACCESSES + BENCH_WARMUP
    workload = build_workload(app)
    records = workload.generate(per_app, seed=0)
    buffer = workload.generate_buffer(per_app, seed=0)

    record_system = SimulatedSystem(
        SystemConfig.paper_single_core().with_predictor("lp"))
    via_records, record_seconds = _timed(
        lambda: record_system.run_trace(records, app))
    buffer_system = SimulatedSystem(
        SystemConfig.paper_single_core().with_predictor("lp"))
    via_buffer, buffer_seconds = _timed(
        lambda: buffer_system.run_trace(buffer, app))

    assert via_buffer.ipc == via_records.ipc
    assert via_buffer.cache_hierarchy_energy_nj == \
        via_records.cache_hierarchy_energy_nj
    assert via_buffer.hierarchy_stats.total_demand_latency == \
        via_records.hierarchy_stats.total_demand_latency

    return {
        "workload": app,
        "accesses": per_app,
        "records": {
            "seconds": record_seconds,
            "accesses_per_second": per_app / record_seconds,
        },
        "buffer": {
            "seconds": buffer_seconds,
            "accesses_per_second": per_app / buffer_seconds,
        },
        "buffer_vs_records": record_seconds / buffer_seconds,
    }


def _crafted_repeat_buffer(n: int, run_length: int) -> TraceBuffer:
    """A load trace of same-block runs over a small warm working set.

    This is the access shape the batch kernel exists for: every run's
    head is serviced exactly and the tail is resolved in bulk.  Fixed
    size (independent of the bench scale knobs) so the kernel microbench
    is meaningful even on smoke-scale CI runs.
    """
    addresses = []
    i = 0
    while len(addresses) < n:
        base = 0x100000 + (i % 64) * 4096 + ((i * 7) % 64) * 64
        addresses.extend([base] * run_length)
        i += 1
    addresses = addresses[:n]
    return TraceBuffer(addresses, [0x400] * n, [KIND_LOAD] * n, [8] * n,
                       [False] * n, [0] * n, [0] * n)


def _kernel_replay(buffer: TraceBuffer, kernel: str, warmup: int):
    """Replay throughput of one hierarchy over ``buffer`` with ``kernel``."""
    system = SimulatedSystem(
        SystemConfig.paper_single_core().with_predictor("lp"))
    system.hierarchy.run_buffer(buffer[:warmup], kernel=kernel)
    measured = buffer[warmup:]
    results, seconds = _timed(
        lambda: system.hierarchy.run_buffer(measured, kernel=kernel))
    return results, len(measured) / seconds, system


def _batch_kernel_report():
    """Scalar-vs-batch kernel throughput: fresh grid + replay microbench.

    Numbers are reported honestly: on the paper grid the exact miss path
    (which no kernel may approximate — results must stay bit-identical)
    dominates wall-clock, so the end-to-end win is bounded by the L1
    repeat-hit fraction of the workloads.  The repeat-run microbench
    isolates what the batch kernel actually accelerates.
    """
    # Fresh-simulate grid, scalar vs batch.  Prime the trace cache first
    # so neither kernel pays trace generation for the other.
    for app in HIGHLIGHTED_APPLICATIONS:
        TRACE_CACHE.get(app, BENCH_ACCESSES + BENCH_WARMUP, seed=0)

    def grid(kernel):
        engine = SimulationEngine(jobs=1, store=False, kernel=kernel)
        return engine.run_grid(list(HIGHLIGHTED_APPLICATIONS),
                               COMPARED_SYSTEMS,
                               num_accesses=BENCH_ACCESSES,
                               warmup_accesses=BENCH_WARMUP, seed=0)

    # Best of two alternating passes per kernel: the grid comparison is a
    # ~1.1x effect, small enough for one transiently-loaded host window to
    # invert it.
    scalar_grid, scalar_seconds = _timed(lambda: grid("scalar"))
    batch_grid, batch_seconds = _timed(lambda: grid("batch"))
    _assert_identical(scalar_grid, batch_grid)
    _, scalar_again = _timed(lambda: grid("scalar"))
    _, batch_again = _timed(lambda: grid("batch"))
    scalar_seconds = min(scalar_seconds, scalar_again)
    batch_seconds = min(batch_seconds, batch_again)
    grid_accesses = _grid_accesses()

    # Repeat-run microbench: fixed-size crafted traces where the batch
    # kernel's bulk path covers nearly every access.
    microbench = {}
    for run_length in (8, 32):
        buffer = _crafted_repeat_buffer(20000, run_length)
        scalar_results, scalar_aps, _ = _kernel_replay(buffer, "scalar",
                                                       2000)
        batch_results, batch_aps, _ = _kernel_replay(buffer, "batch", 2000)
        assert scalar_results == batch_results, run_length
        microbench[f"run{run_length}"] = {
            "accesses": len(buffer),
            "scalar_accesses_per_second": scalar_aps,
            "batch_accesses_per_second": batch_aps,
            "speedup": batch_aps / scalar_aps,
        }

    # Per-app replay: the end-to-end effect on real access streams, from
    # a repeat-heavy app to the adversarial random-access worst case.
    per_app = {}
    for app in ("602.gcc", "nas.mg", "stream", "gups"):
        buffer = build_workload(app).generate_buffer(
            BENCH_ACCESSES + BENCH_WARMUP, seed=0)
        _, scalar_aps, _ = _kernel_replay(buffer, "scalar", BENCH_WARMUP)
        _, batch_aps, _ = _kernel_replay(buffer, "batch", BENCH_WARMUP)
        per_app[app] = {
            "scalar_accesses_per_second": scalar_aps,
            "batch_accesses_per_second": batch_aps,
            "speedup": batch_aps / scalar_aps,
        }

    return {
        "grid": {
            "scalar": {
                "seconds": scalar_seconds,
                "accesses_per_second": grid_accesses / scalar_seconds,
            },
            "batch": {
                "seconds": batch_seconds,
                "accesses_per_second": grid_accesses / batch_seconds,
            },
            "speedup": scalar_seconds / batch_seconds,
        },
        "repeat_microbench": microbench,
        "per_app_replay": per_app,
        "identical_results": True,
    }


def _trace_sharding_report():
    """Within-job trace sharding: exact equivalence and the approx delta.

    Exact mode must be byte-identical to the unsharded replay at any
    scale (asserted via pickled bytes).  The fast-approximate mode's
    statistics delta is *measured* — one job run unsharded vs. split into
    four independently-warmed shards and merged — and recorded against
    the documented bound.  The delta is a property of the shard plan, not
    of scheduling, so this measurement is CPU-independent and runs even
    on single-core hosts; only the wall-clock speedup entry is skipped
    there.
    """
    shards = 4
    job = SimulationJob(workload="602.gcc", predictor="lp",
                        num_accesses=BENCH_ACCESSES,
                        warmup_accesses=BENCH_WARMUP, seed=0)

    exact, exact_seconds = _timed(lambda: execute_job(job))
    sharded, sharded_seconds = _timed(
        lambda: execute_job(job, shards=shards))
    assert pickle.dumps(sharded) == pickle.dumps(exact)

    approx_engine = SimulationEngine(store=False, options=EngineOptions(
        jobs=min(shards, CPU_COUNT), shards=shards, sharding="approx"))
    approx, approx_seconds = _timed(
        lambda: approx_engine.run([job])[0])
    assert approx_engine.shard_merges == 1

    # Row counters merge losslessly (the measured spans partition the
    # trace); only latency-derived statistics carry a delta.
    assert approx.execution.instructions == exact.execution.instructions
    assert approx.execution.memory_accesses == \
        exact.execution.memory_accesses
    assert approx.hierarchy_stats.demand_accesses == \
        exact.hierarchy_stats.demand_accesses

    def _delta(measured: float, reference: float) -> float:
        return abs(measured - reference) / abs(reference) if reference \
            else 0.0

    exact_amal = (exact.hierarchy_stats.total_demand_latency
                  / exact.hierarchy_stats.demand_accesses)
    approx_amal = (approx.hierarchy_stats.total_demand_latency
                   / approx.hierarchy_stats.demand_accesses)
    deltas = {
        "cycles": _delta(approx.execution.cycles, exact.execution.cycles),
        "ipc": _delta(approx.ipc, exact.ipc),
        "amal": _delta(approx_amal, exact_amal),
        "energy_nj": _delta(approx.cache_hierarchy_energy_nj,
                            exact.cache_hierarchy_energy_nj),
    }
    max_delta = max(deltas.values())
    assert max_delta <= APPROX_DELTA_BOUND, deltas

    if CPU_COUNT >= 2:
        speedup = {
            "workers": min(shards, CPU_COUNT),
            "approx_vs_unsharded": exact_seconds / approx_seconds,
        }
    else:
        speedup = {
            "skipped": f"single-core host (cpu_count={CPU_COUNT}): a "
                       "concurrent-shard speedup cannot be measured here",
        }

    return {
        "workload": job.workload,
        "shards": shards,
        "accesses": BENCH_ACCESSES + BENCH_WARMUP,
        "exact": {
            "unsharded_seconds": exact_seconds,
            "sharded_seconds": sharded_seconds,
            "byte_identical": True,
        },
        "approx": {
            "seconds": approx_seconds,
            "count_fields_exact": True,
            "stats_delta": deltas,
            "max_delta": max_delta,
            "documented_bound": APPROX_DELTA_BOUND,
        },
        "speedup": speedup,
    }


def _fault_plane_report(engine_serial_seconds: float):
    """Cost of the fault-injection plane (:mod:`repro.faults`).

    Three numbers: the per-call cost of a disabled :func:`fault_point`
    (the price every hot-path hook pays when ``REPRO_FAULTS`` is unset),
    the per-call cost of an armed plane whose rule never fires (p=0),
    and a second faults-disabled grid pass whose ratio against the
    ``engine_serial`` measurement bounds the plane's end-to-end overhead
    by run-to-run noise.
    """
    from repro import faults
    from repro.faults import fault_point
    from repro.sim.engine import TRACE_CACHE as trace_cache

    iterations = 500_000

    def _hammer():
        for _ in range(iterations):
            fault_point("store.append", 128)

    faults.uninstall()
    _, off_seconds = _timed(_hammer)
    faults.install("store.append:eio@p=0.0,seed=1")
    _, armed_seconds = _timed(_hammer)
    faults.uninstall()

    trace_cache.clear()
    _, grid_seconds = _timed(lambda: _run_engine(jobs=1))

    return {
        "calls": iterations,
        "disabled_ns_per_call": off_seconds / iterations * 1e9,
        "armed_nonfiring_ns_per_call": armed_seconds / iterations * 1e9,
        "grid_seconds_with_hooks": grid_seconds,
        "grid_vs_engine_serial": engine_serial_seconds / grid_seconds,
    }


def _per_system_throughput(predictor: str) -> float:
    """End-to-end accesses/second of one system across all applications."""
    jobs = expand_grid(list(HIGHLIGHTED_APPLICATIONS), (predictor,),
                       num_accesses=BENCH_ACCESSES,
                       warmup_accesses=BENCH_WARMUP)
    engine = SimulationEngine(jobs=1)
    start = time.perf_counter()
    engine.run(jobs)
    elapsed = time.perf_counter() - start
    total = len(jobs) * (BENCH_ACCESSES + BENCH_WARMUP)
    return total / elapsed


def _assert_identical(serial, parallel):
    for app, per_system in serial.items():
        for name, result in per_system.items():
            other = parallel[app][name]
            assert other.ipc == result.ipc, (app, name)
            assert other.cache_hierarchy_energy_nj == \
                result.cache_hierarchy_energy_nj, (app, name)
            assert other.hierarchy_stats.l1_hits == \
                result.hierarchy_stats.l1_hits, (app, name)
            assert other.hierarchy_stats.total_demand_latency == \
                result.hierarchy_stats.total_demand_latency, (app, name)


def test_throughput(benchmark):
    grid_accesses = _grid_accesses()

    legacy, legacy_seconds = benchmark.pedantic(
        lambda: _timed(_run_legacy_serial), rounds=1, iterations=1)

    TRACE_CACHE.clear()
    serial, serial_seconds = _timed(lambda: _run_engine(jobs=1))
    parallel, parallel_seconds = _timed(lambda: _run_engine(PARALLEL_JOBS))

    with tempfile.TemporaryDirectory() as store_dir:
        store_populate, store_replay, store_report = \
            _run_store_passes(store_dir)
    with tempfile.TemporaryDirectory() as sweep_dir:
        store_report["sweep"] = _sweep_store_report(sweep_dir)
    with tempfile.TemporaryDirectory() as hsweep_dir:
        hierarchy_sweep_report = _hierarchy_sweep_report(hsweep_dir)

    # The engine's parallel path must reproduce serial results bit-for-bit
    # (and both must agree with the legacy driver, which shares every
    # simulation ingredient with the engine path), and a store replay must
    # reproduce the simulated grid exactly without simulating anything.
    _assert_identical(serial, parallel)
    _assert_identical(legacy, serial)
    _assert_identical(serial, store_populate)
    _assert_identical(serial, store_replay)
    assert store_report["populate"]["hits"] == 0
    assert store_report["replay"]["misses"] == 0
    assert store_report["replay"]["hits"] == \
        store_report["populate"]["misses"]

    baseline_aps = _per_system_throughput("baseline")
    lp_aps = _per_system_throughput("lp")

    trace_report = _trace_substrate_report()
    replay_report = _buffer_replay_report()
    fault_report = _fault_plane_report(serial_seconds)
    batch_report = _batch_kernel_report()
    sharding_report = _trace_sharding_report()

    report = {
        "schema": "repro-bench-throughput/1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "applications": len(HIGHLIGHTED_APPLICATIONS),
            "systems": list(COMPARED_SYSTEMS),
            "accesses_per_app": BENCH_ACCESSES,
            "warmup_per_app": BENCH_WARMUP,
            "grid_accesses": grid_accesses,
            "parallel_jobs": PARALLEL_JOBS,
        },
        "grid": {
            "legacy_serial": {
                "seconds": legacy_seconds,
                "accesses_per_second": grid_accesses / legacy_seconds,
            },
            "engine_serial": {
                "seconds": serial_seconds,
                "accesses_per_second": grid_accesses / serial_seconds,
            },
            "engine_parallel": {
                "seconds": parallel_seconds,
                "accesses_per_second": grid_accesses / parallel_seconds,
            },
        },
        "per_system_accesses_per_second": {
            "baseline": baseline_aps,
            "lp": lp_aps,
        },
        "store": store_report,
        "hierarchy_sweep": hierarchy_sweep_report,
        "trace": trace_report,
        "buffer_replay": replay_report,
        "fault_plane": fault_report,
        "batch_kernel": batch_report,
        "trace_sharding": sharding_report,
        "speedups": {
            "engine_serial_vs_legacy": legacy_seconds / serial_seconds,
            "engine_parallel_vs_legacy": legacy_seconds / parallel_seconds,
            "engine_parallel_vs_serial": serial_seconds / parallel_seconds,
        },
        "parallel": {
            "cpu_count": CPU_COUNT,
            "jobs": PARALLEL_JOBS,
            "speedups_meaningful": CPU_COUNT >= 2,
            "note": None if CPU_COUNT >= 2 else (
                "single-core host: engine_parallel and sharded speedup "
                "entries measure pool overhead, not parallelism; they are "
                "recorded for the trajectory but must not be read as "
                "wins"),
        },
        "identical_results": True,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = ["Simulation throughput (accesses/second, higher is better)", ""]
    for key, entry in report["grid"].items():
        lines.append(f"{key:18s}: {entry['accesses_per_second']:10,.0f}/s "
                     f"({entry['seconds']:.2f}s)")
    lines.append(f"baseline system   : {baseline_aps:10,.0f}/s")
    lines.append(f"lp system         : {lp_aps:10,.0f}/s")
    replay = store_report["replay"]
    lines.append(f"store replay      : {replay['accesses_per_second']:10,.0f}/s "
                 f"({replay['hits']} hits, {replay['misses']} misses)")
    sweep = store_report["sweep"]
    lines.append(f"sweep store       : {sweep['jobs']} jobs "
                 f"({sweep['scale_vs_paper_grid']:.1f}x paper grid) across "
                 f"{sweep['shards']} shards; populate "
                 f"{sweep['populate']['jobs_per_second']:,.0f} jobs/s, "
                 f"replay {sweep['replay']['jobs_per_second']:,.0f} jobs/s")
    hsweep = hierarchy_sweep_report
    lines.append(f"hierarchy sweep   : {hsweep['jobs']} spec-keyed jobs; "
                 f"populate {hsweep['populate']['jobs_per_second']:,.0f} "
                 f"jobs/s, replay "
                 f"{hsweep['replay']['jobs_per_second']:,.0f} jobs/s "
                 f"({hsweep['replay']['misses']} recomputed)")
    lines.append("")
    lines.append("Trace substrate (accesses/second)")
    for key in ("generate_legacy", "generate_buffer", "generate_and_spill",
                "warm_load"):
        entry = trace_report[key]
        lines.append(f"{key:18s}: {entry['accesses_per_second']:10,.0f}/s "
                     f"({entry['seconds']:.3f}s)")
    memory = trace_report["memory"]
    lines.append(f"buffer bytes/access: {memory['bytes_per_access_buffer']:.1f} "
                 f"(records ~{memory['bytes_per_access_legacy']:.1f}, "
                 f"{memory['compaction_ratio']:.1f}x smaller)")
    lines.append(f"warm load vs generate: "
                 f"{trace_report['speedups']['warm_load_vs_generate']:.2f}x")
    lines.append(f"buffer replay vs records: "
                 f"{replay_report['buffer_vs_records']:.2f}x "
                 f"({replay_report['buffer']['accesses_per_second']:,.0f}/s)")
    lines.append("")
    lines.append("Fault plane (REPRO_FAULTS unset unless armed)")
    lines.append(f"fault_point off   : "
                 f"{fault_report['disabled_ns_per_call']:8.1f} ns/call")
    lines.append(f"armed, never fires: "
                 f"{fault_report['armed_nonfiring_ns_per_call']:8.1f} ns/call")
    lines.append(f"grid w/ hooks     : "
                 f"{fault_report['grid_seconds_with_hooks']:.2f}s "
                 f"({fault_report['grid_vs_engine_serial']:.2f}x of "
                 f"engine_serial — run-to-run noise)")
    lines.append("")
    lines.append("Batch kernel (scalar vs batch, bit-identical)")
    kernel_grid = batch_report["grid"]
    lines.append(f"grid scalar       : "
                 f"{kernel_grid['scalar']['accesses_per_second']:10,.0f}/s "
                 f"({kernel_grid['scalar']['seconds']:.2f}s)")
    lines.append(f"grid batch        : "
                 f"{kernel_grid['batch']['accesses_per_second']:10,.0f}/s "
                 f"({kernel_grid['batch']['seconds']:.2f}s, "
                 f"{kernel_grid['speedup']:.2f}x)")
    for key, entry in batch_report["repeat_microbench"].items():
        lines.append(f"repeat {key:11s}: "
                     f"{entry['batch_accesses_per_second']:10,.0f}/s batch vs "
                     f"{entry['scalar_accesses_per_second']:,.0f}/s scalar "
                     f"({entry['speedup']:.2f}x)")
    for app, entry in batch_report["per_app_replay"].items():
        lines.append(f"replay {app:11s}: {entry['speedup']:.2f}x")
    lines.append("")
    lines.append("Trace sharding (exact byte-identical; approx delta "
                 "measured)")
    approx = sharding_report["approx"]
    lines.append(f"approx max delta  : {approx['max_delta'] * 100:6.2f}% "
                 f"(documented bound "
                 f"{approx['documented_bound'] * 100:.0f}%)")
    per_metric = ", ".join(f"{name} {value * 100:.2f}%" for name, value
                           in approx["stats_delta"].items())
    lines.append(f"per-metric deltas : {per_metric}")
    speedup = sharding_report["speedup"]
    if "skipped" in speedup:
        lines.append(f"shard speedup     : skipped — {speedup['skipped']}")
    else:
        lines.append(f"shard speedup     : "
                     f"{speedup['approx_vs_unsharded']:.2f}x over "
                     f"{speedup['workers']} workers")
    lines.append("")
    for key, value in report["speedups"].items():
        lines.append(f"{key}: {value:.2f}x")
    if report["parallel"]["note"]:
        lines.append(f"note: {report['parallel']['note']}")
    text = "\n".join(lines)
    print("\n" + text)
    save_result("throughput", text)

    # Qualitative guarantees that must hold on any host: the trace cache
    # can only help, buffers must be much smaller than record lists, and
    # both systems must sustain real throughput.  The warm-load win only
    # shows above toy scale — per-file open overhead dominates tiny
    # traces — so it is asserted only when each trace is non-trivial.
    assert report["speedups"]["engine_serial_vs_legacy"] > 0.9
    if BENCH_ACCESSES + BENCH_WARMUP >= 2000:
        assert trace_report["speedups"]["warm_load_vs_generate"] > 1.0
    assert memory["compaction_ratio"] > 2.0
    assert baseline_aps > 0 and lp_aps > 0
    # The disabled fault plane must stay in check-a-global territory —
    # microseconds would mean a hidden allocation or lock on the hot path
    # — and the faults-off grid must stay within ordinary run-to-run
    # noise of the engine_serial measurement taken moments earlier.
    assert fault_report["disabled_ns_per_call"] < 2000
    assert fault_report["grid_vs_engine_serial"] > 0.5
    # The batch kernel's contract: on repeat-run traces (what the bulk
    # path exists for) it must be decisively faster than scalar, and on
    # the full grid — where the exact miss path dominates — it must never
    # cost more than run-to-run noise.
    assert batch_report["repeat_microbench"]["run8"]["speedup"] > 1.5
    assert batch_report["grid"]["speedup"] > 0.75
