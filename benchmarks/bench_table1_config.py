"""Table I: the evaluated system configuration.

Regenerates the configuration table from the programmatic system description
and checks the key parameters the rest of the reproduction depends on.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.sim.config import SystemConfig, table1_description

from conftest import save_result


def test_table1_system_configuration(benchmark):
    description = benchmark.pedantic(table1_description, rounds=1, iterations=1)

    table = format_table(["component", "configuration"],
                         [[key, value] for key, value in description.items()],
                         title="Table I: evaluated system configuration")
    print("\n" + table)
    save_result("table1_config", table)

    config = SystemConfig.paper_single_core()
    hierarchy = config.hierarchy
    # Cache geometry and latencies of Table I.
    assert hierarchy.l1.size_bytes == 32 * 1024
    assert hierarchy.l1.associativity == 4
    assert hierarchy.l1.tag_latency == 4
    assert hierarchy.l2.size_bytes == 256 * 1024
    assert hierarchy.l2.associativity == 8
    assert hierarchy.l3.size_bytes == 2 * 1024 * 1024
    assert hierarchy.l3.associativity == 16
    assert hierarchy.l3.sequential_tag_data
    assert hierarchy.l3.tag_latency + hierarchy.l3.data_latency == 55
    # Core parameters.
    assert config.core.rob_entries == 192
    assert config.core.fetch_width == 4
    assert config.core.frequency_ghz == 4.0
    # Multi-core variant uses the 8 MB shared LLC.
    multi = SystemConfig.paper_multi_core()
    assert multi.hierarchy.l3.size_bytes == 8 * 1024 * 1024
