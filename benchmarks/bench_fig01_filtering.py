"""Figure 1: L1/L2 vs L2/L3 miss-filtering scatter and box classification.

The paper plots every application by how well L2 filters L1 misses (x-axis)
and how well L3 filters L2 misses (y-axis), then classifies applications into
a green box (both levels ineffective: high expected benefit from level
prediction), a red box (modest benefit) and the remainder (sequential lookup
already works).  This benchmark regenerates those coordinates on the baseline
system for every registered application and checks that the paper's green-box
applications are reproduced as such.
"""

from __future__ import annotations

from repro.analysis import classify_applications, format_table
from repro.workloads import APPLICATIONS, high_benefit_applications

from conftest import BENCH_ACCESSES, save_result


def _classify_all():
    return classify_applications(sorted(APPLICATIONS),
                                 num_accesses=max(BENCH_ACCESSES, 3000))


def test_figure1_miss_filtering_classification(benchmark):
    classifications = benchmark.pedantic(_classify_all, rounds=1, iterations=1)

    rows = []
    for item in classifications:
        rows.append([
            item.application,
            round(item.ratios.l1_over_l2, 2)
            if item.ratios.l1_over_l2 != float("inf") else "inf",
            round(item.ratios.l2_over_l3, 2)
            if item.ratios.l2_over_l3 != float("inf") else "inf",
            item.classification,
            item.expected,
        ])
    table = format_table(
        ["application", "L1/L2 misses", "L2/L3 misses", "measured", "paper"],
        rows, title="Figure 1: miss-filtering effectiveness per application")
    print("\n" + table)
    save_result("fig01_filtering", table)

    by_name = {item.application: item for item in classifications}

    # Green-box anchors of the paper must land in (or near) the green box.
    for app in ("gups", "gapbs.pr", "gapbs.tc", "nas.is"):
        assert by_name[app].classification == "high", app

    # Cache-friendly applications must not be classified as high benefit.
    for app in ("641.leela", "648.exchange2"):
        assert by_name[app].classification in ("low", "modest"), app

    # Most measured classifications agree with the paper's expectation.  The
    # red-box boundary is qualitative and, at the default benchmark volume,
    # cold (first-touch) misses blur it for small-footprint applications (see
    # EXPERIMENTS.md deviation 5), so the bar is a clear majority rather than
    # near-total agreement.
    matches = sum(1 for item in classifications if item.matches_expectation)
    assert matches >= int(0.6 * len(classifications))
