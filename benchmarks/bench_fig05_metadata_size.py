"""Figure 5: cache-hierarchy energy vs. metadata-cache size.

The paper sweeps the LocMap metadata cache over 1, 2, 4 and 8 KiB and reports
the average energy (normalized to the 1 KiB point) per benchmark suite,
concluding that 2 KiB is the sweet spot: big enough for a high hit ratio,
small enough that its access energy does not erase the savings.

This benchmark reruns the level-predicted system with each metadata cache
size on one representative application per suite and reproduces the shape:
going from 1 KiB to 2 KiB does not increase energy appreciably, while the
8 KiB point is the most expensive of the small sizes for at least some suites.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.experiments import (
    EXPERIMENTS,
    METADATA_SIZES,
    SUITE_REPRESENTATIVES,
    Scale,
)
from repro.sim.engine import SimulationEngine

from conftest import BENCH_ACCESSES, BENCH_WARMUP, save_result

SIZES = list(METADATA_SIZES)

#: Display names for the registry's per-suite representatives.
SUITE_LABELS = {"spec17": "SPEC CPU 17", "nas": "NAS", "gapbs": "GAPBS",
                "other": "Others"}


def _run_size_sweep():
    """Run the registry's fig05 grid on the engine.

    The job recipe comes from ``repro.experiments`` — the same
    (application, metadata size, config name) cells ``python -m repro run
    fig05`` computes, so the benchmark and the CLI share store entries and
    cannot drift apart.
    """
    jobs = EXPERIMENTS["fig05"].jobs(
        Scale(accesses=BENCH_ACCESSES, warmup=BENCH_WARMUP))
    results = iter(SimulationEngine().run(jobs, chunk_align=len(SIZES)))
    energies = {}
    for suite, apps in SUITE_REPRESENTATIVES.items():
        label = SUITE_LABELS[suite]
        totals = {size: 0.0 for size in SIZES}
        for _ in apps:
            for size in SIZES:
                totals[size] += next(results).cache_hierarchy_energy_nj
        for size in SIZES:
            energies[(label, size)] = totals[size] / len(apps)
    return energies


def test_figure5_metadata_cache_size_energy(benchmark):
    energies = benchmark.pedantic(_run_size_sweep, rounds=1, iterations=1)

    labels = [SUITE_LABELS[suite] for suite in SUITE_REPRESENTATIVES]
    rows = []
    normalized = {}
    for label in labels:
        base = energies[(label, 1024)]
        values = [energies[(label, size)] / base for size in SIZES]
        normalized[label] = dict(zip(SIZES, values))
        rows.append([label] + [round(v, 3) for v in values])
    geo = [1.0] * len(SIZES)
    for i, size in enumerate(SIZES):
        product = 1.0
        for label in labels:
            product *= normalized[label][size]
        geo[i] = product ** (1.0 / len(labels))
    rows.append(["G-mean"] + [round(v, 3) for v in geo])
    table = format_table(["suite", "1KB", "2KB", "4KB", "8KB"], rows,
                         title="Figure 5: energy vs metadata cache size "
                               "(normalized to 1KB)")
    print("\n" + table)
    save_result("fig05_metadata_size", table)

    # 2 KiB does not cost appreciably more energy than 1 KiB on average ...
    assert geo[SIZES.index(2048)] < 1.15
    # ... and the largest size is never the cheapest option.
    assert geo[SIZES.index(8192)] >= min(geo) - 1e-9
    # Energy varies monotonically enough that the sweep is meaningful.
    assert max(geo) > 0.0
