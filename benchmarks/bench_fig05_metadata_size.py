"""Figure 5: cache-hierarchy energy vs. metadata-cache size.

The paper sweeps the LocMap metadata cache over 1, 2, 4 and 8 KiB and reports
the average energy (normalized to the 1 KiB point) per benchmark suite,
concluding that 2 KiB is the sweet spot: big enough for a high hit ratio,
small enough that its access energy does not erase the savings.

This benchmark reruns the level-predicted system with each metadata cache
size on one representative application per suite and reproduces the shape:
going from 1 KiB to 2 KiB does not increase energy appreciably, while the
8 KiB point is the most expensive of the small sizes for at least some suites.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.sim.config import SystemConfig
from repro.sim.system import SimulatedSystem
from repro.workloads import build_workload

from conftest import BENCH_ACCESSES, BENCH_WARMUP, save_result

SIZES = [1024, 2048, 4096, 8192]

#: One representative application per suite (as Figure 5 averages per suite).
SUITE_REPRESENTATIVES = {
    "SPEC CPU 17": ["605.mcf", "623.xalan"],
    "NAS": ["nas.cg", "nas.ft"],
    "GAPBS": ["gapbs.pr", "gapbs.bfs"],
    "Others": ["gups", "hpcg"],
}


def _run_size_sweep():
    energies = {}
    for suite, apps in SUITE_REPRESENTATIVES.items():
        for size in SIZES:
            total = 0.0
            for app in apps:
                config = SystemConfig.paper_single_core("lp")
                config.metadata_cache_bytes = size
                system = SimulatedSystem(config)
                result = system.run_workload(build_workload(app),
                                             BENCH_ACCESSES, seed=0,
                                             warmup_accesses=BENCH_WARMUP)
                total += result.cache_hierarchy_energy_nj
            energies[(suite, size)] = total / len(apps)
    return energies


def test_figure5_metadata_cache_size_energy(benchmark):
    energies = benchmark.pedantic(_run_size_sweep, rounds=1, iterations=1)

    rows = []
    normalized = {}
    for suite in SUITE_REPRESENTATIVES:
        base = energies[(suite, 1024)]
        values = [energies[(suite, size)] / base for size in SIZES]
        normalized[suite] = dict(zip(SIZES, values))
        rows.append([suite] + [round(v, 3) for v in values])
    geo = [1.0] * len(SIZES)
    for i, size in enumerate(SIZES):
        product = 1.0
        for suite in SUITE_REPRESENTATIVES:
            product *= normalized[suite][size]
        geo[i] = product ** (1.0 / len(SUITE_REPRESENTATIVES))
    rows.append(["G-mean"] + [round(v, 3) for v in geo])
    table = format_table(["suite", "1KB", "2KB", "4KB", "8KB"], rows,
                         title="Figure 5: energy vs metadata cache size "
                               "(normalized to 1KB)")
    print("\n" + table)
    save_result("fig05_metadata_size", table)

    # 2 KiB does not cost appreciably more energy than 1 KiB on average ...
    assert geo[SIZES.index(2048)] < 1.15
    # ... and the largest size is never the cheapest option.
    assert geo[SIZES.index(8192)] >= min(geo) - 1e-9
    # Energy varies monotonically enough that the sweep is meaningful.
    assert max(geo) > 0.0
