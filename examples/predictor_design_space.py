#!/usr/bin/env python3
"""Design-space exploration: metadata cache size, PLD thresholds and ablations.

The level predictor has two tuning knobs the paper discusses at length: the
LocMap metadata cache capacity (Figure 5) and the Popular Levels Detector's
confidence threshold (which controls how often multi-way predictions are
issued).  This example sweeps both on one workload and also runs two design
ablations: disabling the speculative DRAM launch for memory predictions, and
running the LocMap without the PLD (sequential fallback on metadata misses).

Run with:

    python examples/predictor_design_space.py [--app gapbs.pr]
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.analysis import format_table
from repro.core.level_predictor import CacheLevelPredictor, LevelPredictorConfig
from repro.core.pld import PLDConfig
from repro.sim.config import SystemConfig
from repro.sim.system import SimulatedSystem
from repro.workloads import build_workload


def run_with_predictor(app: str, accesses: int, seed: int,
                       predictor_config: LevelPredictorConfig,
                       speculative_dram: bool = True):
    """Run one system with an explicitly configured level predictor."""
    system_config = SystemConfig.paper_single_core("lp")
    system_config.hierarchy = replace(system_config.hierarchy,
                                      memory_speculative_launch=speculative_dram)
    system = SimulatedSystem(system_config)
    # Swap in the custom-configured predictor before running.
    predictor = CacheLevelPredictor(predictor_config)
    system.predictor = predictor
    system.hierarchy.predictor = predictor
    return system.run_workload(build_workload(app), accesses, seed=seed,
                               warmup_accesses=accesses // 4)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="gapbs.pr")
    parser.add_argument("--accesses", type=int, default=12_000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    baseline_system = SimulatedSystem(SystemConfig.paper_single_core("baseline"))
    baseline = baseline_system.run_workload(build_workload(args.app),
                                            args.accesses, seed=args.seed,
                                            warmup_accesses=args.accesses // 4)

    print(f"Sweeping the metadata cache size on {args.app} (Figure 5)...")
    rows = []
    for size in (1024, 2048, 4096, 8192):
        result = run_with_predictor(
            args.app, args.accesses, args.seed,
            LevelPredictorConfig(metadata_cache_bytes=size))
        rows.append([f"{size // 1024} KiB",
                     round(result.speedup_over(baseline), 3),
                     round(result.normalized_energy_over(baseline), 3),
                     round(result.metadata_miss_ratio, 3)])
    print(format_table(["metadata cache", "speedup", "normalized energy",
                        "metadata miss ratio"], rows,
                       title="Metadata cache size sweep"))

    print()
    print("Sweeping the PLD confidence threshold (single vs multi-way)...")
    rows = []
    for threshold in (0.4, 0.6, 0.8, 0.95):
        config = LevelPredictorConfig(
            pld=PLDConfig(confidence_threshold=threshold))
        result = run_with_predictor(args.app, args.accesses, args.seed, config)
        stats = result.predictor_stats
        multi_way = (stats.multi_way_predictions / stats.predictions
                     if stats.predictions else 0.0)
        rows.append([threshold, round(result.speedup_over(baseline), 3),
                     round(multi_way, 3),
                     round(stats.breakdown()["harmful"], 3)])
    print(format_table(["threshold", "speedup", "multi-way fraction",
                        "harmful fraction"], rows,
                       title="PLD confidence threshold sweep"))

    print()
    print("Design ablations...")
    default = run_with_predictor(args.app, args.accesses, args.seed,
                                 LevelPredictorConfig())
    no_speculation = run_with_predictor(args.app, args.accesses, args.seed,
                                        LevelPredictorConfig(),
                                        speculative_dram=False)
    rows = [
        ["full design", round(default.speedup_over(baseline), 3)],
        ["no speculative DRAM launch",
         round(no_speculation.speedup_over(baseline), 3)],
    ]
    print(format_table(["configuration", "speedup"], rows,
                       title="Ablations of the lookup mechanism"))


if __name__ == "__main__":
    main()
