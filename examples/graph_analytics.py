#!/usr/bin/env python3
"""Graph analytics case study: why level prediction helps irregular workloads.

The paper's motivation (Section II) is that graph workloads miss in L2 almost
always and hit the LLC only for popular vertices, so the sequential
level-by-level lookup wastes latency on nearly every load.  This example runs
the five GAPBS kernels plus gups, shows their miss-filtering signature (the
Figure 1 coordinates), and compares all predictor designs on each kernel.

Run with:

    python examples/graph_analytics.py [--accesses 15000]
"""

from __future__ import annotations

import argparse

from repro.analysis import format_table
from repro.cpu import geometric_mean
from repro.sim import run_predictor_comparison
from repro.sim.stats import miss_filtering_ratios
from repro.sim.system import SimulatedSystem
from repro.sim.config import SystemConfig
from repro.workloads import build_workload

KERNELS = ["gapbs.pr", "gapbs.bfs", "gapbs.bc", "gapbs.cc", "gapbs.tc", "gups"]
SYSTEMS = ("baseline", "tage-2kb", "d2d", "lp", "ideal")


def characterise(app: str, accesses: int, seed: int) -> list:
    """Run the baseline once and report the Figure 1 coordinates."""
    system = SimulatedSystem(SystemConfig.paper_single_core("baseline"))
    system.run_workload(build_workload(app), accesses, seed=seed,
                        warmup_accesses=accesses // 4)
    ratios = miss_filtering_ratios(system.hierarchy)
    return [app, ratios.l1_misses, ratios.l2_misses, ratios.l3_misses,
            round(ratios.l1_over_l2, 2), round(ratios.l2_over_l3, 2),
            ratios.classify()]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=15_000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("Characterising the graph kernels on the baseline system "
          "(Figure 1 coordinates)...")
    rows = [characterise(app, args.accesses, args.seed) for app in KERNELS]
    print()
    print(format_table(
        ["kernel", "L1 misses", "L2 misses", "L3 misses",
         "L1/L2", "L2/L3", "classification"], rows,
        title="Cache-level filtering of graph workloads"))

    print()
    print("Comparing predictors on each kernel "
          "(speedup over the prefetching baseline)...")
    speedups = {name: [] for name in SYSTEMS if name != "baseline"}
    comparison_rows = []
    for app in KERNELS:
        results = run_predictor_comparison(
            build_workload(app), num_accesses=args.accesses,
            predictors=SYSTEMS, seed=args.seed,
            warmup_accesses=args.accesses // 4)
        baseline = results["baseline"]
        row = [app]
        for name in SYSTEMS:
            if name == "baseline":
                continue
            speedup = results[name].speedup_over(baseline)
            speedups[name].append(speedup)
            row.append(round(speedup, 3))
        comparison_rows.append(row)
    comparison_rows.append(
        ["geomean"] + [round(geometric_mean(speedups[name]), 3)
                       for name in SYSTEMS if name != "baseline"])
    print()
    print(format_table(["kernel"] + [n for n in SYSTEMS if n != "baseline"],
                       comparison_rows,
                       title="Speedup of each predictor design"))
    print()
    print("Level prediction captures most of the benefit of the precise D2D "
          "scheme at a fraction of its implementation cost, exactly the "
          "paper's argument for graph analytics.")


if __name__ == "__main__":
    main()
