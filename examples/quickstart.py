#!/usr/bin/env python3
"""Quickstart: compare the level-predicted system against the baseline.

This example reproduces the paper's headline experiment in miniature: it runs
one memory-bound workload (GAPBS PageRank on a synthetic power-law graph)
through the baseline system and the level-predicted system, then prints the
speedup, the memory-access-latency reduction, the energy saving and the
prediction-outcome breakdown.

Run with:

    python examples/quickstart.py [--accesses 20000] [--app gapbs.pr]
"""

from __future__ import annotations

import argparse

from repro.analysis import format_breakdown, format_table
from repro.sim import run_predictor_comparison
from repro.workloads import APPLICATIONS, build_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="gapbs.pr",
                        choices=sorted(APPLICATIONS),
                        help="application trace to simulate")
    parser.add_argument("--accesses", type=int, default=20_000,
                        help="number of measured memory accesses")
    parser.add_argument("--warmup", type=int, default=4_000,
                        help="cache/predictor warm-up accesses")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Simulating {args.app}: {args.accesses} accesses "
          f"({args.warmup} warm-up) on the baseline and LP systems...")
    results = run_predictor_comparison(
        build_workload(args.app), num_accesses=args.accesses,
        predictors=("baseline", "lp", "ideal"), seed=args.seed,
        warmup_accesses=args.warmup)

    baseline = results["baseline"]
    lp = results["lp"]
    ideal = results["ideal"]

    rows = []
    for name, result in (("baseline", baseline), ("level prediction", lp),
                         ("ideal", ideal)):
        rows.append([
            name,
            round(result.ipc, 3),
            round(result.average_memory_access_latency, 1),
            round(result.speedup_over(baseline), 3),
            round(result.normalized_energy_over(baseline), 3),
        ])
    print()
    print(format_table(
        ["system", "IPC", "avg. memory latency (cycles)",
         "speedup", "normalized cache energy"],
        rows, title=f"{args.app}: baseline vs level prediction"))

    print()
    print("Level-prediction outcome breakdown (Figure 7 style):")
    print("  " + format_breakdown(lp.predictor_stats.breakdown(),
                                  order=["sequential", "skip",
                                         "lost_opportunity", "harmful"]))
    print(f"  metadata cache miss ratio: {lp.metadata_miss_ratio:.3f}")
    print(f"  recoveries: {lp.recovery.recoveries} "
          f"({lp.recovery.recovery_rate:.1%} of predictions)")


if __name__ == "__main__":
    main()
