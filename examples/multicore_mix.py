#!/usr/bin/env python3
"""Multi-core case study: Table II mixes on a quad-core system.

One level predictor is attached to each core of a quad-core system with an
8 MB shared LLC (the paper's multi-core configuration).  This example runs a
multi-program mix and the multi-threaded PageRank runs, reporting per-mix
speedup, energy efficiency and the prediction-accuracy breakdown (Figures 13
and 14).

Run with:

    python examples/multicore_mix.py [--mixes mix1 MT2] [--accesses 4000]
"""

from __future__ import annotations

import argparse

from repro.analysis import format_breakdown, format_table
from repro.sim.config import SystemConfig
from repro.sim.multicore import run_mix_comparison
from repro.workloads import MIXES

from typing import List


def run_mix(mix: str, accesses: int, seed: int) -> List:
    results = run_mix_comparison(mix, accesses_per_core=accesses,
                                 predictors=("baseline", "lp"), seed=seed,
                                 config=SystemConfig.paper_multi_core())
    baseline, lp = results["baseline"], results["lp"]
    return [
        mix,
        ", ".join(MIXES[mix].applications),
        round(lp.speedup_over(baseline), 3),
        round(lp.normalized_energy_over(baseline), 3),
        round(lp.energy_efficiency_over(baseline), 3),
        format_breakdown(lp.accuracy_breakdown,
                         order=["sequential", "skip", "lost_opportunity",
                                "harmful"]),
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mixes", nargs="+", default=["mix1", "mix4", "MT2"],
                        choices=sorted(MIXES),
                        help="Table II mixes to simulate")
    parser.add_argument("--accesses", type=int, default=4_000,
                        help="memory accesses per core")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Running {len(args.mixes)} Table II mixes on the quad-core "
          "configuration (one level predictor per core)...")
    rows = [run_mix(mix, args.accesses, args.seed) for mix in args.mixes]
    print()
    print(format_table(
        ["mix", "applications", "LP speedup", "normalized energy",
         "energy efficiency", "prediction breakdown"],
        rows, title="Multi-core level prediction (Figures 13 and 14)"))
    print()
    print("High-MPKI mixes (mix1-style) gain the most; the all-cache-friendly "
          "mix4 gains the least — the same trend as the paper.")


if __name__ == "__main__":
    main()
