"""Integration tests for the multi-core driver (Table II mixes)."""

from __future__ import annotations

import pytest

from repro.core.base import PredictionOutcome
from repro.cpu.ooo_core import ExecutionResult
from repro.sim.config import SystemConfig
from repro.sim.multicore import (
    MultiCoreResult,
    MultiCoreSystem,
    run_mix_comparison,
)
from repro.workloads import build_workload


class TestMultiCoreSystem:
    def test_builds_one_hierarchy_per_core(self):
        system = MultiCoreSystem(SystemConfig.paper_multi_core("lp"))
        assert len(system.cores) == 4
        predictors = {id(core.predictor) for core in system.cores}
        assert len(predictors) == 4          # one LP per core (Section V.D)
        llc = {id(core.shared.l3) for core in system.cores}
        assert len(llc) == 1                 # one shared LLC

    def test_run_traces_rejects_too_many_traces(self):
        system = MultiCoreSystem(SystemConfig.paper_multi_core("lp",
                                                               num_cores=2))
        traces = [build_workload("gups").generate(10, seed=i) for i in range(3)]
        with pytest.raises(ValueError):
            system.run_traces(traces)

    def test_mix_run_produces_per_core_results(self):
        system = MultiCoreSystem(SystemConfig.paper_multi_core("lp"))
        result = system.run_mix("mix1", accesses_per_core=600, seed=0)
        assert len(result.per_core_execution) == 4
        assert result.per_core_workloads == ["gapbs.bfs", "619.lbm",
                                             "nas.lu", "bmt"]
        assert result.total_predictions > 0
        assert sum(result.accuracy_breakdown.values()) == pytest.approx(1.0)

    def test_multithreaded_mix_uses_two_cores(self):
        system = MultiCoreSystem(SystemConfig.paper_multi_core("lp"))
        result = system.run_mix("MT1", accesses_per_core=400, seed=0)
        assert len(result.per_core_execution) == 2
        assert result.aggregate_ipc > 0

    def test_shared_blocks_visible_across_cores(self):
        """Multi-threaded runs share the LLC, so one thread's fill can be
        another thread's remote/LLC hit."""
        system = MultiCoreSystem(SystemConfig.paper_multi_core("baseline"))
        result = system.run_mix("MT2", accesses_per_core=500, seed=1)
        total_l3_hits = sum(core.stats.l3_hits for core in system.cores)
        assert total_l3_hits > 0


class TestInterleaveBoundaries:
    """Round-robin interleave edges: trace lengths that do not divide
    evenly across the active cores."""

    @staticmethod
    def _system(num_cores: int = 4) -> MultiCoreSystem:
        return MultiCoreSystem(SystemConfig.paper_multi_core(
            "lp", num_cores=num_cores))

    def test_unequal_trace_lengths_time_each_core_fully(self):
        system = self._system(num_cores=2)
        lengths = (37, 11)   # deliberately coprime with the core count
        traces = [build_workload("gups").generate_buffer(length, seed=i)
                  for i, length in enumerate(lengths)]
        result = system.run_traces(traces)
        assert [execution.memory_accesses
                for execution in result.per_core_execution] == list(lengths)

    def test_single_trace_on_a_multi_core_system(self):
        system = self._system(num_cores=4)
        trace = build_workload("stream").generate_buffer(25, seed=0)
        result = system.run_traces([trace])
        assert len(result.per_core_execution) == 1
        assert result.per_core_execution[0].memory_accesses == 25
        assert result.per_core_workloads == ["core0"]

    def test_empty_trace_among_active_cores(self):
        system = self._system(num_cores=2)
        traces = [build_workload("gups").generate_buffer(13, seed=0),
                  build_workload("gups").generate_buffer(13, seed=1)[:0]]
        result = system.run_traces(traces)
        assert result.per_core_execution[0].memory_accesses == 13
        assert result.per_core_execution[1].memory_accesses == 0
        assert result.per_core_execution[1].ipc == 0.0

    def test_no_traces_yields_an_empty_result(self):
        result = self._system().run_traces([], mix_name="idle")
        assert result.mix == "idle"
        assert result.per_core_execution == []
        assert result.aggregate_ipc == 0.0
        assert result.total_predictions == 0

    def test_legacy_record_lists_replay_like_buffers(self):
        """run_traces accepts MemoryAccess lists and buffers equivalently."""
        workload = build_workload("gapbs.bfs")
        records = [workload.generate(23, seed=s) for s in (0, 1)]
        buffers = [workload.generate_buffer(23, seed=s) for s in (0, 1)]
        from_records = self._system(2).run_traces(records)
        from_buffers = self._system(2).run_traces(buffers)
        assert from_records.per_core_execution \
            == from_buffers.per_core_execution
        assert from_records.accuracy_breakdown \
            == from_buffers.accuracy_breakdown
        assert from_records.cache_hierarchy_energy_nj \
            == from_buffers.cache_hierarchy_energy_nj

    def test_mix_runs_are_deterministic(self):
        first = MultiCoreSystem(SystemConfig.paper_multi_core("lp")) \
            .run_mix("mix2", accesses_per_core=300, seed=5)
        second = MultiCoreSystem(SystemConfig.paper_multi_core("lp")) \
            .run_mix("mix2", accesses_per_core=300, seed=5)
        assert first == second

    def test_two_core_config_builds_two_cores(self):
        system = self._system(num_cores=2)
        assert len(system.cores) == 2
        assert {core.core_id for core in system.cores} == {0, 1}


class TestResultMath:
    """MultiCoreResult metric edges, built from synthetic executions."""

    @staticmethod
    def _result(ipcs, energy=100.0) -> MultiCoreResult:
        executions = [ExecutionResult(cycles=100.0, instructions=int(100 * ipc),
                                      memory_accesses=10, stall_cycles=0.0)
                      for ipc in ipcs]
        return MultiCoreResult(
            mix="synthetic", predictor="lp",
            per_core_execution=executions,
            per_core_workloads=[f"core{i}" for i in range(len(ipcs))],
            accuracy_breakdown={}, cache_hierarchy_energy_nj=energy,
            total_predictions=0, total_recoveries=0)

    def test_aggregate_ipc_sums_cores(self):
        assert self._result([1.0, 2.0, 0.5]).aggregate_ipc \
            == pytest.approx(3.5)

    def test_speedup_skips_idle_baseline_cores(self):
        mine = self._result([2.0, 3.0])
        baseline = self._result([1.0, 0.0])
        # The zero-IPC baseline core contributes no ratio (geomean of one).
        assert mine.speedup_over(baseline) == pytest.approx(2.0)

    def test_speedup_against_fully_idle_baseline_is_one(self):
        assert self._result([2.0]).speedup_over(self._result([0.0])) == 1.0

    def test_normalized_energy_handles_zero_baseline(self):
        assert self._result([1.0], energy=50.0).normalized_energy_over(
            self._result([1.0], energy=0.0)) == 1.0
        assert self._result([1.0], energy=50.0).normalized_energy_over(
            self._result([1.0], energy=100.0)) == pytest.approx(0.5)

    def test_energy_efficiency_combines_speedup_and_energy(self):
        mine = self._result([2.0], energy=50.0)
        baseline = self._result([1.0], energy=100.0)
        assert mine.energy_efficiency_over(baseline) == pytest.approx(4.0)


class TestMixComparison:
    def test_lp_improves_mix_performance_and_energy(self):
        results = run_mix_comparison("mix1", accesses_per_core=700,
                                     predictors=("baseline", "lp"), seed=0)
        baseline, lp = results["baseline"], results["lp"]
        assert lp.speedup_over(baseline) > 1.0
        assert lp.normalized_energy_over(baseline) < 1.05
        assert lp.energy_efficiency_over(baseline) > 1.0

    def test_breakdown_mostly_accurate(self):
        results = run_mix_comparison("mix1", accesses_per_core=700,
                                     predictors=("lp",), seed=0)
        breakdown = results["lp"].accuracy_breakdown
        harmful = breakdown[PredictionOutcome.HARMFUL.value]
        assert harmful < 0.3

    def test_speedup_over_itself_is_one(self):
        results = run_mix_comparison("mix4", accesses_per_core=400,
                                     predictors=("baseline",), seed=0)
        baseline = results["baseline"]
        assert baseline.speedup_over(baseline) == pytest.approx(1.0)
