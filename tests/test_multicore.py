"""Integration tests for the multi-core driver (Table II mixes)."""

from __future__ import annotations

import pytest

from repro.core.base import PredictionOutcome
from repro.sim.config import SystemConfig
from repro.sim.multicore import MultiCoreSystem, run_mix_comparison
from repro.workloads import build_workload


class TestMultiCoreSystem:
    def test_builds_one_hierarchy_per_core(self):
        system = MultiCoreSystem(SystemConfig.paper_multi_core("lp"))
        assert len(system.cores) == 4
        predictors = {id(core.predictor) for core in system.cores}
        assert len(predictors) == 4          # one LP per core (Section V.D)
        llc = {id(core.shared.l3) for core in system.cores}
        assert len(llc) == 1                 # one shared LLC

    def test_run_traces_rejects_too_many_traces(self):
        system = MultiCoreSystem(SystemConfig.paper_multi_core("lp",
                                                               num_cores=2))
        traces = [build_workload("gups").generate(10, seed=i) for i in range(3)]
        with pytest.raises(ValueError):
            system.run_traces(traces)

    def test_mix_run_produces_per_core_results(self):
        system = MultiCoreSystem(SystemConfig.paper_multi_core("lp"))
        result = system.run_mix("mix1", accesses_per_core=600, seed=0)
        assert len(result.per_core_execution) == 4
        assert result.per_core_workloads == ["gapbs.bfs", "619.lbm",
                                             "nas.lu", "bmt"]
        assert result.total_predictions > 0
        assert sum(result.accuracy_breakdown.values()) == pytest.approx(1.0)

    def test_multithreaded_mix_uses_two_cores(self):
        system = MultiCoreSystem(SystemConfig.paper_multi_core("lp"))
        result = system.run_mix("MT1", accesses_per_core=400, seed=0)
        assert len(result.per_core_execution) == 2
        assert result.aggregate_ipc > 0

    def test_shared_blocks_visible_across_cores(self):
        """Multi-threaded runs share the LLC, so one thread's fill can be
        another thread's remote/LLC hit."""
        system = MultiCoreSystem(SystemConfig.paper_multi_core("baseline"))
        result = system.run_mix("MT2", accesses_per_core=500, seed=1)
        total_l3_hits = sum(core.stats.l3_hits for core in system.cores)
        assert total_l3_hits > 0


class TestMixComparison:
    def test_lp_improves_mix_performance_and_energy(self):
        results = run_mix_comparison("mix1", accesses_per_core=700,
                                     predictors=("baseline", "lp"), seed=0)
        baseline, lp = results["baseline"], results["lp"]
        assert lp.speedup_over(baseline) > 1.0
        assert lp.normalized_energy_over(baseline) < 1.05
        assert lp.energy_efficiency_over(baseline) > 1.0

    def test_breakdown_mostly_accurate(self):
        results = run_mix_comparison("mix1", accesses_per_core=700,
                                     predictors=("lp",), seed=0)
        breakdown = results["lp"].accuracy_breakdown
        harmful = breakdown[PredictionOutcome.HARMFUL.value]
        assert harmful < 0.3

    def test_speedup_over_itself_is_one(self):
        results = run_mix_comparison("mix4", accesses_per_core=400,
                                     predictors=("baseline",), seed=0)
        baseline = results["baseline"]
        assert baseline.speedup_over(baseline) == pytest.approx(1.0)
