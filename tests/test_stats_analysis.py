"""Tests for statistics helpers, classification and report formatting."""

from __future__ import annotations

import pytest

from repro.analysis import (
    classify_application,
    format_breakdown,
    format_table,
    geomean_row,
)
from repro.core.recovery import summarize_recovery
from repro.memory.block import AccessResult, Level, MemoryAccess
from repro.memory.hierarchy import CoreMemoryHierarchy, HierarchyConfig
from repro.sim.stats import (
    MissFilteringRatios,
    WindowedMissTracker,
    miss_filtering_ratios,
    run_with_windows,
)
from repro.workloads import build_workload


class TestMissFilteringRatios:
    def test_ratios(self):
        ratios = MissFilteringRatios(l1_misses=1000, l2_misses=100, l3_misses=50)
        assert ratios.l1_over_l2 == pytest.approx(10.0)
        assert ratios.l2_over_l3 == pytest.approx(2.0)

    def test_zero_misses_give_infinity(self):
        ratios = MissFilteringRatios(l1_misses=10, l2_misses=0, l3_misses=0)
        assert ratios.l1_over_l2 == float("inf")

    def test_classification_boxes(self):
        green = MissFilteringRatios(1000, 900, 850)   # nothing filters
        red = MissFilteringRatios(1000, 50, 2)        # everything filters
        middle = MissFilteringRatios(1000, 300, 290)
        assert green.classify() == "high"
        assert red.classify() == "low"
        assert middle.classify() in ("modest", "high")

    def test_extraction_from_hierarchy(self):
        hierarchy = CoreMemoryHierarchy(HierarchyConfig.paper_single_core())
        for i in range(500):
            hierarchy.access(MemoryAccess(address=i * 64))
        ratios = miss_filtering_ratios(hierarchy)
        assert ratios.l1_misses >= ratios.l2_misses >= ratios.l3_misses


class TestWindowedTracker:
    def test_window_counts(self):
        tracker = WindowedMissTracker(window_size=10)
        for i in range(25):
            access = MemoryAccess(address=i * 64)
            result = AccessResult(hit_level=Level.MEM if i % 2 else Level.L1,
                                  latency=10.0)
            tracker.record(access, result)
        windows = tracker.finalize()
        assert len(windows) == 3
        assert windows[0].l1_misses == 5
        assert windows[-1].window_index == 2

    def test_invalid_window_size(self):
        with pytest.raises(ValueError):
            WindowedMissTracker(window_size=0)

    def test_run_with_windows_on_real_workload(self):
        hierarchy = CoreMemoryHierarchy(HierarchyConfig.paper_single_core())
        trace = build_workload("gups").generate(2000, seed=0)
        windows = run_with_windows(hierarchy, trace, window_size=500)
        assert len(windows) == 4
        for window in windows:
            assert window.l1_misses >= window.l2_misses >= window.l3_misses


class TestClassification:
    def test_gups_classified_high(self):
        classification = classify_application("gups", num_accesses=4000)
        assert classification.classification == "high"
        assert classification.expected == "high"
        assert classification.matches_expectation

    def test_cache_friendly_app_not_high(self):
        classification = classify_application("641.leela", num_accesses=4000)
        assert classification.classification in ("low", "modest")


class TestRecoverySummary:
    def test_summary_fields(self):
        hierarchy = CoreMemoryHierarchy(HierarchyConfig.paper_single_core())
        for i in range(200):
            hierarchy.access(MemoryAccess(address=i * 64))
        summary = summarize_recovery(hierarchy)
        assert summary.predictions == hierarchy.stats.predictions
        assert summary.recoveries == 0
        assert summary.recovery_rate == 0.0
        assert "recovery_rate" in summary.as_dict()


class TestReportFormatting:
    def test_format_table_alignment(self):
        table = format_table(["app", "speedup"],
                             [["gups", 1.086], ["stream", 1.075]],
                             title="Figure 11")
        lines = table.splitlines()
        assert lines[0] == "Figure 11"
        assert "gups" in table and "1.086" in table
        assert len(lines) == 5

    def test_format_breakdown_order(self):
        text = format_breakdown({"skip": 0.5, "sequential": 0.25},
                                order=["sequential", "skip"])
        assert text.startswith("sequential=0.250")

    def test_geomean_row(self):
        name, value = geomean_row("geomean", [1.0, 4.0])
        assert name == "geomean"
        assert value == pytest.approx(2.0)
        assert geomean_row("empty", [])[1] == 0.0
