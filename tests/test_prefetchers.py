"""Unit tests for the prefetcher implementations and throttling."""

from __future__ import annotations

import pytest

from repro.prefetch import (
    AMPMPrefetcher,
    BestOffsetPrefetcher,
    DCPTPrefetcher,
    FIGURE3_PREFETCHERS,
    ISBPrefetcher,
    IndirectMemoryPrefetcher,
    NullPrefetcher,
    PrefetchAccess,
    SandboxPrefetcher,
    SlimAMPMPrefetcher,
    SPPPrefetcher,
    SPPv2Prefetcher,
    StridePrefetcher,
    TaggedNextLinePrefetcher,
    TemporalStreamPrefetcher,
    ThrottledPrefetcher,
    make_prefetcher,
)


def miss(address: int, pc: int = 0x10) -> PrefetchAccess:
    return PrefetchAccess(address=address, pc=pc, hit=False)


def hit(address: int, pc: int = 0x10) -> PrefetchAccess:
    return PrefetchAccess(address=address, pc=pc, hit=True)


class TestBaseBehaviour:
    def test_null_prefetcher_never_prefetches(self):
        pf = NullPrefetcher()
        assert pf.observe(miss(0x1000)) == []

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            TaggedNextLinePrefetcher(degree=0)

    def test_candidates_are_block_aligned_and_unique(self):
        pf = TaggedNextLinePrefetcher(degree=4)
        for address in pf.observe(miss(0x1010)):
            assert address % 64 == 0

    def test_accuracy_accounting(self):
        pf = TaggedNextLinePrefetcher()
        pf.record_useful(3)
        pf.record_useless(1)
        assert pf.stats.accuracy == pytest.approx(0.75)

    def test_disabled_prefetcher_issues_nothing(self):
        pf = TaggedNextLinePrefetcher()
        pf.enabled = False
        assert pf.observe(miss(0x1000)) == []

    def test_factory_covers_figure3(self):
        for name in FIGURE3_PREFETCHERS:
            assert make_prefetcher(name).name
        with pytest.raises(ValueError):
            make_prefetcher("nonexistent")


class TestNextLine:
    def test_prefetches_next_lines_on_miss(self):
        pf = TaggedNextLinePrefetcher(degree=2)
        assert pf.observe(miss(0x1000)) == [0x1040, 0x1080]

    def test_no_prefetch_on_untagged_hit(self):
        pf = TaggedNextLinePrefetcher(degree=1)
        assert pf.observe(hit(0x1000)) == []

    def test_tagged_hit_continues_stream(self):
        pf = TaggedNextLinePrefetcher(degree=1)
        pf.observe(miss(0x1000))          # prefetches 0x1040 (tagged)
        assert pf.observe(hit(0x1040)) == [0x1080]


class TestStride:
    def test_learns_constant_stride(self):
        pf = StridePrefetcher(degree=1)
        for i in range(4):
            candidates = pf.observe(miss(0x1000 + i * 256, pc=0x44))
        assert candidates == [0x1000 + 4 * 256]

    def test_different_pcs_tracked_separately(self):
        pf = StridePrefetcher(degree=1)
        for i in range(4):
            pf.observe(miss(0x1000 + i * 256, pc=0x44))
            pf.observe(miss(0x9000 + i * 128, pc=0x88))
        assert pf.observe(miss(0x1000 + 4 * 256, pc=0x44)) == [0x1000 + 5 * 256]


class TestDCPT:
    def test_replays_repeating_delta_pattern(self):
        pf = DCPTPrefetcher(degree=2)
        # Repeating delta pattern +1, +3 blocks.
        addresses = [0x0]
        for _ in range(6):
            addresses.append(addresses[-1] + 64)
            addresses.append(addresses[-1] + 192)
        issued = []
        for address in addresses:
            issued.extend(pf.observe(miss(address, pc=0x77)))
        assert issued, "DCPT should issue prefetches for a repeating pattern"
        assert all(a % 64 == 0 for a in issued)

    def test_constant_stride_fallback(self):
        pf = DCPTPrefetcher(degree=2)
        issued = []
        for i in range(6):
            issued.extend(pf.observe(miss(0x4000 + i * 128, pc=0x99)))
        assert 0x4000 + 6 * 128 in issued or 0x4000 + 5 * 128 + 128 in issued


class TestAMPM:
    def test_detects_stride_within_zone(self):
        pf = AMPMPrefetcher(degree=2)
        issued = []
        for i in range(8):
            issued.extend(pf.observe(miss(0x10000 + i * 64)))
        assert issued
        assert all(a % 64 == 0 for a in issued)

    def test_slim_variant_is_more_conservative(self):
        full = AMPMPrefetcher(degree=2)
        slim = SlimAMPMPrefetcher(degree=2)
        full_count = slim_count = 0
        for i in range(32):
            address = 0x20000 + i * 64
            full_count += len(full.observe(miss(address)))
            slim_count += len(slim.observe(miss(address)))
        assert slim_count <= full_count


class TestOffsetPrefetchers:
    def test_best_offset_learns_dominant_offset(self):
        pf = BestOffsetPrefetcher(degree=1, round_length=64, score_threshold=8)
        for i in range(300):
            pf.observe(miss(0x100000 + i * 3 * 64))
        assert pf.active_offset == 3

    def test_sandbox_promotes_good_offset(self):
        pf = SandboxPrefetcher(degree=1, evaluation_period=64,
                               promote_threshold=8)
        for i in range(600):
            pf.observe(miss(0x200000 + i * 64))
        assert 1 in pf.promoted_offsets

    def test_sandbox_issues_only_after_promotion(self):
        pf = SandboxPrefetcher(degree=1)
        assert pf.observe(miss(0x1000)) == []


class TestSPP:
    def test_learns_intra_page_pattern(self):
        pf = SPPPrefetcher(degree=2)
        issued = []
        for page in range(4):
            base = 0x100000 + page * 4096
            for i in range(0, 32, 2):
                issued.extend(pf.observe(miss(base + i * 64)))
        assert issued

    def test_sppv2_bootstraps_new_pages(self):
        pf = SPPv2Prefetcher(degree=1)
        first = pf.observe(miss(0x340000))
        assert first == [0x340040]


class TestIrregularPrefetchers:
    def test_isb_replays_recurring_sequence(self):
        pf = ISBPrefetcher(degree=1)
        sequence = [0x1000, 0x9040, 0x3080, 0x70C0, 0x2100]
        for address in sequence:          # first pass: learn
            pf.observe(miss(address, pc=0x5))
        issued = pf.observe(miss(sequence[0], pc=0x5))
        assert issued == [0x9040 - 0x9040 % 64]

    def test_temporal_stream_replays_miss_sequence(self):
        pf = TemporalStreamPrefetcher(degree=2)
        sequence = [0x1000, 0x5000, 0x9000, 0xD000]
        for address in sequence:
            pf.observe(miss(address))
        issued = pf.observe(miss(0x1000))
        assert issued[:2] == [0x5000, 0x9000]

    def test_indirect_requires_streaming_index(self):
        pf = IndirectMemoryPrefetcher(degree=1)
        # Irregular accesses alone (no streaming PC) produce nothing.
        for i in range(10):
            assert pf.observe(miss(0x100000 + i * 7919 * 64, pc=0x9)) == []


class TestThrottling:
    def test_gated_when_accuracy_low(self):
        inner = TaggedNextLinePrefetcher(degree=1)
        pf = ThrottledPrefetcher(inner, epoch_accesses=100,
                                 sample_fraction=0.1, accuracy_threshold=0.4)
        for i in range(10):                 # sampling window
            pf.observe(miss(0x1000 + i * 4096))
            pf.record_useless()             # all prefetches useless
        pf.observe(miss(0x100000))          # first post-sample access decides
        assert pf.currently_gated
        assert pf.observe(miss(0x200000)) == []

    def test_not_gated_when_accuracy_high(self):
        inner = TaggedNextLinePrefetcher(degree=1)
        pf = ThrottledPrefetcher(inner, epoch_accesses=100,
                                 sample_fraction=0.1, accuracy_threshold=0.4)
        for i in range(10):
            pf.observe(miss(0x1000 + i * 64))
            pf.record_useful()
        pf.observe(miss(0x100000))
        assert not pf.currently_gated
        assert pf.observe(miss(0x200000)) != []

    def test_gate_resets_each_epoch(self):
        inner = TaggedNextLinePrefetcher(degree=1)
        pf = ThrottledPrefetcher(inner, epoch_accesses=20, sample_fraction=0.1)
        for i in range(5):
            pf.observe(miss(0x1000 + i * 4096))
            pf.record_useless()
        for i in range(40):
            pf.observe(miss(0x50000 + i * 4096))
        assert pf.epochs_completed >= 1

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            ThrottledPrefetcher(NullPrefetcher(), epoch_accesses=0)
        with pytest.raises(ValueError):
            ThrottledPrefetcher(NullPrefetcher(), sample_fraction=0.0)
