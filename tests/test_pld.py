"""Unit and property tests for the Popular Levels Detector."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pld import PLDConfig, PopularLevelsDetector
from repro.memory.block import Level


class TestTraining:
    def test_hit_increments_level_and_decrements_others(self):
        pld = PopularLevelsDetector()
        pld.record_hit(Level.L3)
        pld.record_hit(Level.L3)
        pld.record_hit(Level.L2)
        counters = pld.counters()
        assert counters[Level.L3] == 1   # +1 +1 -1
        assert counters[Level.L2] == 1   # -1 -1 +1 floored at 0 then +1
        assert counters[Level.MEM] == 0

    def test_counters_never_negative(self):
        pld = PopularLevelsDetector()
        for _ in range(5):
            pld.record_hit(Level.MEM)
        assert all(value >= 0 for value in pld.counters().values())

    def test_l1_hits_ignored(self):
        pld = PopularLevelsDetector()
        pld.record_hit(Level.L1)
        assert pld.updates == 0

    def test_unknown_level_rejected(self):
        pld = PopularLevelsDetector()
        with pytest.raises(ValueError):
            pld.record_hit("L5")  # type: ignore[arg-type]


class TestPrediction:
    def test_cold_detector_predicts_sequential(self):
        pld = PopularLevelsDetector()
        assert pld.predict() == (Level.L2,)

    def test_strong_bias_gives_single_way(self):
        pld = PopularLevelsDetector()
        for _ in range(20):
            pld.record_hit(Level.MEM)
        assert pld.predict() == (Level.MEM,)

    def test_weak_bias_gives_multi_way(self):
        """When no level dominates the counters, more levels are predicted in
        parallel (multi-way prediction, Section III.D)."""
        pld = PopularLevelsDetector(PLDConfig(confidence_threshold=0.9))
        for level in [Level.L2, Level.L2, Level.L3]:
            pld.record_hit(level)
        # Counters are now L2=1, L3=1, MEM=0: no single level reaches 90 %.
        prediction = pld.predict()
        assert len(prediction) >= 2
        assert pld.multi_way_fraction > 0

    def test_prediction_ordered_from_closest_level(self):
        pld = PopularLevelsDetector(PLDConfig(confidence_threshold=0.95))
        for level in [Level.MEM, Level.L2, Level.MEM, Level.L2, Level.L3]:
            pld.record_hit(level)
        prediction = pld.predict()
        assert list(prediction) == sorted(prediction, key=int)

    def test_adapts_to_phase_change(self):
        """The +1/-1 update rule tracks the recently popular level."""
        pld = PopularLevelsDetector()
        for _ in range(50):
            pld.record_hit(Level.L2)
        for _ in range(60):
            pld.record_hit(Level.MEM)
        assert pld.predict() == (Level.MEM,)


class TestReporting:
    def test_storage_is_three_32bit_counters(self):
        pld = PopularLevelsDetector()
        assert pld.storage_bits() == 96

    def test_reset(self):
        pld = PopularLevelsDetector()
        pld.record_hit(Level.L2)
        pld.predict()
        pld.reset()
        assert pld.updates == 0
        assert pld.predictions == 0
        assert all(value == 0 for value in pld.counters().values())


@given(hits=st.lists(st.sampled_from([Level.L2, Level.L3, Level.MEM]),
                     min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_property_prediction_always_valid_and_includes_top_level(hits):
    """The prediction is never empty, never contains L1, and always includes
    the level with the highest counter value."""
    pld = PopularLevelsDetector()
    for level in hits:
        pld.record_hit(level)
    prediction = pld.predict()
    assert 1 <= len(prediction) <= 3
    assert Level.L1 not in prediction
    counters = pld.counters()
    top = max(counters.values())
    assert any(counters[level] == top for level in prediction)
