"""Tests for fleet serving: claim records, cross-daemon dedup, FleetClient.

The contract under test (see README "Fleet serving"):

* a per-job-key claim is won by exactly one daemon; losers poll the
  shared store instead of recomputing, so a cold grid submitted to N
  daemons at once performs each simulation exactly once fleet-wide;
* a claim whose owner died is detected as stale (same-host pid probe,
  foreign-host TTL) and broken, so a crashed owner never wedges the
  fleet;
* the claim layer is an optimisation, never a correctness gate — the
  locked shard appends stay safe (and the store byte-exact) without it;
* :class:`repro.service.FleetClient` routes by job-key hash, fails over
  on ``connection``/``timeout``/``overloaded`` errors, and aggregates
  ``stats``/``health`` across the members.
"""

from __future__ import annotations

import json
import os
import signal
import socket as socket_module
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.experiments import EXPERIMENTS, Scale
from repro.service import (
    FleetClient,
    ServiceClient,
    ServiceError,
    SimulationService,
    create_server,
    serve_forever,
)
from repro.sim.engine import SimulationEngine, SimulationJob
from repro.sim.store import ResultStore, job_key, job_spec

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

TINY_WIRE = {"accesses": 120, "warmup": 40, "mix_accesses": 80}
TINY = Scale(accesses=120, warmup=40, mix_accesses=80)

SINGLE_SPEC = {"workload": "gups", "predictor": "baseline",
               "num_accesses": 60, "warmup_accesses": 20, "seed": 0}
SINGLE_JOB = SimulationJob(workload="gups", predictor="baseline",
                           num_accesses=60, warmup_accesses=20, seed=0)


@pytest.fixture(autouse=True)
def _isolated_env(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_FLEET", raising=False)
    monkeypatch.setenv("REPRO_TRACE_DIR", "")


@pytest.fixture(scope="module")
def tiny_result():
    return SimulationEngine(jobs=1, store=False).run([SINGLE_JOB])[0]


# ======================================================================
# Claim records (store layer)
# ======================================================================
class TestClaims:
    def test_claim_is_exclusive(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.claim("ab" * 32) is True
        assert store.claim("ab" * 32) is False

    def test_release_allows_reclaim(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cd" * 32
        assert store.claim(key)
        store.release_claim(key)
        assert store.claim(key)

    def test_release_is_idempotent(self, tmp_path):
        ResultStore(tmp_path).release_claim("ef" * 32)  # no claim, no raise

    def test_read_claim_record_fields(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "12" * 32
        store.claim(key, owner="daemon-7")
        entry = store.read_claim(key)
        assert entry["key"] == key
        assert entry["pid"] == os.getpid()
        assert entry["owner"] == "daemon-7"
        assert isinstance(entry["time"], float)

    def test_read_claim_missing_is_none(self, tmp_path):
        assert ResultStore(tmp_path).read_claim("34" * 32) is None

    def test_corrupt_claim_reads_empty_and_is_stale(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "56" * 32
        store.claim(key)
        store._claim_path(key).write_text("not json", encoding="utf-8")
        entry = store.read_claim(key)
        assert entry == {}
        assert store.claim_is_stale(entry) is True

    def test_live_same_host_claim_is_not_stale(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "78" * 32
        store.claim(key)
        assert store.claim_is_stale(store.read_claim(key)) is False

    def test_dead_pid_claim_is_stale(self, tmp_path):
        # A claim from a process that no longer exists: probe the pid of
        # a subprocess we already reaped.
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        store = ResultStore(tmp_path)
        key = "9a" * 32
        store.claim(key)
        path = store._claim_path(key)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["pid"] = child.pid
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert store.claim_is_stale(store.read_claim(key)) is True

    def test_foreign_host_claim_expires_by_ttl(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "bc" * 32
        store.claim(key)
        path = store._claim_path(key)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["host"] = "some-other-host"
        path.write_text(json.dumps(entry), encoding="utf-8")
        # Fresh foreign claim: cannot probe the pid, must honour the TTL.
        assert store.claim_is_stale(store.read_claim(key)) is False
        entry["time"] = time.time() - store.claim_ttl - 1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert store.claim_is_stale(store.read_claim(key)) is True

    def test_steal_refuses_a_live_claim(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "de" * 32
        store.claim(key)
        assert store.steal_claim(key) is False
        assert store.read_claim(key)["pid"] == os.getpid()

    def test_steal_breaks_a_stale_claim(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "f0" * 32
        store.claim(key)
        path = store._claim_path(key)
        path.write_text("torn", encoding="utf-8")  # malformed == stale
        assert store.steal_claim(key, owner="thief") is True
        assert store.read_claim(key)["owner"] == "thief"

    def test_active_claims_lists_and_clear_removes(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = sorted(("11" * 32, "22" * 32))
        for key in keys:
            store.claim(key)
        assert store.active_claims() == keys
        store.clear()
        assert store.active_claims() == []


# ======================================================================
# Cross-process refresh (store layer)
# ======================================================================
class TestRefresh:
    def test_refresh_sees_a_foreign_append(self, tmp_path, tiny_result):
        writer = ResultStore(tmp_path)
        reader = ResultStore(tmp_path)
        key = job_key(SINGLE_JOB)
        assert reader.refresh(key) is False
        writer.put(key, job_spec(SINGLE_JOB), tiny_result)
        assert reader.refresh(key) is True
        assert key in reader
        loaded = reader.get(key)
        assert loaded is not None

    def test_refresh_of_unknown_key_is_false(self, tmp_path, tiny_result):
        writer = ResultStore(tmp_path)
        writer.put(job_key(SINGLE_JOB), job_spec(SINGLE_JOB), tiny_result)
        reader = ResultStore(tmp_path)
        assert reader.refresh("00" * 32) is False

    def test_refresh_of_already_loaded_key_is_true(self, tmp_path,
                                                   tiny_result):
        store = ResultStore(tmp_path)
        key = job_key(SINGLE_JOB)
        store.put(key, job_spec(SINGLE_JOB), tiny_result)
        assert store.refresh(key) is True

    def test_refreshed_store_still_byte_safe_for_appends(self, tmp_path,
                                                         tiny_result):
        """A refresh must not break the exactly-one-line-per-key invariant
        for the refreshing store's own later appends."""
        writer = ResultStore(tmp_path)
        reader = ResultStore(tmp_path)
        key = job_key(SINGLE_JOB)
        writer.put(key, job_spec(SINGLE_JOB), tiny_result)
        assert reader.refresh(key) is True
        other = SimulationJob(workload="gups", predictor="baseline",
                              num_accesses=60, warmup_accesses=20, seed=1)
        reader.put(job_key(other), job_spec(other), tiny_result)
        final = ResultStore(tmp_path)
        assert len(final) == 2
        assert final.total_lines() == 2


# ======================================================================
# Fleet mode, in-process: two services over one store
# ======================================================================
class TestFleetService:
    def _service(self, store: Path, **kwargs) -> SimulationService:
        kwargs.setdefault("jobs", 2)
        kwargs.setdefault("pool", "thread")
        kwargs.setdefault("fleet", True)
        return SimulationService(store, **kwargs)

    def test_cold_grid_is_simulated_once_fleet_wide(self, tmp_path):
        store = tmp_path / "store"
        a = self._service(store)
        b = self._service(store)
        try:
            payloads = {}

            def run(name, svc):
                payloads[name] = svc.submit(experiment="golden",
                                            scale=TINY_WIRE, wait=True)

            threads = [threading.Thread(target=run, args=("a", a)),
                       threading.Thread(target=run, args=("b", b))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            total = payloads["a"]["total_jobs"]
            assert payloads["a"]["state"] == "done"
            assert payloads["b"]["state"] == "done"
            assert payloads["a"]["stats"] == payloads["b"]["stats"]
            simulations = (a.counters["simulations"]
                           + b.counters["simulations"])
            # The acceptance contract: each cold cell simulated exactly
            # once across the whole fleet, zero duplicates.
            assert simulations == total
            final = ResultStore(store)
            assert len(final) == total
            assert final.total_lines() == total  # no duplicate appends
            assert final.active_claims() == []   # every claim released
        finally:
            a.close(wait=True)
            b.close(wait=True)

    def test_claim_loser_serves_from_store_not_recompute(self, tmp_path):
        store = tmp_path / "store"
        a = self._service(store)
        b = self._service(store)
        try:
            done = threading.Event()

            def run_a():
                a.submit(experiment="golden", scale=TINY_WIRE, wait=True)
                done.set()

            thread = threading.Thread(target=run_a)
            thread.start()
            payload = b.submit(experiment="golden", scale=TINY_WIRE,
                               wait=True)
            thread.join()
            assert done.is_set()
            assert payload["state"] == "done"
            # Whatever b did not win, it served from the store (either
            # found stored at claim time or after waiting on a's claims)
            # rather than recomputing.
            lost = b.counters["claims_lost"]
            assert b.counters["claim_waits"] <= lost
            assert (b.counters["simulations"] + a.counters["simulations"]
                    == payload["total_jobs"])
        finally:
            a.close(wait=True)
            b.close(wait=True)

    def test_stale_claim_of_dead_owner_is_broken_and_taken_over(
            self, tmp_path):
        store_dir = tmp_path / "store"
        svc = self._service(store_dir)
        try:
            child = subprocess.Popen([sys.executable, "-c", "pass"])
            child.wait()
            key = job_key(SINGLE_JOB)
            svc.store.claim(key)
            path = svc.store._claim_path(key)
            entry = json.loads(path.read_text(encoding="utf-8"))
            entry["pid"] = child.pid  # forge a dead owner
            path.write_text(json.dumps(entry), encoding="utf-8")

            payload = svc.submit(jobs=[SINGLE_SPEC], wait=True)
            assert payload["state"] == "done"
            assert svc.counters["claims_broken"] == 1
            assert svc.counters["simulations"] == 1
            assert svc.store.active_claims() == []
        finally:
            svc.close(wait=True)

    def test_released_claim_without_result_is_taken_over(self, tmp_path):
        """An owner that releases its claim without persisting (failed
        attempt, crash before put) must not wedge the loser: the poller
        claims the key itself and simulates."""
        store_dir = tmp_path / "store"
        svc = self._service(store_dir)
        try:
            key = job_key(SINGLE_JOB)
            # A live foreign claim (our own pid, so never stale).
            svc.store.claim(key)
            payload = svc.submit(jobs=[SINGLE_SPEC])

            def release_soon():
                time.sleep(0.2)
                svc.store.release_claim(key)

            threading.Thread(target=release_soon).start()
            final = svc.result(payload["id"], wait=True, timeout=30.0)
            assert final["state"] == "done"
            assert svc.counters["claims_lost"] == 1
            assert svc.counters["simulations"] == 1
        finally:
            svc.close(wait=True)

    def test_fleet_mode_defaults_off_and_reads_env(self, tmp_path,
                                                   monkeypatch):
        off = SimulationService(tmp_path / "a", jobs=1, pool="thread")
        assert off.fleet is False
        off.close(wait=True)
        monkeypatch.setenv("REPRO_FLEET", "1")
        on = SimulationService(tmp_path / "b", jobs=1, pool="thread")
        assert on.fleet is True
        on.close(wait=True)

    def test_non_fleet_counters_do_not_move(self, tmp_path):
        """fleet=False must not touch the claim machinery at all, so the
        single-daemon golden paths stay byte-identical."""
        svc = SimulationService(tmp_path / "store", jobs=2, pool="thread")
        try:
            payload = svc.submit(experiment="fig13", scale=TINY_WIRE,
                                 wait=True)
            assert payload["state"] == "done"
            for counter in ("claims_won", "claims_lost", "claim_waits",
                            "claims_broken"):
                assert svc.counters[counter] == 0
            assert svc.store.active_claims() == []
            assert not (svc.store.root / "claims").exists()
        finally:
            svc.close(wait=True)


# ======================================================================
# FleetClient over in-process socket servers
# ======================================================================
def _start_server(service: SimulationService):
    srv, address = create_server(service, port=0)
    thread = threading.Thread(target=serve_forever, args=(service, srv),
                              daemon=True)
    thread.start()
    return srv, thread, address


@pytest.fixture
def fleet_pair(tmp_path):
    """Two fleet daemons (in-process) sharing one store."""
    store = tmp_path / "store"
    services = [SimulationService(store, jobs=2, pool="thread", fleet=True)
                for _ in range(2)]
    started = [_start_server(service) for service in services]
    addresses = [address for _, _, address in started]
    for address in addresses:
        ServiceClient(address, timeout=10.0).wait_healthy(timeout=10.0)
    yield services, addresses
    for (srv, thread, address), service in zip(started, services):
        try:
            ServiceClient(address, timeout=5.0).shutdown()
        except (OSError, ServiceError):
            pass
        thread.join(timeout=10.0)


class TestFleetClient:
    def test_address_list_parsing(self):
        client = FleetClient(" 7001 , 7002 ")
        assert [member.address for member in client.members] == \
            ["127.0.0.1:7001", "127.0.0.1:7002"]
        assert client.address == "127.0.0.1:7001,127.0.0.1:7002"
        with pytest.raises(ServiceError, match="empty fleet"):
            FleetClient(" , ")

    def test_routing_is_deterministic_and_key_based(self, fleet_pair):
        _, addresses = fleet_pair
        client = FleetClient(addresses, timeout=10.0)
        route = client._route("fig13", None, TINY_WIRE)
        assert route == client._route("fig13", None, TINY_WIRE)
        first = client.submit(experiment="fig13", scale=TINY_WIRE,
                              wait=True)
        second = client.submit(experiment="fig13", scale=TINY_WIRE,
                               wait=True)
        assert first["member"] == addresses[route]
        assert second["member"] == first["member"]
        assert second["simulated"] == 0  # warm on the same member

    def test_failover_skips_a_dead_member(self, fleet_pair):
        services, addresses = fleet_pair
        # A fleet where one configured member is a dead port: every
        # submit must land on the live ones, whichever way it routes.
        dead = "127.0.0.1:1"
        client = FleetClient([dead, addresses[0]], timeout=5.0,
                             retries=1, backoff=0.01)
        payload = client.submit(experiment="fig13", scale=TINY_WIRE,
                                wait=True)
        assert payload["state"] == "done"
        assert payload["member"] == addresses[0]
        health = client.health()
        assert health["status"] == "degraded"
        assert health["fleet"]["healthy"] == 1
        statuses = {member["address"]: member["status"]
                    for member in health["members"]}
        assert statuses[dead] == "unreachable"
        stats = client.stats()
        assert stats["fleet"] == {"size": 2, "reachable": 1}

    def test_no_reachable_member_raises_connection_error(self):
        client = FleetClient("127.0.0.1:1,127.0.0.1:2", timeout=0.5,
                             retries=1, backoff=0.01)
        with pytest.raises(ServiceError) as excinfo:
            client.stats()
        assert excinfo.value.code == "connection"
        with pytest.raises(ServiceError):
            client.submit(experiment="fig13", scale=TINY_WIRE, wait=True)
        assert client.health()["status"] == "unreachable"

    def test_overloaded_member_sheds_to_another(self, tmp_path,
                                                monkeypatch):
        """S5: an `overloaded` refusal routes the submit to the next
        member instead of failing the client."""
        import repro.service as service_module

        store = tmp_path / "store"
        release = threading.Event()
        real_execute = service_module.execute_job

        def gated(job, **kwargs):
            if getattr(job, "workload", None) == "gups":
                release.wait(15.0)
            return real_execute(job, **kwargs)

        monkeypatch.setattr(service_module, "execute_job", gated)
        # Tiny admission bound on member A only; B takes the spill.
        a = SimulationService(store, jobs=2, pool="thread", fleet=True,
                              max_queue=1)
        b = SimulationService(store, jobs=2, pool="thread", fleet=True)
        started = [_start_server(a), _start_server(b)]
        addresses = [address for _, _, address in started]
        try:
            for address in addresses:
                ServiceClient(address, timeout=10.0).wait_healthy(
                    timeout=10.0)
            # Fill A's only admission slot with a held job.
            held = a.submit(jobs=[SINGLE_SPEC])
            address_a, address_b = addresses
            # Arrange the member list so the grid's routed index is A:
            # the shed-and-fail-over path is then deterministic.
            route = FleetClient(addresses)._route("fig13", None, TINY_WIRE)
            ordered = [address_a, address_b] if route == 0 \
                else [address_b, address_a]
            client = FleetClient(ordered, timeout=10.0, retries=1,
                                 backoff=0.01)
            payload = client.submit(experiment="fig13", scale=TINY_WIRE,
                                    wait=True)
            assert payload["state"] == "done"
            # A shed the grid (its one slot is held) and B served it.
            assert payload["member"] == address_b
            assert a.counters["shed"] >= 1
            assert b.counters["simulations"] == payload["total_jobs"]
            release.set()
            final = a.result(held["id"], wait=True, timeout=30.0)
            assert final["state"] == "done"
        finally:
            release.set()
            for (srv, thread, address) in started:
                try:
                    ServiceClient(address, timeout=5.0).shutdown()
                except (OSError, ServiceError):
                    pass
                thread.join(timeout=10.0)


# ======================================================================
# Daemon subprocesses: real fleets, SIGKILL failover, the launcher
# ======================================================================
def _spawn_fleet_daemon(tmp_path: Path, store: Path,
                        jobs: str = "2") -> "tuple[subprocess.Popen, str]":
    ready = tmp_path / f"ready-{time.monotonic_ns()}.txt"
    env = dict(os.environ, PYTHONPATH=str(SRC), REPRO_JOBS=jobs,
               REPRO_TRACE_DIR="", REPRO_POOL="thread")
    env.pop("REPRO_STORE", None)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--fleet",
         "--store", str(store), "--ready-file", str(ready)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    deadline = time.monotonic() + 30.0
    while not ready.is_file():
        if process.poll() is not None:
            raise AssertionError(
                f"fleet daemon died on startup: "
                f"{process.stderr.read().decode()}")  # type: ignore
        if time.monotonic() > deadline:
            process.kill()
            raise AssertionError("fleet daemon never wrote its ready file")
        time.sleep(0.02)
    return process, ready.read_text().strip()


@pytest.mark.slow
class TestFleetDaemons:
    SCALE = {"accesses": 400, "warmup": 120, "mix_accesses": 300}

    def test_two_daemons_cold_grid_simulated_once_fleet_wide(
            self, tmp_path):
        store = tmp_path / "store"
        daemon_a, address_a = _spawn_fleet_daemon(tmp_path, store)
        daemon_b, address_b = _spawn_fleet_daemon(tmp_path, store)
        try:
            client_a = ServiceClient(address_a, timeout=60.0)
            client_b = ServiceClient(address_b, timeout=60.0)
            payloads = {}

            def run(name, client):
                payloads[name] = client.submit(experiment="golden",
                                               scale=TINY_WIRE, wait=True)

            threads = [threading.Thread(target=run, args=("a", client_a)),
                       threading.Thread(target=run, args=("b", client_b))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            total = payloads["a"]["total_jobs"]
            assert payloads["a"]["state"] == "done"
            assert payloads["b"]["state"] == "done"
            assert payloads["a"]["stats"] == payloads["b"]["stats"]
            simulations = sum(
                client.stats()["counters"]["simulations"]
                for client in (client_a, client_b))
            assert simulations == total  # exactly once, fleet-wide
            # Aggregated view agrees, and a re-run is pure store traffic.
            fleet = FleetClient([address_a, address_b], timeout=60.0)
            assert fleet.stats()["counters"]["simulations"] == total
            rerun = fleet.submit(experiment="golden", scale=TINY_WIRE,
                                 wait=True)
            assert rerun["simulated"] == 0
            assert rerun["stored"] == total
        finally:
            for daemon in (daemon_a, daemon_b):
                daemon.terminate()
                daemon.wait(timeout=30.0)
        final = ResultStore(store)
        assert len(final) == total
        assert final.total_lines() == total  # zero duplicate appends
        assert final.active_claims() == []

    def test_fleetclient_fails_over_when_a_member_is_killed_mid_grid(
            self, tmp_path):
        store = tmp_path / "store"
        daemon_a, address_a = _spawn_fleet_daemon(tmp_path, store)
        daemon_b, address_b = _spawn_fleet_daemon(tmp_path, store)
        daemons = {address_a: daemon_a, address_b: daemon_b}
        try:
            client = FleetClient([address_a, address_b], timeout=60.0,
                                 retries=1, backoff=0.01)
            route = client._route("fig13", None, self.SCALE)
            routed_address = client.members[route].address
            routed = ServiceClient(routed_address, timeout=60.0)

            result = {}

            def run():
                result["payload"] = client.submit(
                    experiment="fig13", scale=self.SCALE, wait=True)

            thread = threading.Thread(target=run)
            thread.start()
            # Let the routed member persist part of the grid, then kill
            # it un-gracefully (SIGKILL: no claim cleanup, no goodbye).
            deadline = time.monotonic() + 60.0
            while True:
                try:
                    if routed.stats()["store"]["puts"] >= 1:
                        break
                except (OSError, ServiceError):
                    break  # grid finished + thread raced us; handled below
                assert time.monotonic() < deadline, "grid never started"
                time.sleep(0.02)
            daemons[routed_address].kill()
            daemons[routed_address].wait(timeout=30.0)

            thread.join(timeout=120.0)
            assert not thread.is_alive()
            payload = result["payload"]
            assert payload["state"] == "done"
            total = payload["total_jobs"]
            # The survivor picked the grid up: cells the dead member
            # persisted came from the store, the rest were simulated
            # (breaking the dead member's stale claims along the way).
            assert payload["member"] != routed_address
            assert payload["stored"] + payload["simulated"] == total
        finally:
            for daemon in daemons.values():
                if daemon.poll() is None:
                    daemon.terminate()
                    daemon.wait(timeout=30.0)
        # Exactly one line per key even across the SIGKILL: nothing was
        # simulated (or persisted) twice, and no claim leaked.
        final = ResultStore(store)
        assert len(final) == total
        assert final.total_lines() == total
        assert final.active_claims() == []

    def test_fleet_launcher_end_to_end(self, tmp_path):
        store = tmp_path / "store"
        combined = tmp_path / "fleet-ready.txt"
        env = dict(os.environ, PYTHONPATH=str(SRC), REPRO_TRACE_DIR="")
        env.pop("REPRO_STORE", None)
        launcher = subprocess.Popen(
            [sys.executable, "-m", "repro", "fleet", "--members", "2",
             "--store", str(store), "--pool", "thread", "--jobs", "2",
             "--ready-file", str(combined)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            deadline = time.monotonic() + 60.0
            while not combined.is_file():
                assert launcher.poll() is None, \
                    launcher.stderr.read().decode()  # type: ignore
                assert time.monotonic() < deadline, \
                    "launcher never wrote the combined ready file"
                time.sleep(0.05)
            address = combined.read_text().strip()
            assert address.count(",") == 1  # two members
            client = FleetClient(address, timeout=60.0)
            client.wait_healthy(timeout=30.0)
            payload = client.submit(experiment="golden", scale=TINY_WIRE,
                                    wait=True)
            assert payload["state"] == "done"
            stats = client.stats()
            assert stats["fleet"] == {"size": 2, "reachable": 2}
            assert stats["counters"]["simulations"] == \
                payload["total_jobs"]
            assert all(member["fleet"] is True
                       for member in stats["members"])
        finally:
            launcher.send_signal(signal.SIGTERM)
            try:
                assert launcher.wait(timeout=30.0) == 0
            except subprocess.TimeoutExpired:
                launcher.kill()
                raise
        final = ResultStore(store)
        assert final.total_lines() == len(final)
